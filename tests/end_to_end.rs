//! End-to-end integration: data generation → advisor → F²DB deployment →
//! forecast queries → streaming maintenance. Exercises every crate of the
//! workspace through the public `fdc` facade.

use fdc::advisor::{Advisor, AdvisorOptions, StopCriteria};
use fdc::datagen::{generate_cube, sales_proxy, GenSpec};
use fdc::f2db::{F2db, MaintenancePolicy};

#[test]
fn advisor_to_database_to_queries() {
    let ds = sales_proxy(5);
    let outcome = Advisor::new(&ds, AdvisorOptions::default())
        .expect("valid dataset")
        .run();
    assert!(outcome.error < 0.2, "advisor error {}", outcome.error);

    let db = F2db::load(ds, &outcome.configuration).expect("loads");
    // Base-level query.
    let base = db
        .query("SELECT time, sales FROM facts WHERE product = 'prod0' AND country = 'DE' AS OF now() + '3 months'")
        .expect("base query");
    assert_eq!(base.rows.len(), 1);
    assert_eq!(base.rows[0].values.len(), 3);
    // Aggregate with drill-down.
    let drill = db
        .query("SELECT time, SUM(sales) FROM facts GROUP BY time, category AS OF now() + '1 month'")
        .expect("drill-down");
    assert_eq!(drill.rows.len(), 3);
    // The category forecasts must roughly sum to the total forecast
    // (schemes differ per node, so allow slack).
    let total = db
        .query("SELECT time, SUM(sales) FROM facts GROUP BY time AS OF now() + '1 month'")
        .expect("total");
    let parts: f64 = drill.rows.iter().map(|r| r.values[0].1).sum();
    let whole = total.rows[0].values[0].1;
    assert!(
        (parts - whole).abs() / whole < 0.25,
        "drill-down sum {parts} vs total {whole}"
    );
}

#[test]
fn streaming_maintenance_keeps_database_consistent() {
    let cube = generate_cube(&GenSpec::new(20, 40, 9));
    let outcome = Advisor::new(&cube.dataset, AdvisorOptions::default())
        .expect("valid dataset")
        .run();
    let db = F2db::load(cube.dataset.clone(), &outcome.configuration)
        .expect("loads")
        .with_policy(MaintenancePolicy::TimeBased { every: 2 });

    let base = db.dataset().graph().base_nodes().to_vec();
    let len0 = db.dataset().series_len();
    for round in 0..4 {
        for &b in &base {
            db.insert_value(b, 75.0 + round as f64).expect("insert");
        }
        // Queries still answer after each advance (and trigger lazy
        // re-estimation of invalidated models).
        let r = db
            .query("SELECT time, SUM(v) FROM t GROUP BY time AS OF now() + '2 quarters'")
            .expect("query");
        assert!(r.rows[0].values.iter().all(|(_, v)| v.is_finite()));
        // Forecast time stamps track the growing history.
        assert_eq!(r.rows[0].values[0].0, (len0 + round + 1) as i64);
    }
    let stats = db.stats();
    assert_eq!(stats.time_advances, 4);
    assert!(stats.invalidations > 0, "time-based policy must fire");
    assert!(
        stats.reestimations > 0,
        "queries must trigger lazy re-estimation"
    );
}

#[test]
fn stop_criteria_bound_the_configuration() {
    let cube = generate_cube(&GenSpec::new(40, 36, 4));
    let options = AdvisorOptions {
        stop: StopCriteria {
            relative_models: Some(0.10),
            ..StopCriteria::default()
        },
        ..AdvisorOptions::default()
    };
    let outcome = Advisor::new(&cube.dataset, options).expect("valid").run();
    // One batch of acceptances may overshoot slightly; the bound must hold
    // within a batch of the parallelism width.
    let bound = (cube.dataset.node_count() as f64 * 0.10).ceil() as usize + 8;
    assert!(
        outcome.model_count <= bound,
        "{} models exceeds relative bound {bound}",
        outcome.model_count
    );
}

#[test]
fn catalog_persistence_survives_process_boundary_shape() {
    let ds = sales_proxy(6);
    let outcome = Advisor::new(&ds, AdvisorOptions::default())
        .expect("valid")
        .run();
    let db = F2db::load(ds.clone(), &outcome.configuration).expect("loads");
    let path = std::env::temp_dir().join(format!("fdc_e2e_{}.cat", std::process::id()));
    db.save_catalog(&path).expect("save");
    let reopened = F2db::open_catalog(ds, &path).expect("open");
    std::fs::remove_file(&path).ok();
    assert_eq!(reopened.model_count(), db.model_count());
    let r = reopened
        .query("SELECT time, SUM(sales) FROM facts GROUP BY time AS OF now() + '2 months'")
        .expect("query after reopen");
    assert_eq!(r.rows[0].values.len(), 2);
}
