//! Walks the paper's running example (Fig. 4) through the advisor's
//! phases using the public APIs: a tiny graph with one region `R1` over
//! three cities `C1..C3`, starting from a configuration with a single
//! model at the top node.
//!
//! The paper's numbers are stylized; what this test pins down is the
//! *mechanics*: indicator initialization, preselection against
//! `E(I) + γσ(I)`, ranking by hypothetical global-indicator improvement,
//! model creation + acceptance, and the final deletion step that removes
//! the too-greedy top model once city models serve the graph better.

use fdc::advisor::candidate::select_candidates;
use fdc::advisor::indicator::{IndicatorOptions, IndicatorStore, LocalIndicator};
use fdc::cube::{Configuration, ConfiguredModel, Coord, CubeSplit, Dataset, Dimension, Schema};
use fdc::forecast::{FitOptions, Granularity, ModelSpec, TimeSeries};
use std::collections::{HashMap, HashSet};

/// One region, three cities (Fig. 4's graph shape: top node R1 + three
/// leaves). City C1 moves against the region's trend, so a model
/// dedicated to it is the clear first candidate — mirroring the example
/// where C1 tops the ranked queue.
fn fig4_dataset() -> Dataset {
    // A single city dimension: the all-star node *is* the region R1, so
    // the graph has exactly the four nodes of Fig. 4.
    let schema = Schema::flat(vec![Dimension::new(
        "city",
        vec!["C1".into(), "C2".into(), "C3".into()],
    )])
    .unwrap();
    let series = |f: Box<dyn Fn(usize) -> f64>| -> TimeSeries {
        TimeSeries::new(
            (0..40).map(|t| f(t).max(0.1)).collect(),
            Granularity::Quarterly,
        )
    };
    let base = vec![
        (
            Coord::new(vec![0]),
            // C1: trends DOWN while the rest of the region trends up — its
            // share of the region shifts every step, so deriving it from
            // the top model is poor, while a dedicated trend model is
            // near-perfect.
            series(Box::new(|t| 200.0 - 3.0 * t as f64)),
        ),
        (
            Coord::new(vec![1]),
            series(Box::new(|t| 40.0 + 0.5 * t as f64)),
        ),
        (
            Coord::new(vec![2]),
            series(Box::new(|t| 80.0 + 1.0 * t as f64)),
        ),
    ];
    Dataset::from_base(schema, base).unwrap()
}

#[test]
fn figure4_iteration_walkthrough() {
    let ds = fig4_dataset();
    let g = ds.graph();
    assert_eq!(ds.node_count(), 4, "top + three cities, as in Fig. 4");
    let top = g.top_node();
    let c1 = g.node(&Coord::new(vec![0])).unwrap();

    let split = CubeSplit::new(&ds, 0.8);
    let fit = FitOptions::default();
    let spec = ModelSpec::Holt; // short series; trend model suffices

    // -- (a) Initialization: one model at the top node -----------------------
    let mut cfg = Configuration::new(ds.node_count());
    let model = ConfiguredModel::fit(&split, top, &spec, &fit).unwrap();
    cfg.insert_model(top, model);
    for v in 0..ds.node_count() {
        cfg.adopt_if_better(&ds, &split, &[top], v);
    }
    let opts = IndicatorOptions::new(ds.node_count(), split.train_len());
    let mut store = IndicatorStore::new(ds.node_count());
    store.insert(LocalIndicator::compute(&ds, top, &opts));
    // The top node's own indicator entry is zero; the cities' are not.
    assert_eq!(store.global()[top], 0.0);
    assert!(store.global()[c1] > 0.0);

    // -- (b) Preselection: high-indicator nodes are positive candidates,
    //        the zero-indicator model node is the negative candidate ---------
    let mut cache = HashMap::new();
    let cands = select_candidates(
        &ds,
        &cfg,
        &store,
        &opts,
        0.0,
        4,
        &HashSet::new(),
        &mut cache,
    );
    assert!(!cands.positive.is_empty());
    assert!(cands.positive.iter().all(|c| !cfg.has_model(c.node)));
    assert_eq!(cands.negative.len(), 1);
    assert_eq!(cands.negative[0].node, top);

    // -- (c) Ranking: scored by the hypothetical drop of the global
    //        indicator mean — the counter-trending C1 must be in the queue,
    //        and scores must be sorted best-first ----------------------------
    assert!(cands.positive.iter().any(|c| c.node == c1));
    for w in cands.positive.windows(2) {
        assert!(w[0].score <= w[1].score);
    }
    let winner = cands.positive[0].node;

    // -- (d)+(e) Model creation and acceptance: a model at the top-ranked
    //        candidate lowers the configuration error ------------------------
    let err_before = cfg.overall_error();
    let winner_model = ConfiguredModel::fit(&split, winner, &spec, &fit).unwrap();
    cfg.insert_model(winner, winner_model);
    let mut improved = cfg.adopt_if_better(&ds, &split, &[winner], winner);
    for v in 0..ds.node_count() {
        improved |= cfg.adopt_if_better(&ds, &split, &[winner], v);
    }
    assert!(
        improved,
        "the top-ranked model must serve at least one node"
    );
    let err_after = cfg.overall_error();
    assert!(
        err_after < err_before,
        "accepting the ranked model must improve the error ({err_before} → {err_after})"
    );
    store.insert(LocalIndicator::compute(&ds, winner, &opts));
    assert_eq!(
        store.global()[winner],
        0.0,
        "the winner now carries a model"
    );

    // -- (f) Deletion: removing a model forces its dependents onto the
    //        remaining models and the bookkeeping stays consistent -----------
    let deps = cfg.dependents_of(top);
    cfg.remove_model(top);
    cfg.recompute_nodes(&ds, &split, &deps);
    for v in 0..ds.node_count() {
        if let Some(s) = &cfg.estimate(v).scheme {
            assert!(
                s.sources.iter().all(|src| cfg.has_model(*src)),
                "node {v} references a deleted model"
            );
        }
    }
    store.remove(top);
    assert!(
        store.global()[top] > 0.0,
        "after deletion the top node is no longer perfectly served"
    );
    // The configuration keeps exactly the city-level model (Fig. 4f keeps
    // the accepted leaf model after deleting the top).
    assert_eq!(cfg.model_count(), 1);
    assert!(cfg.has_model(winner));
}
