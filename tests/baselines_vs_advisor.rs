//! Cross-crate integration: the qualitative relationships the paper's
//! accuracy analysis (§VI-B, Fig. 7) establishes between the approaches
//! must hold on the proxy data sets.

use fdc::advisor::{Advisor, AdvisorOptions};
use fdc::cube::CubeSplit;
use fdc::datagen::{sales_proxy, tourism_proxy};
use fdc::hierarchical::{bottom_up, combine, direct, greedy, top_down, BaselineOptions};

#[test]
fn figure7_relationships_hold_on_tourism() {
    let ds = tourism_proxy(1);
    let split = CubeSplit::new(&ds, 0.8);
    let opts = BaselineOptions::default();

    let dir = direct(&ds, &split, &opts);
    let bu = bottom_up(&ds, &split, &opts);
    let td = top_down(&ds, &split, &opts);
    let comb = combine(&ds, &split, &opts);
    let gre = greedy(&ds, &split, &opts);
    let adv = Advisor::new(&ds, AdvisorOptions::default()).unwrap().run();

    // Cost ordering: top-down cheapest (1 model), direct/combine most
    // expensive (model per node).
    assert_eq!(td.model_count, 1);
    assert_eq!(dir.model_count, ds.node_count());
    assert_eq!(comb.model_count, ds.node_count());
    assert_eq!(bu.model_count, ds.graph().base_nodes().len());

    // Greedy beats the data-independent approaches on error.
    let best_fixed = dir
        .overall_error()
        .min(bu.overall_error())
        .min(td.overall_error());
    assert!(
        gre.overall_error() <= best_fixed + 1e-9,
        "greedy {} vs best fixed {best_fixed}",
        gre.overall_error()
    );

    // The advisor achieves the lowest error overall ("for all data sets,
    // our advisor results in the lowest overall forecast error") with a
    // small tolerance for optimizer noise …
    assert!(
        adv.error <= gre.overall_error() + 0.005,
        "advisor {} vs greedy {}",
        adv.error,
        gre.overall_error()
    );
    // … while storing fewer models than direct/bottom-up/combine.
    assert!(adv.model_count < dir.model_count);
    assert!(adv.model_count < comb.model_count);
}

#[test]
fn advisor_beats_every_fixed_scheme_on_sales() {
    let ds = sales_proxy(1);
    let split = CubeSplit::new(&ds, 0.8);
    let opts = BaselineOptions::default();
    let fixed_errors = [
        direct(&ds, &split, &opts).overall_error(),
        bottom_up(&ds, &split, &opts).overall_error(),
        top_down(&ds, &split, &opts).overall_error(),
    ];
    let adv = Advisor::new(&ds, AdvisorOptions::default()).unwrap().run();
    let best = fixed_errors.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        adv.error <= best + 1e-9,
        "advisor {} vs best fixed {best}",
        adv.error
    );
}

#[test]
fn greedy_runtime_exceeds_advisor_runtime() {
    // The paper's Fig. 9(a): greedy scales much worse. Even at 45 nodes
    // the exhaustive benefit evaluation costs more wall time than the
    // advisor's candidate-guided search.
    let ds = tourism_proxy(2);
    let split = CubeSplit::new(&ds, 0.8);
    let gre = greedy(&ds, &split, &BaselineOptions::default());
    let start = std::time::Instant::now();
    let _ = Advisor::new(&ds, AdvisorOptions::default()).unwrap().run();
    let adv_time = start.elapsed();
    assert!(
        gre.wall_time > adv_time / 4,
        "greedy {:?} suspiciously fast vs advisor {:?}",
        gre.wall_time,
        adv_time
    );
}
