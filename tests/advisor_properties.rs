//! Randomized integration tests of the advisor on randomly generated
//! cubes: whatever the data looks like, the advisor must terminate with a
//! consistent, non-degraded configuration.

use fdc::advisor::{summarize, Advisor, AdvisorOptions};
use fdc::cube::{Coord, Dataset, Dimension, FunctionalDependency, Schema};
use fdc::forecast::{Granularity, TimeSeries};
use fdc::rng::Rng;

/// A two-level cube (3–6 leaves grouped into 2 regions) with random
/// positive series of 20–40 observations.
fn random_cube(rng: &mut Rng) -> Dataset {
    let leaves = 3 + rng.usize_below(4);
    let len = 20 + rng.usize_below(20);
    let schema = Schema::new(
        vec![
            Dimension::new("leaf", (0..leaves).map(|i| format!("l{i}")).collect()),
            Dimension::new("grp", vec!["g0".into(), "g1".into()]),
        ],
        vec![FunctionalDependency::new(
            0,
            1,
            (0..leaves).map(|i| (i % 2) as u32).collect(),
        )],
    )
    .unwrap();
    let base = (0..leaves)
        .map(|i| {
            let vals: Vec<f64> = (0..len).map(|_| rng.f64_range(1.0, 300.0)).collect();
            (
                Coord::new(vec![i as u32, (i % 2) as u32]),
                TimeSeries::new(vals, Granularity::Quarterly),
            )
        })
        .collect();
    Dataset::from_base(schema, base).unwrap()
}

fn quick_options() -> AdvisorOptions {
    AdvisorOptions {
        parallelism: Some(2),
        multisource_steps: 2,
        ..AdvisorOptions::default()
    }
}

/// The advisor always terminates, never ends worse than its initial
/// configuration, and leaves a fully consistent configuration: every
/// scheme references only model-carrying sources, errors are within
/// [0, 1], and the report's invariants hold.
#[test]
fn advisor_is_total_and_consistent() {
    let mut rng = Rng::seed_from_u64(0xad01);
    for case in 0..12 {
        let ds = random_cube(&mut rng);
        let mut advisor = Advisor::new(&ds, quick_options()).expect("valid dataset");
        let initial = advisor.configuration().overall_error();
        let outcome = advisor.run();
        assert!(outcome.error <= initial + 1e-9, "case {case}");
        assert!(outcome.model_count >= 1);
        for v in 0..ds.node_count() {
            let est = outcome.configuration.estimate(v);
            assert!((0.0..=1.0 + 1e-9).contains(&est.error));
            if let Some(s) = &est.scheme {
                assert!(!s.sources.is_empty());
                for src in &s.sources {
                    assert!(outcome.configuration.has_model(*src));
                }
                assert!(s.weight.is_finite());
            }
        }
        let report = summarize(&ds, &outcome.configuration, 3);
        let c = report.scheme_counts;
        assert_eq!(
            c.direct + c.aggregation + c.disaggregation + c.general + c.unserved,
            ds.node_count()
        );
        assert_eq!(
            report.models_per_level.iter().sum::<usize>(),
            outcome.model_count
        );
    }
}

/// History invariants: iteration numbers increase by one, α is
/// non-decreasing, and model counts never exceed the node count.
#[test]
fn advisor_history_is_well_formed() {
    let mut rng = Rng::seed_from_u64(0xad02);
    for _ in 0..12 {
        let ds = random_cube(&mut rng);
        let outcome = Advisor::new(&ds, quick_options()).unwrap().run();
        for (i, s) in outcome.history.iter().enumerate() {
            assert_eq!(s.iteration, i + 1);
            assert!(s.model_count <= ds.node_count());
            assert!(s.error.is_finite());
        }
        for w in outcome.history.windows(2) {
            assert!(w[0].alpha <= w[1].alpha + 1e-12);
        }
    }
}
