//! Property-based integration tests of the advisor on randomly generated
//! cubes: whatever the data looks like, the advisor must terminate with a
//! consistent, non-degraded configuration.

use fdc::advisor::{summarize, Advisor, AdvisorOptions};
use fdc::cube::{Coord, Dataset, Dimension, FunctionalDependency, Schema};
use fdc::forecast::{Granularity, TimeSeries};
use proptest::prelude::*;

/// Strategy: a two-level cube (3–6 leaves grouped into 2 regions) with
/// random positive series of 20–40 observations.
fn cube_strategy() -> impl Strategy<Value = Dataset> {
    (3usize..7, 20usize..40).prop_flat_map(|(leaves, len)| {
        proptest::collection::vec(proptest::collection::vec(1.0f64..300.0, len), leaves).prop_map(
            move |series| {
                let schema = Schema::new(
                    vec![
                        Dimension::new("leaf", (0..leaves).map(|i| format!("l{i}")).collect()),
                        Dimension::new("grp", vec!["g0".into(), "g1".into()]),
                    ],
                    vec![FunctionalDependency::new(
                        0,
                        1,
                        (0..leaves).map(|i| (i % 2) as u32).collect(),
                    )],
                )
                .unwrap();
                let base = series
                    .into_iter()
                    .enumerate()
                    .map(|(i, vals)| {
                        (
                            Coord::new(vec![i as u32, (i % 2) as u32]),
                            TimeSeries::new(vals, Granularity::Quarterly),
                        )
                    })
                    .collect();
                Dataset::from_base(schema, base).unwrap()
            },
        )
    })
}

fn quick_options() -> AdvisorOptions {
    AdvisorOptions {
        parallelism: Some(2),
        multisource_steps: 2,
        ..AdvisorOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The advisor always terminates, never ends worse than its initial
    /// configuration, and leaves a fully consistent configuration: every
    /// scheme references only model-carrying sources, errors are within
    /// [0, 1], and the report's invariants hold.
    #[test]
    fn advisor_is_total_and_consistent(ds in cube_strategy()) {
        let mut advisor = Advisor::new(&ds, quick_options()).expect("valid dataset");
        let initial = advisor.configuration().overall_error();
        let outcome = advisor.run();
        prop_assert!(outcome.error <= initial + 1e-9);
        prop_assert!(outcome.model_count >= 1);
        for v in 0..ds.node_count() {
            let est = outcome.configuration.estimate(v);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&est.error));
            if let Some(s) = &est.scheme {
                prop_assert!(!s.sources.is_empty());
                for src in &s.sources {
                    prop_assert!(outcome.configuration.has_model(*src));
                }
                prop_assert!(s.weight.is_finite());
            }
        }
        let report = summarize(&ds, &outcome.configuration, 3);
        let c = report.scheme_counts;
        prop_assert_eq!(
            c.direct + c.aggregation + c.disaggregation + c.general + c.unserved,
            ds.node_count()
        );
        prop_assert_eq!(report.models_per_level.iter().sum::<usize>(), outcome.model_count);
    }

    /// History invariants: iteration numbers increase by one, α is
    /// non-decreasing, and model counts never exceed the node count.
    #[test]
    fn advisor_history_is_well_formed(ds in cube_strategy()) {
        let outcome = Advisor::new(&ds, quick_options()).unwrap().run();
        for (i, s) in outcome.history.iter().enumerate() {
            prop_assert_eq!(s.iteration, i + 1);
            prop_assert!(s.model_count <= ds.node_count());
            prop_assert!(s.error.is_finite());
        }
        for w in outcome.history.windows(2) {
            prop_assert!(w[0].alpha <= w[1].alpha + 1e-12);
        }
    }
}
