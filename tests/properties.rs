//! Randomized integration tests over the public API, driven by the
//! deterministic workspace RNG.

use fdc::cube::{Coord, Dataset, Dimension, FunctionalDependency, Schema};
use fdc::forecast::{smape, Granularity, TimeSeries};
use fdc::rng::Rng;

/// A small two-level cube (cities grouped into regions) with aligned
/// positive base series.
fn random_cube(rng: &mut Rng) -> Dataset {
    let cities = 2 + rng.usize_below(4);
    let regions = 2 + rng.usize_below(2);
    let len = 8 + rng.usize_below(16);
    let schema = Schema::new(
        vec![
            Dimension::new("city", (0..cities).map(|i| format!("C{i}")).collect()),
            Dimension::new("region", (0..regions).map(|i| format!("R{i}")).collect()),
        ],
        vec![FunctionalDependency::new(
            0,
            1,
            (0..cities).map(|i| (i % regions) as u32).collect(),
        )],
    )
    .expect("generated schema is valid");
    let base = (0..cities)
        .map(|i| {
            let vals: Vec<f64> = (0..len).map(|_| rng.f64_range(0.5, 500.0)).collect();
            (
                Coord::new(vec![i as u32, (i % regions) as u32]),
                TimeSeries::new(vals, Granularity::Monthly),
            )
        })
        .collect();
    Dataset::from_base(schema, base).expect("generated data is valid")
}

/// Every aggregate equals the sum of the base series it covers, at
/// every time point, for arbitrary cubes.
#[test]
fn aggregates_always_sum_base_descendants() {
    let mut rng = Rng::seed_from_u64(0x9101);
    for _ in 0..64 {
        let ds = random_cube(&mut rng);
        let g = ds.graph();
        for v in 0..g.node_count() {
            let mut expect = vec![0.0; ds.series_len()];
            for b in g.base_descendants(v) {
                for (acc, x) in expect.iter_mut().zip(ds.series(b).values()) {
                    *acc += x;
                }
            }
            for (a, e) in ds.series(v).values().iter().zip(&expect) {
                assert!((a - e).abs() < 1e-6 * e.abs().max(1.0));
            }
        }
    }
}

/// Derivation: the historical-share weights of all base nodes from the
/// top node sum to 1.
#[test]
fn derivation_weights_are_shares() {
    let mut rng = Rng::seed_from_u64(0x9102);
    for _ in 0..64 {
        let ds = random_cube(&mut rng);
        let g = ds.graph();
        let top = g.top_node();
        let total: f64 = g
            .base_nodes()
            .iter()
            .map(|&b| fdc::cube::derivation_weight(&ds, &[top], b))
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }
}

/// The weight variance is non-negative and zero for a node derived
/// from itself.
#[test]
fn weight_variance_invariants() {
    let mut rng = Rng::seed_from_u64(0x9103);
    for _ in 0..64 {
        let ds = random_cube(&mut rng);
        let g = ds.graph();
        let top = g.top_node();
        for &b in g.base_nodes() {
            let var = fdc::cube::weight_variance(&ds, &[top], b);
            assert!(var >= 0.0);
            assert!(fdc::cube::weight_variance(&ds, &[b], b) < 1e-20);
        }
    }
}

/// SMAPE is symmetric in its arguments, bounded in [0, 1] for
/// sign-consistent data, and zero iff forecasts are exact.
#[test]
fn smape_axioms() {
    let mut rng = Rng::seed_from_u64(0x9104);
    for _ in 0..64 {
        let n = 1 + rng.usize_below(63);
        let actual: Vec<f64> = (0..n).map(|_| rng.f64_range(0.01, 1e6)).collect();
        let forecast: Vec<f64> = actual.iter().map(|a| a * rng.f64_range(0.0, 2.0)).collect();
        let e = smape(&actual, &forecast);
        assert!((0.0..=1.0 + 1e-12).contains(&e));
        assert!((smape(&forecast, &actual) - e).abs() < 1e-12);
        assert!(smape(&actual, &actual) == 0.0);
    }
}

/// Advancing time by one step grows every node series by exactly one
/// value and keeps aggregation consistency.
#[test]
fn advance_time_preserves_consistency() {
    let mut rng = Rng::seed_from_u64(0x9105);
    for _ in 0..64 {
        let mut ds = random_cube(&mut rng);
        let base = ds.graph().base_nodes().to_vec();
        let updates: Vec<(usize, f64)> = base
            .iter()
            .map(|&b| (b, rng.f64_range(0.5, 100.0)))
            .collect();
        let len0 = ds.series_len();
        ds.advance_time(&updates).expect("aligned update");
        assert_eq!(ds.series_len(), len0 + 1);
        let top = ds.graph().top_node();
        let expect: f64 = updates.iter().map(|(_, v)| v).sum();
        let got = *ds.series(top).values().last().unwrap();
        assert!((got - expect).abs() < 1e-9);
    }
}
