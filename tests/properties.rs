//! Property-based integration tests over the public API (proptest).

use fdc::cube::{Coord, Dataset, Dimension, FunctionalDependency, Schema};
use fdc::forecast::{smape, Granularity, TimeSeries};
use proptest::prelude::*;

/// Strategy: a small two-level schema (cities grouped into regions) plus
/// aligned positive base series.
fn cube_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..6, 2usize..4, 8usize..24).prop_flat_map(|(cities, regions, len)| {
        let values = proptest::collection::vec(
            proptest::collection::vec(0.5f64..500.0, len),
            cities,
        );
        values.prop_map(move |series| {
            let schema = Schema::new(
                vec![
                    Dimension::new(
                        "city",
                        (0..cities).map(|i| format!("C{i}")).collect(),
                    ),
                    Dimension::new(
                        "region",
                        (0..regions).map(|i| format!("R{i}")).collect(),
                    ),
                ],
                vec![FunctionalDependency::new(
                    0,
                    1,
                    (0..cities).map(|i| (i % regions) as u32).collect(),
                )],
            )
            .expect("generated schema is valid");
            let base = series
                .into_iter()
                .enumerate()
                .map(|(i, vals)| {
                    (
                        Coord::new(vec![i as u32, (i % regions) as u32]),
                        TimeSeries::new(vals, Granularity::Monthly),
                    )
                })
                .collect();
            Dataset::from_base(schema, base).expect("generated data is valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every aggregate equals the sum of the base series it covers, at
    /// every time point, for arbitrary cubes.
    #[test]
    fn aggregates_always_sum_base_descendants(ds in cube_strategy()) {
        let g = ds.graph();
        for v in 0..g.node_count() {
            let mut expect = vec![0.0; ds.series_len()];
            for b in g.base_descendants(v) {
                for (acc, x) in expect.iter_mut().zip(ds.series(b).values()) {
                    *acc += x;
                }
            }
            for (a, e) in ds.series(v).values().iter().zip(&expect) {
                prop_assert!((a - e).abs() < 1e-6 * e.abs().max(1.0));
            }
        }
    }

    /// Derivation: deriving any node from the top node with the
    /// historical-share weight reproduces totals within SMAPE < 1, and
    /// derived values scale linearly in the weight.
    #[test]
    fn derivation_weights_are_shares(ds in cube_strategy()) {
        let g = ds.graph();
        let top = g.top_node();
        // Weights of all base nodes from top sum to 1 (shares of the sum).
        let total: f64 = g
            .base_nodes()
            .iter()
            .map(|&b| fdc::cube::derivation_weight(&ds, &[top], b))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }

    /// The weight variance is non-negative and zero for a node derived
    /// from itself.
    #[test]
    fn weight_variance_invariants(ds in cube_strategy()) {
        let g = ds.graph();
        let top = g.top_node();
        for &b in g.base_nodes() {
            let var = fdc::cube::weight_variance(&ds, &[top], b);
            prop_assert!(var >= 0.0);
            prop_assert!(fdc::cube::weight_variance(&ds, &[b], b) < 1e-20);
        }
    }

    /// SMAPE is symmetric in its arguments, bounded in [0, 1] for
    /// sign-consistent data, and zero iff forecasts are exact.
    #[test]
    fn smape_axioms(
        actual in proptest::collection::vec(0.01f64..1e6, 1..64),
        noise in proptest::collection::vec(0.0f64..2.0, 1..64),
    ) {
        let n = actual.len().min(noise.len());
        let actual = &actual[..n];
        let forecast: Vec<f64> = actual
            .iter()
            .zip(&noise[..n])
            .map(|(a, k)| a * k)
            .collect();
        let e = smape(actual, &forecast);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&e));
        prop_assert!((smape(&forecast, actual) - e).abs() < 1e-12);
        prop_assert!(smape(actual, actual) == 0.0);
    }

    /// Advancing time by one step grows every node series by exactly one
    /// value and keeps aggregation consistency.
    #[test]
    fn advance_time_preserves_consistency(
        ds in cube_strategy(),
        new_vals in proptest::collection::vec(0.5f64..100.0, 6),
    ) {
        let mut ds = ds;
        let base = ds.graph().base_nodes().to_vec();
        let updates: Vec<(usize, f64)> = base
            .iter()
            .enumerate()
            .map(|(i, &b)| (b, new_vals[i % new_vals.len()]))
            .collect();
        let len0 = ds.series_len();
        ds.advance_time(&updates).expect("aligned update");
        prop_assert_eq!(ds.series_len(), len0 + 1);
        let top = ds.graph().top_node();
        let expect: f64 = updates.iter().map(|(_, v)| v).sum();
        let got = *ds.series(top).values().last().unwrap();
        prop_assert!((got - expect).abs() < 1e-9);
    }
}
