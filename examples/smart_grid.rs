//! Smart-grid scenario: hourly energy demand of 86 customers organized
//! into districts. Demonstrates the *maintenance processor*: streaming
//! inserts are batched per time stamp, model states update incrementally,
//! and parameter re-estimation is deferred until an invalidated model is
//! referenced by a query (§V of the paper).
//!
//! Run with: `cargo run --release --example smart_grid`

use fdc::advisor::{Advisor, AdvisorOptions};
use fdc::datagen::energy_proxy;
use fdc::f2db::{F2db, MaintenancePolicy};
use fdc_rng::Rng;

fn main() {
    // Two weeks of hourly demand for 86 customers in 8 districts.
    let dataset = energy_proxy(11, 336);
    println!(
        "energy cube: {} customers, {} nodes, {} hourly observations",
        dataset.graph().base_nodes().len(),
        dataset.node_count(),
        dataset.series_len()
    );

    let outcome = Advisor::new(&dataset, AdvisorOptions::default())
        .expect("valid dataset")
        .run();
    println!(
        "configuration: error {:.4}, {} models, cost {:?}\n",
        outcome.error, outcome.model_count, outcome.total_cost
    );

    // Deploy with a threshold-based invalidation strategy: models whose
    // rolling one-step error exceeds 20% are marked stale and re-estimated
    // lazily on the next query that needs them.
    let db = F2db::load(dataset, &outcome.configuration)
        .expect("loads")
        .with_policy(MaintenancePolicy::ThresholdBased {
            smape_threshold: 0.2,
        });

    // Stream 24 hours of smart-meter readings, interleaved with grid
    // operator queries.
    let mut rng = Rng::seed_from_u64(99);
    let base = db.dataset().graph().base_nodes().to_vec();
    for hour in 0..24 {
        // All meters report their reading for this hour (the maintenance
        // processor batches them and advances the graph at once).
        for &meter in &base {
            let last = *db.dataset().series(meter).values().last().unwrap();
            let reading = (last + rng.f64_range(-0.5, 0.5)).max(0.1);
            db.insert_value(meter, reading).expect("insert");
        }
        // The operator asks for the total demand over the next day.
        let result = db
            .query("SELECT time, SUM(demand) FROM grid GROUP BY time AS OF now() + '1 day'")
            .expect("query");
        if hour % 6 == 0 {
            let peak = result.rows[0]
                .values
                .iter()
                .cloned()
                .fold((0i64, f64::MIN), |acc, v| if v.1 > acc.1 { v } else { acc });
            println!(
                "hour {hour:>2}: next-day peak demand forecast {:.1} at t={}",
                peak.1, peak.0
            );
        }
    }

    let stats = db.stats();
    println!(
        "\nmaintenance: {} inserts → {} time advances, {} incremental model updates",
        stats.inserts, stats.time_advances, stats.model_updates
    );
    println!(
        "             {} invalidations, {} lazy re-estimations, avg query {:?}",
        stats.invalidations,
        stats.reestimations,
        stats.avg_query_time()
    );
}
