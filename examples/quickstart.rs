//! Quickstart: generate a small cube, run the model configuration
//! advisor, inspect the configuration, and answer a forecast query
//! through the embedded F²DB engine.
//!
//! Run with: `cargo run --release --example quickstart`

use fdc::advisor::{Advisor, AdvisorOptions};
use fdc::datagen::{generate_cube, GenSpec};
use fdc::f2db::F2db;

fn main() {
    // 1. A synthetic data cube: 32 base time series, 48 quarterly
    //    observations, hierarchy levels per the paper's GenX rule.
    let cube = generate_cube(&GenSpec::new(32, 48, 7));
    let dataset = cube.dataset;
    println!(
        "cube: {} base series, {} graph nodes, {} levels",
        dataset.graph().base_nodes().len(),
        dataset.node_count(),
        dataset.graph().max_level() + 1
    );

    // 2. Run the advisor. No parameterization needed — indicator size,
    //    candidate threshold and acceptance weight regulate themselves.
    let mut advisor = Advisor::new(&dataset, AdvisorOptions::default()).expect("dataset is valid");
    let outcome = advisor.run();
    println!(
        "advisor: error {:.4}, {} models (of {} possible), cost {:?}, {} iterations, stopped: {:?}",
        outcome.error,
        outcome.model_count,
        dataset.node_count(),
        outcome.total_cost,
        outcome.history.len(),
        outcome.stop_reason,
    );

    // 3. Inspect a few derivation schemes the advisor chose.
    for v in [dataset.graph().top_node(), dataset.graph().base_nodes()[0]] {
        let est = outcome.configuration.estimate(v);
        println!(
            "node {:<18} error {:.4}  scheme {:?}",
            dataset.graph().coord(v).display(dataset.graph().schema()),
            est.error,
            est.scheme.as_ref().map(|s| (&s.sources, s.weight)),
        );
    }

    // 4. Load the configuration into F²DB and process a forecast query.
    let db = F2db::load(dataset, &outcome.configuration).expect("configuration loads");
    let result = db
        .query("SELECT time, SUM(value) FROM facts GROUP BY time AS OF now() + '4 quarters'")
        .expect("query succeeds");
    for row in &result.rows {
        println!("forecast of {}:", row.label);
        for (t, v) in &row.values {
            println!("  t={t}  {v:.2}");
        }
    }
}
