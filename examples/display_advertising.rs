//! Display-advertising scenario: forecasting user visits over many
//! attribute combinations under a hard model budget. In guaranteed
//! display advertising a publisher cannot "create, store, and maintain a
//! model for each single time series" (§I) — the advisor's cost-based
//! stop criteria cap the configuration while keeping accuracy high.
//!
//! Run with: `cargo run --release --example display_advertising`

use fdc::advisor::{Advisor, AdvisorOptions, StopCriteria};
use fdc::cube::CubeSplit;
use fdc::datagen::{generate_cube, GenSpec};
use fdc::hierarchical::{top_down, BaselineOptions};

fn main() {
    // 400 base series of ad-impression counts (attribute combinations),
    // 48 daily observations, weekly seasonality.
    let spec = GenSpec {
        seasonal_period: 7,
        granularity: fdc::forecast::Granularity::Daily,
        ..GenSpec::new(400, 48, 3)
    };
    let cube = generate_cube(&spec);
    let dataset = cube.dataset;
    println!(
        "ad cube: {} attribute combinations, {} graph nodes",
        dataset.graph().base_nodes().len(),
        dataset.node_count()
    );

    // Hard budget: at most 2% of the nodes may carry a model (real-time
    // maintenance constraint).
    let budget = (dataset.node_count() as f64 * 0.02).ceil() as usize;
    let options = AdvisorOptions {
        stop: StopCriteria {
            max_models: Some(budget),
            ..StopCriteria::default()
        },
        ..AdvisorOptions::default()
    };
    let outcome = Advisor::new(&dataset, options)
        .expect("valid dataset")
        .run();
    println!(
        "advisor under budget: {} models (budget {budget}), error {:.4}, stopped: {:?}",
        outcome.model_count, outcome.error, outcome.stop_reason
    );

    // Compare against the one-model top-down approach, the only
    // alternative with comparable cost.
    let split = CubeSplit::new(&dataset, 0.8);
    let td = top_down(&dataset, &split, &BaselineOptions::default());
    println!(
        "top-down baseline: {} model, error {:.4}",
        td.model_count,
        td.overall_error()
    );
    println!(
        "→ advisor uses {}x the models of top-down for a {:.1}% error reduction",
        outcome.model_count,
        100.0 * (td.overall_error() - outcome.error) / td.overall_error()
    );

    // The advisor is interruptible: its history shows error and cost after
    // every iteration, so an operator can stop as soon as the trade-off is
    // acceptable (§IV-D output phase).
    println!("\niteration history (error / models):");
    for s in outcome.history.iter() {
        println!(
            "  iter {:>2}  α={:.2}  error {:.4}  models {:>3}  (+{} built, {} accepted, {} deleted)",
            s.iteration, s.alpha, s.error, s.model_count, s.models_built, s.accepted, s.deleted
        );
    }
}
