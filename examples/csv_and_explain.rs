//! Bring-your-own-data workflow: import a CSV of multi-dimensional time
//! series (schema and functional dependencies are inferred), run the
//! advisor, inspect query plans with EXPLAIN, and export the data back.
//!
//! Run with: `cargo run --release --example csv_and_explain`

use fdc::advisor::{Advisor, AdvisorOptions};
use fdc::datagen::{export_csv, import_csv};
use fdc::f2db::F2db;
use fdc::forecast::Granularity;

fn main() {
    // A small shop: 2 regions of 2 stores each (store → region is
    // inferred from the data), 24 months of sales.
    let mut csv = String::from("time,store,region,sales\n");
    for t in 0..24 {
        for (store, region, level) in [
            ("S1", "North", 100.0),
            ("S2", "North", 60.0),
            ("S3", "South", 140.0),
            ("S4", "South", 80.0),
        ] {
            let season = 1.0 + 0.25 * (t as f64 / 12.0 * std::f64::consts::TAU).sin();
            let value = level * season + (t as f64) * 0.5 + ((t * 7 + store.len()) % 5) as f64;
            csv.push_str(&format!("{t},{store},{region},{value:.2}\n"));
        }
    }

    let dataset = import_csv(&csv, Granularity::Monthly).expect("valid CSV");
    let schema = dataset.graph().schema();
    println!(
        "imported: {} base series, {} nodes, inferred {} functional dependenc{}",
        dataset.graph().base_nodes().len(),
        dataset.node_count(),
        schema.dependencies().len(),
        if schema.dependencies().len() == 1 {
            "y"
        } else {
            "ies"
        },
    );
    for fd in schema.dependencies() {
        println!(
            "  {} -> {}",
            schema.dimensions()[fd.determinant].name(),
            schema.dimensions()[fd.dependent].name()
        );
    }

    let outcome = Advisor::new(&dataset, AdvisorOptions::default())
        .expect("valid dataset")
        .run();
    println!(
        "\nadvisor: error {:.4}, {} models\n",
        outcome.error, outcome.model_count
    );

    let db = F2db::load(dataset, &outcome.configuration).expect("loads");

    // EXPLAIN shows how the query will be answered before running it.
    let sql = "SELECT time, SUM(sales) FROM facts WHERE region = 'North' GROUP BY time AS OF now() + '3 months'";
    let plan = db.explain(sql).expect("plan");
    println!("{plan}");

    let result = db.query(sql).expect("query");
    for (t, v) in &result.rows[0].values {
        println!("North region forecast t={t}: {v:.1}");
    }

    // AVG queries derive from the SUM forecast.
    let avg = db
        .query("SELECT time, AVG(sales) FROM facts GROUP BY time AS OF now() + '1 month'")
        .expect("avg query");
    println!(
        "\naverage store sales next month: {:.1}",
        avg.rows[0].values[0].1
    );

    // Round-trip back to CSV.
    let exported = export_csv(&db.dataset(), "sales");
    println!(
        "\nexport: {} lines of CSV (round-trips through import_csv)",
        exported.lines().count()
    );
}
