//! Sales forecasting over a product × city × region cube — the running
//! example of the paper (Fig. 1): base and aggregated forecast queries,
//! plus interactive drill-down navigation of forecast results.
//!
//! Run with: `cargo run --release --example sales_forecasting`

use fdc::advisor::{Advisor, AdvisorOptions};
use fdc::cube::{Coord, Dataset, Dimension, FunctionalDependency, Schema};
use fdc::f2db::F2db;
use fdc::forecast::{Granularity, TimeSeries};

/// Builds the cube of Fig. 1: 4 cities in 2 regions (functional
/// dependency city → region), 4 products, 3 years of daily-ish sales
/// rendered as monthly data for brevity.
fn fig1_dataset() -> Dataset {
    let schema = Schema::new(
        vec![
            Dimension::new(
                "city",
                vec!["C1".into(), "C2".into(), "C3".into(), "C4".into()],
            ),
            Dimension::new("region", vec!["R1".into(), "R2".into()]),
            Dimension::new(
                "product",
                vec!["P1".into(), "P2".into(), "P3".into(), "P4".into()],
            ),
        ],
        vec![FunctionalDependency::new(0, 1, vec![0, 0, 1, 1])],
    )
    .expect("schema is valid");

    let region_of = [0u32, 0, 1, 1];
    let mut base = Vec::new();
    for city in 0..4u32 {
        for product in 0..4u32 {
            // Seasonal sales with a product-specific level and a shared
            // yearly cycle; city 4 sells disproportionately much P4.
            let boost = if city == 3 && product == 3 { 2.5 } else { 1.0 };
            let values: Vec<f64> = (0..36)
                .map(|t| {
                    let season =
                        1.0 + 0.3 * (2.0 * std::f64::consts::PI * (t % 12) as f64 / 12.0).sin();
                    boost * (40.0 + city as f64 * 10.0 + product as f64 * 5.0) * season
                        + (t as f64 * 0.8)
                })
                .collect();
            base.push((
                Coord::new(vec![city, region_of[city as usize], product]),
                TimeSeries::new(values, Granularity::Monthly),
            ));
        }
    }
    Dataset::from_base(schema, base).expect("base data is valid")
}

fn main() {
    let dataset = fig1_dataset();
    println!(
        "sales cube: {} base series, {} nodes",
        dataset.graph().base_nodes().len(),
        dataset.node_count()
    );

    let outcome = Advisor::new(&dataset, AdvisorOptions::default())
        .expect("valid dataset")
        .run();
    println!(
        "configuration: error {:.4}, {} models\n",
        outcome.error, outcome.model_count
    );
    let db = F2db::load(dataset, &outcome.configuration).expect("loads");

    // Forecast Query 1 of the paper: product P4 in city C4, next step.
    println!("-- Query 1: SELECT time, sales WHERE product='P4' AND city='C4' --");
    let q1 = db
        .query("SELECT time, sales FROM facts WHERE product = 'P4' AND city = 'C4' AS OF now() + '1 month'")
        .expect("query 1");
    for (t, v) in &q1.rows[0].values {
        println!("  {}  t={t}  {v:.1}", q1.rows[0].label);
    }

    // Forecast Query 2: product P4 in region R2 (aggregated series).
    println!("\n-- Query 2: SELECT time, SUM(sales) WHERE product='P4' AND region='R2' --");
    let q2 = db
        .query("SELECT time, SUM(sales) FROM facts WHERE product = 'P4' AND region = 'R2' GROUP BY time AS OF now() + '1 month'")
        .expect("query 2");
    for (t, v) in &q2.rows[0].values {
        println!("  {}  t={t}  {v:.1}", q2.rows[0].label);
    }

    // Drill-down: from region R2 down to its cities.
    println!("\n-- Drill-down: P4 sales per city in R2 --");
    let drill = db
        .query("SELECT time, SUM(sales) FROM facts WHERE product = 'P4' AND region = 'R2' GROUP BY time, city AS OF now() + '1 month'")
        .expect("drill-down");
    let mut city_sum = 0.0;
    for row in &drill.rows {
        println!("  {:<12} {:>8.1}", row.label, row.values[0].1);
        city_sum += row.values[0].1;
    }
    println!(
        "  (cities sum to {:.1}; region forecast was {:.1})",
        city_sum, q2.rows[0].values[0].1
    );

    // Roll-up: total sales over everything.
    println!("\n-- Roll-up: total sales forecast for the next 3 months --");
    let total = db
        .query("SELECT time, SUM(sales) FROM facts GROUP BY time AS OF now() + '3 months'")
        .expect("roll-up");
    for (t, v) in &total.rows[0].values {
        println!("  t={t}  {v:.1}");
    }
}
