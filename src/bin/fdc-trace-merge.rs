//! `fdc-trace-merge` — splice per-process Chrome-trace exports into one
//! Perfetto-loadable timeline.
//!
//! Each `fdc-serve` process run with `FDC_TRACE_OUT=<file>` writes its
//! own `{"traceEvents":[...]}` document. The events carry real OS pids,
//! epoch-anchored microsecond timestamps, and (for sampled requests)
//! trace/span ids, so concatenating the documents yields a single
//! timeline where a traced insert's serve, WAL-commit, ship and
//! follower-apply spans line up across process tracks. This tool is the
//! CLI face of `fdc_obs::merge_trace_files`; the shell's
//! `\trace --merge` does the same in-session.
//!
//! ```sh
//! fdc-trace-merge merged.json primary.json follower.json
//! ```

use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    if args.len() < 3 {
        eprintln!("usage: fdc-trace-merge <out.json> <in.json> <in.json>...");
        eprintln!("merges Chrome-trace exports (FDC_TRACE_OUT files) into one Perfetto timeline");
        std::process::exit(2);
    }
    let inputs: Vec<&Path> = args[1..].iter().map(PathBuf::as_path).collect();
    match fdc::obs::merge_trace_files(&inputs, &args[0]) {
        Ok(()) => {
            eprintln!(
                "merged {} trace(s) into {} — load it at https://ui.perfetto.dev",
                inputs.len(),
                args[0].display()
            );
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
