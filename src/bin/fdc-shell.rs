//! `fdc-shell` — an interactive session against the embedded
//! flash-forward database.
//!
//! Loads a data set (a CSV in the `fdc::datagen::import_csv` long format,
//! or a built-in demo cube), runs the model configuration advisor, and
//! then reads SQL statements from stdin: forecast queries, inserts,
//! `EXPLAIN` and `EXPLAIN ANALYZE`, plus the meta commands `\report`,
//! `\stats`, `\accuracy`, `\metrics`, `\events`, `\serve`, `\listen`,
//! `\wal`, `\trace` and `\quit`. `\listen <port>` starts the `fdc-serve`
//! forecast server on the session's engine, so the same catalog answers
//! both the prompt and HTTP clients.
//!
//! `--wal <dir>` attaches a write-ahead log: acknowledged inserts are
//! fsynced before `ok` and replayed onto the freshly advised engine at
//! the next start, so a session (or a `\listen` server) survives a
//! crash. `\wal` shows the log position.
//!
//! `--replica-of <host:port>` (with `--wal <dir>` as the local log)
//! starts a read-only follower replica of a primary `\listen` server:
//! the primary's WAL is shipped into the local log and applied
//! continuously, reads serve from the replicated state, and writes are
//! rejected until `POST /promote` turns the follower into a primary.
//!
//! Partitioned deployments: `--catalog <file>` persists the advised
//! configuration (first start advises and saves, later starts load —
//! every process of a deployment must share the same catalog);
//! `--topology <file> --shard-id <id>` restricts this process to the
//! base cells the topology's rendezvous placement assigns to `<id>`
//! (`\topology` shows the partition); `--router <file>` starts no
//! engine at all — just the `fdc-router` scatter-gather tier over the
//! topology's shards (`--port <p>` picks its port).
//!
//! ```sh
//! cargo run --release --bin fdc-shell                 # demo cube
//! cargo run --release --bin fdc-shell -- data.csv     # your data (monthly)
//! cargo run --release --bin fdc-shell -- --wal wal/   # durable inserts
//! cargo run --release --bin fdc-shell -- --wal fwal/ --replica-of 127.0.0.1:8080
//! cargo run --release --bin fdc-shell -- --catalog cat.f2c --topology topo.json --shard-id s0
//! cargo run --release --bin fdc-shell -- --router topo.json --port 8080
//! ```

use fdc::advisor::{summarize, Advisor, AdvisorOptions};
use fdc::datagen::{generate_cube, import_csv, GenSpec};
use fdc::f2db::{ApproxOptions, ApproxQuerySpec, F2db};
use fdc::forecast::Granularity;
use fdc::obs::{AccuracyOptions, ObsServer, TraceCollector};
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::Arc;

fn main() {
    // `FDC_TRACE_OUT=<file> fdc-shell …` streams every span close to a
    // Chrome-trace file (flushed ~100 ms, crash-tolerant), the same
    // exporter the failover harness uses; `FDC_TRACE_NAME` labels the
    // process track so merged primary/follower timelines read well.
    if fdc::obs::install_env_exporter().is_some() {
        eprintln!(
            "tracing spans to {} (FDC_TRACE_OUT)",
            std::env::var("FDC_TRACE_OUT").unwrap_or_default()
        );
    }
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Flag helpers: remove `--name value` from the positional args.
    let take_value = |args: &mut Vec<String>, name: &str| -> Option<String> {
        let i = args.iter().position(|a| a == name)?;
        args.remove(i);
        if i < args.len() {
            Some(args.remove(i))
        } else {
            eprintln!("{name} needs a value");
            std::process::exit(1);
        }
    };
    if let Some(topology_path) = take_value(&mut args, "--router") {
        let port = take_value(&mut args, "--port")
            .map(|p| p.parse::<u16>().unwrap_or(0))
            .unwrap_or(0);
        run_router(&PathBuf::from(topology_path), port);
        return;
    }
    let catalog_path = take_value(&mut args, "--catalog").map(PathBuf::from);
    let topology_path = take_value(&mut args, "--topology").map(PathBuf::from);
    let shard_id = take_value(&mut args, "--shard-id");
    if topology_path.is_some() != shard_id.is_some() {
        eprintln!("--topology and --shard-id go together");
        std::process::exit(1);
    }
    let mut wal_dir: Option<PathBuf> = None;
    if let Some(i) = args.iter().position(|a| a == "--wal") {
        args.remove(i);
        if i < args.len() {
            wal_dir = Some(PathBuf::from(args.remove(i)));
        } else {
            eprintln!("--wal needs a directory");
            std::process::exit(1);
        }
    }
    let mut replica_of: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--replica-of") {
        args.remove(i);
        if i < args.len() {
            replica_of = Some(args.remove(i));
        } else {
            eprintln!("--replica-of needs a primary address (host:port)");
            std::process::exit(1);
        }
    }
    if replica_of.is_some() && wal_dir.is_none() {
        eprintln!("--replica-of needs --wal <dir> for the follower's local log");
        std::process::exit(1);
    }
    let dataset = match args.first() {
        Some(path) => {
            let content = match std::fs::read_to_string(path) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                }
            };
            let granularity = match args.get(1).map(String::as_str) {
                Some("hourly") => Granularity::Hourly,
                Some("daily") => Granularity::Daily,
                Some("weekly") => Granularity::Weekly,
                Some("quarterly") => Granularity::Quarterly,
                Some("yearly") => Granularity::Yearly,
                _ => Granularity::Monthly,
            };
            match import_csv(&content, granularity) {
                Ok(ds) => ds,
                Err(e) => {
                    eprintln!("import failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => {
            eprintln!("no CSV given — using a demo cube (24 base series, quarterly)");
            generate_cube(&GenSpec::new(24, 48, 42)).dataset
        }
    };

    eprintln!(
        "cube: {} base series, {} nodes",
        dataset.graph().base_nodes().len(),
        dataset.node_count()
    );
    // `--catalog <file>`: a saved configuration is authoritative — every
    // process of a partitioned deployment must advise *once* and share
    // the result, or advisor nondeterminism would give each shard a
    // different model catalog and routed answers could never match an
    // unpartitioned oracle.
    let (db, report) = match &catalog_path {
        Some(path) if path.exists() => {
            eprintln!(
                "catalog: loading shared configuration from {}",
                path.display()
            );
            match F2db::open_catalog(dataset, path) {
                Ok(db) => (
                    db,
                    String::from("(configuration loaded from --catalog — no advisor report)"),
                ),
                Err(e) => {
                    eprintln!("catalog load failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => {
            eprintln!("running the advisor…");
            let outcome = match Advisor::new(&dataset, AdvisorOptions::default()) {
                Ok(mut advisor) => advisor.run(),
                Err(e) => {
                    eprintln!("advisor failed: {e}");
                    std::process::exit(1);
                }
            };
            eprintln!(
                "configuration ready: error {:.4}, {} models\n",
                outcome.error, outcome.model_count
            );
            let report = summarize(&dataset, &outcome.configuration, 5).to_string();
            let db = match F2db::load(dataset, &outcome.configuration) {
                Ok(db) => db,
                Err(e) => {
                    eprintln!("load failed: {e}");
                    std::process::exit(1);
                }
            };
            if let Some(path) = &catalog_path {
                match db.save_catalog(path) {
                    Ok(()) => eprintln!("catalog: saved to {}", path.display()),
                    Err(e) => {
                        eprintln!("catalog save failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
            (db, report)
        }
    };
    // `--topology`/`--shard-id`: restrict this engine to the base cells
    // the rendezvous placement assigns to this shard (before the WAL
    // attaches, so replay advances under the partitioned row count).
    let db = match (&topology_path, &shard_id) {
        (Some(tp), Some(id)) => {
            let topo = match fdc::router::Topology::load(tp) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            };
            if !topo.shards.iter().any(|s| s.id == *id) {
                eprintln!("shard id {id:?} is not in the topology");
                std::process::exit(1);
            }
            let bases: Vec<_> = db.dataset().graph().base_nodes().to_vec();
            let total = bases.len();
            let mut owned = Vec::new();
            for b in bases {
                match db.partition_key(b, topo.key_dims) {
                    Ok(key) if topo.place(&key).id == *id => owned.push(b),
                    Ok(_) => {}
                    Err(e) => {
                        eprintln!("partition key failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
            match db.with_base_partition(&owned) {
                Ok(db) => {
                    let (o, r) = db.partition_summary().unwrap_or((0, 0));
                    eprintln!(
                        "partition {id}: {o} of {total} base cell(s) owned, {r} node(s) resident"
                    );
                    db
                }
                Err(e) => {
                    eprintln!("partitioning failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => db,
    };
    // Replica mode: the WAL directory is the follower's *local* log —
    // `open_follower` replays it, starts the fetch loop against the
    // primary and hands back a read-only engine. Otherwise attach
    // (replaying) the write-ahead log before serving the prompt:
    // inserts acknowledged by a previous session come back, future ones
    // are fsynced before their `ok`.
    let mut replica: Option<Arc<fdc::serve::Replica>> = None;
    let db: Arc<F2db> = if let Some(primary) = replica_of.clone() {
        let follower_opts = fdc::serve::ServeOptions {
            wal_dir: wal_dir.clone(),
            replica_of: Some(primary.clone()),
            ..fdc::serve::ServeOptions::default()
        };
        let follower = db.with_drift_monitoring(AccuracyOptions::default());
        match fdc::serve::open_follower(follower, &follower_opts) {
            Ok((db, r)) => {
                eprintln!(
                    "follower replica of {primary}: local log at seq {}, read-only until promoted",
                    r.applied_seq()
                );
                replica = Some(r);
                db
            }
            Err(e) => {
                eprintln!("replica start failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        let db = match &wal_dir {
            Some(dir) => match db.attach_wal(dir, fdc::wal::WalOptions::default()) {
                Ok((db, report)) => {
                    eprintln!(
                        "wal: {} — replayed {} batch(es) / {} row(s), resumed from seq {}, {} torn byte(s) dropped",
                        dir.display(),
                        report.replayed_batches,
                        report.replayed_rows,
                        report.resumed_from_seq,
                        report.wal.truncated_bytes,
                    );
                    db
                }
                Err(e) => {
                    eprintln!("wal attach failed: {e}");
                    std::process::exit(1);
                }
            },
            None => db,
        };
        Arc::new(db.with_drift_monitoring(AccuracyOptions::default()))
    };

    let dims: Vec<String> = db
        .dataset()
        .graph()
        .schema()
        .dimensions()
        .iter()
        .map(|d| d.name().to_string())
        .collect();
    eprintln!("dimensions: {}", dims.join(", "));
    eprintln!("catalog: {} shards", db.shard_count());
    eprintln!("try: SELECT time, SUM(v) FROM facts GROUP BY time AS OF now() + '4 steps'");
    eprintln!(
        "     EXPLAIN [ANALYZE] <query> | \\report | \\stats | \\accuracy | \\maintain | \\metrics [human|json]"
    );
    eprintln!(
        "     \\events [n] | \\serve <port> | \\listen <port> | \\topology | \\wal | \\slow | \\quit"
    );
    eprintln!("     \\approx [on|off|budget <cells>|target <rel> [conf]]");
    eprintln!("     \\trace <file.json> | \\trace | \\trace --merge <out.json> <in.json>...\n");

    // Export-plane state owned by the session: a running HTTP exporter,
    // an in-progress Chrome trace recording, and/or a forecast server
    // answering HTTP clients from the same engine.
    let mut server: Option<ObsServer> = None;
    let mut forecast_server: Option<fdc::serve::Server> = None;
    let mut trace: Option<(Arc<TraceCollector>, PathBuf)> = None;
    // Per-session approximation controls: `\approx on` attaches a
    // sampling plane to the engine; SELECTs then answer registered
    // nodes with Horvitz–Thompson scale-ups and an interval.
    let mut approx_spec: Option<ApproxQuerySpec> = None;

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("fdc> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            "\\quit" | "\\q" | "exit" => break,
            "\\report" => {
                println!("{report}");
                continue;
            }
            "\\metrics" => {
                // Same encoder as the HTTP /metrics route, so the shell
                // output and a scrape can never disagree.
                let snap = fdc::obs::snapshot();
                if snap.is_empty() {
                    println!("(no metrics recorded yet)");
                } else {
                    print!("{}", fdc::obs::encode_prometheus(&snap));
                }
                continue;
            }
            "\\metrics human" => {
                let snap = fdc::obs::snapshot();
                if snap.is_empty() {
                    println!("(no metrics recorded yet)");
                } else {
                    print!("{snap}");
                }
                continue;
            }
            "\\metrics json" => {
                println!("{}", fdc::obs::snapshot().to_json());
                continue;
            }
            "\\stats" => {
                let s = db.stats();
                println!(
                    "queries {}, inserts {}, advances {}, updates {}, invalidations {}, reestimations {}, avg query {:?}, {} shards",
                    s.queries,
                    s.inserts,
                    s.time_advances,
                    s.model_updates,
                    s.invalidations,
                    s.reestimations,
                    s.avg_query_time(),
                    db.shard_count()
                );
                continue;
            }
            "\\wal" => {
                match db.wal_stats() {
                    Some(s) => {
                        let grouped = if s.fsyncs > 0 {
                            format!(
                                ", {:.1} append(s)/fsync",
                                s.appends as f64 / s.fsyncs as f64
                            )
                        } else {
                            String::new()
                        };
                        println!(
                            "wal: last_seq {}, checkpoint_seq {}, {} segment(s), {} append(s) ({} bytes), {} fsync(s){grouped}",
                            s.last_seq,
                            s.checkpoint_seq,
                            s.segments,
                            s.appends,
                            s.appended_bytes,
                            s.fsyncs,
                        );
                    }
                    None => println!("(no write-ahead log — start the shell with --wal <dir>)"),
                }
                continue;
            }
            "\\accuracy" => {
                match db.drift_monitor() {
                    Some(acc) => {
                        let summaries = acc.summaries();
                        if summaries.is_empty() {
                            println!("(no accuracy windows yet — insert a full round first)");
                        } else {
                            // Keys are catalog node ids; render the
                            // dimension-value coordinate instead so the
                            // row is readable without a graph dump.
                            let ds = db.dataset();
                            let g = ds.graph();
                            let label = |key: u64| -> String {
                                let n = key as usize;
                                if n < ds.node_count() {
                                    g.coord(n).display(g.schema())
                                } else {
                                    format!("node {key}")
                                }
                            };
                            const MAX_ROWS: usize = 50;
                            println!(
                                "{:<28} {:>6} {:>12} {:>12} {:>12}  state",
                                "cell", "n", "mean err", "stddev", "smape"
                            );
                            for s in summaries.iter().take(MAX_ROWS) {
                                println!(
                                    "{:<28} {:>6} {:>12.4} {:>12.4} {:>12.4}  {}",
                                    label(s.key),
                                    s.total(),
                                    s.err.mean(),
                                    s.err.stddev(),
                                    s.smape.mean(),
                                    if s.drifting { "DRIFTING" } else { "ok" }
                                );
                            }
                            if summaries.len() > MAX_ROWS {
                                println!("… ({} more)", summaries.len() - MAX_ROWS);
                            }
                            let drifting = summaries.iter().filter(|s| s.drifting).count();
                            println!("{} node(s) tracked, {drifting} drifting", summaries.len());
                        }
                    }
                    None => println!("(drift monitoring disabled)"),
                }
                continue;
            }
            "\\topology" => {
                match db.partition_summary() {
                    Some((owned, resident)) => println!(
                        "partitioned shard: {owned} base cell(s) owned, {resident} of {} node(s) resident",
                        db.dataset().node_count()
                    ),
                    None => println!(
                        "(not partitioned — start with --topology <file> --shard-id <id>, \
                         or run the routing tier with --router <file>)"
                    ),
                }
                continue;
            }
            "\\maintain" => {
                match db.maintain() {
                    Ok(refitted) => println!(
                        "maintenance sweep done: {refitted} models re-fitted, {} still invalid",
                        db.catalog().invalid_nodes().len()
                    ),
                    Err(e) => println!("error: {e}"),
                }
                continue;
            }
            _ => {}
        }
        if let Some(rest) = line.strip_prefix("\\events") {
            let n = rest.trim().parse::<usize>().unwrap_or(16);
            let events = fdc::obs::journal().recent(n);
            if events.is_empty() {
                println!("(no events journaled yet)");
            } else {
                for e in events {
                    println!("{e}");
                }
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("\\serve") {
            if let Some(s) = &server {
                println!("exporter already running on {}", s.addr());
                continue;
            }
            let port = rest.trim().parse::<u16>().unwrap_or(0);
            match ObsServer::bind(port) {
                Ok(s) => {
                    println!(
                        "serving http://{} — /metrics /healthz /events?n= /snapshot",
                        s.addr()
                    );
                    server = Some(s);
                }
                Err(e) => println!("error: cannot bind port {port}: {e}"),
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("\\listen") {
            if let Some(s) = &forecast_server {
                println!("forecast server already listening on {}", s.addr());
                continue;
            }
            let port = rest.trim().parse::<u16>().unwrap_or(0);
            let listen_opts = fdc::serve::ServeOptions {
                replica_of: replica_of.clone(),
                ..fdc::serve::ServeOptions::default()
            };
            let started = match &replica {
                Some(r) => fdc::serve::Server::start_with_replica(
                    Arc::clone(&db),
                    port,
                    listen_opts,
                    Arc::clone(r),
                ),
                None => fdc::serve::Server::start(Arc::clone(&db), port, listen_opts),
            };
            match started {
                Ok(s) => {
                    println!(
                        "forecast server on http://{} — POST /query /explain /insert /maintain, GET /stats /healthz{}",
                        s.addr(),
                        if replica.is_some() {
                            " (follower: writes 409 until POST /promote)"
                        } else {
                            ""
                        }
                    );
                    forecast_server = Some(s);
                }
                Err(e) => println!("error: cannot bind port {port}: {e}"),
            }
            continue;
        }
        if line == "\\slow" {
            match &forecast_server {
                Some(s) => {
                    let log = s.slow_log();
                    let entries = log.entries();
                    if entries.is_empty() {
                        println!(
                            "(no slow requests captured — threshold {:?}, {} captured total)",
                            log.threshold(),
                            log.captured()
                        );
                    } else {
                        for e in &entries {
                            println!(
                                "{} {} {} {:.1}ms trace={}",
                                e.unix_ms,
                                e.route,
                                e.status,
                                e.latency_ns as f64 / 1e6,
                                e.trace_id
                                    .map(|t| format!("{t:032x}"))
                                    .unwrap_or_else(|| "-".into()),
                            );
                            if let Some(sql) = &e.sql {
                                println!("  sql: {sql}");
                            }
                            if let Some(wait) = &e.wait {
                                println!("  wait: {wait}");
                            }
                            if let Some(plan) = &e.explain {
                                for l in plan.lines() {
                                    println!("  | {l}");
                                }
                            }
                        }
                        println!(
                            "{} shown, {} captured total (threshold {:?})",
                            entries.len(),
                            log.captured(),
                            log.threshold()
                        );
                    }
                }
                None => println!("(no forecast server — \\listen <port> first)"),
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("\\approx") {
            let rest = rest.trim();
            let mut parts = rest.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (None, _, _) => match (&approx_spec, db.approx_enabled()) {
                    (None, false) => {
                        println!("approx off — \\approx on to attach a sampling plane")
                    }
                    (None, true) => {
                        println!("plane attached, queries exact — set a budget or target")
                    }
                    (Some(spec), enabled) => println!(
                        "approx on (plane {}): budget {}, target CI {}, confidence {}",
                        if enabled { "attached" } else { "MISSING" },
                        spec.budget.map_or("none".into(), |b| b.to_string()),
                        spec.target_ci
                            .map_or("none".into(), |t| format!("{:.1}%", t * 100.0)),
                        spec.confidence
                            .map_or("default".into(), |c| format!("{c:.2}")),
                    ),
                },
                (Some("on"), _, _) => {
                    if db.approx_enabled() {
                        println!("plane already attached");
                    } else {
                        match db.enable_approx(ApproxOptions::default()) {
                            Ok(()) => println!("sampling plane attached"),
                            Err(e) => {
                                println!("error: {e}");
                                continue;
                            }
                        }
                    }
                    approx_spec.get_or_insert_with(ApproxQuerySpec::default);
                }
                (Some("off"), _, _) => {
                    db.disable_approx();
                    approx_spec = None;
                    println!("approx off — queries exact");
                }
                (Some("budget"), Some(n), _) => match n.parse::<usize>() {
                    Ok(n) if n > 0 => {
                        let spec = approx_spec.get_or_insert_with(ApproxQuerySpec::default);
                        spec.budget = Some(n);
                        if !db.approx_enabled() {
                            println!("(budget set; \\approx on to attach the plane)");
                        } else {
                            println!("budget: {n} cells per node");
                        }
                    }
                    _ => println!("usage: \\approx budget <cells>"),
                },
                (Some("target"), Some(t), conf) => match t.trim_end_matches('%').parse::<f64>() {
                    Ok(t) if t > 0.0 && t.is_finite() => {
                        let rel = if t >= 1.0 { t / 100.0 } else { t };
                        let spec = approx_spec.get_or_insert_with(ApproxQuerySpec::default);
                        spec.target_ci = Some(rel);
                        if let Some(c) = conf {
                            match c.parse::<f64>() {
                                Ok(c) if c > 0.0 && c < 1.0 => spec.confidence = Some(c),
                                _ => {
                                    println!("confidence must be in (0, 1)");
                                    continue;
                                }
                            }
                        }
                        if !db.approx_enabled() {
                            println!("(target set; \\approx on to attach the plane)");
                        } else {
                            println!("target CI: {:.1}% relative half-width", rel * 100.0);
                        }
                    }
                    _ => println!("usage: \\approx target <rel|pct%> [confidence]"),
                },
                _ => println!("usage: \\approx [on|off|budget <cells>|target <rel> [conf]]"),
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("\\trace --merge") {
            let paths: Vec<PathBuf> = rest.split_whitespace().map(PathBuf::from).collect();
            if paths.len() < 2 {
                println!("usage: \\trace --merge <out.json> <in.json> <in.json>...");
                continue;
            }
            let inputs: Vec<&std::path::Path> = paths[1..].iter().map(PathBuf::as_path).collect();
            match fdc::obs::merge_trace_files(&inputs, &paths[0]) {
                Ok(()) => println!(
                    "merged {} trace(s) into {} — load it at https://ui.perfetto.dev",
                    inputs.len(),
                    paths[0].display()
                ),
                Err(e) => println!("error merging traces: {e}"),
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("\\trace") {
            let rest = rest.trim();
            match (&mut trace, rest.is_empty()) {
                (Some((collector, path)), true) => {
                    fdc::obs::take_subscriber();
                    match collector.write_to(path) {
                        Ok(()) => println!(
                            "wrote {} span(s) to {} — load it at https://ui.perfetto.dev",
                            collector.len(),
                            path.display()
                        ),
                        Err(e) => println!("error writing trace: {e}"),
                    }
                    trace = None;
                }
                (None, true) => println!("usage: \\trace <file.json> to record, \\trace to stop"),
                (_, false) => {
                    let collector = TraceCollector::new();
                    fdc::obs::set_subscriber(collector.clone());
                    trace = Some((collector, PathBuf::from(rest)));
                    println!("recording spans; \\trace again to write {rest}");
                }
            }
            continue;
        }
        let lowered = line.to_ascii_lowercase();
        if lowered.starts_with("explain") {
            let analyzed = lowered.starts_with("explain analyze");
            let plan = if analyzed {
                db.explain_analyze(line)
            } else {
                db.explain(line)
            };
            match plan {
                Ok(plan) => println!("{plan}"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        let result = match (&approx_spec, lowered.starts_with("select")) {
            (Some(spec), true) => db.query_with(line, Some(spec)),
            _ => db.execute(line),
        };
        match result {
            Ok(result) if result.rows.is_empty() => {
                println!("ok ({} inserts pending)", db.pending_inserts());
            }
            Ok(result) => {
                for row in &result.rows {
                    match &row.approx {
                        None => {
                            println!("[{}]", row.label);
                            for (t, v) in &row.values {
                                println!("  t={t:<6} {v:.3}");
                            }
                        }
                        Some(a) => {
                            println!(
                                "[{}]  ~ {} of {} cells sampled, {:.0}% CI",
                                row.label,
                                a.sampled,
                                a.population,
                                a.confidence * 100.0
                            );
                            for ((t, v), half) in row.values.iter().zip(&a.ci_half) {
                                println!("  t={t:<6} {v:.3} ± {half:.3}");
                            }
                        }
                    }
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }
    if let Some(s) = forecast_server.take() {
        match s.shutdown() {
            Ok(r) => eprintln!(
                "forecast server drained: {} queued request(s) answered, {} row(s) flushed",
                r.drained_requests, r.flushed_rows
            ),
            Err(e) => eprintln!("forecast server shutdown failed: {e}"),
        }
    }
    if let Some(r) = replica.take() {
        // Stop the fetch loop cleanly; the local log stays as
        // replicated and the next start resumes from it.
        r.seal();
    }
    drop(server);
}

/// `--router <topology>`: the stateless scatter-gather tier. No data
/// set, no advisor, no engine — just the topology and a prompt for the
/// few meta commands that make sense without one.
fn run_router(path: &std::path::Path, port: u16) {
    let topology = match fdc::router::Topology::load(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let shards: Vec<String> = topology
        .shards
        .iter()
        .map(|s| match &s.replica {
            Some(r) => format!("{} ({}, replica {r})", s.id, s.addr),
            None => format!("{} ({})", s.id, s.addr),
        })
        .collect();
    let router =
        match fdc::router::Router::start(topology, port, fdc::router::RouterOptions::default()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cannot start router: {e}");
                std::process::exit(1);
            }
        };
    eprintln!(
        "router on http://{} — POST /query /explain /insert, GET /stats /metrics /healthz /topology",
        router.addr()
    );
    eprintln!("shards: {}", shards.join(", "));
    eprintln!("meta: \\topology | \\metrics | \\events [n] | \\quit\n");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("fdc-router> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        match line {
            "" => continue,
            "\\quit" | "\\q" | "exit" => break,
            "\\topology" => println!("{}", router.topology().encode()),
            "\\metrics" => {
                let snap = fdc::obs::snapshot();
                if snap.is_empty() {
                    println!("(no metrics recorded yet)");
                } else {
                    print!("{}", fdc::obs::encode_prometheus(&snap));
                }
            }
            _ => {
                if let Some(rest) = line.strip_prefix("\\events") {
                    let n = rest.trim().parse::<usize>().unwrap_or(16);
                    let events = fdc::obs::journal().recent(n);
                    if events.is_empty() {
                        println!("(no events journaled yet)");
                    } else {
                        for e in events {
                            println!("{e}");
                        }
                    }
                } else {
                    println!("(router mode — SQL goes to POST /query; meta commands only here)");
                }
            }
        }
    }
    router.shutdown();
    eprintln!("router stopped");
}
