//! # fdc — Forecasting the Data Cube
//!
//! Umbrella crate for the reproduction of *Forecasting the Data Cube: A
//! Model Configuration Advisor for Multi-Dimensional Data Sets* (Fischer,
//! Schildt, Hartmann, Lehner — ICDE 2013).
//!
//! The workspace is organized as one crate per subsystem; this crate
//! re-exports their public APIs so downstream users can depend on a single
//! crate:
//!
//! * [`forecast`] — time series, accuracy measures, exponential smoothing
//!   and (S)ARIMA models, numerical parameter estimation.
//! * [`cube`] — dimension schemas with functional dependencies, the time
//!   series hyper graph, derivation schemes and configuration evaluation.
//! * [`advisor`] — the model configuration advisor (the paper's primary
//!   contribution).
//! * [`hierarchical`] — the baselines the paper compares against: direct,
//!   bottom-up, top-down, optimal combination, greedy.
//! * [`f2db`] — the embedded flash-forward database: configuration storage,
//!   forecast query language and processor, maintenance processor.
//! * [`datagen`] — synthetic data generation (SARIMA simulation, GenX
//!   cubes, proxies of the paper's real-world data sets).
//! * [`linalg`] — the dense linear algebra kernel used by reconciliation.
//! * [`obs`] — observability: the global metrics registry (counters,
//!   gauges, latency histograms) and hierarchical tracing spans.
//! * [`serve`] — the network forecast-serving subsystem: an HTTP/1.1
//!   worker pool over the F²DB engine with micro-batched writes,
//!   admission control and graceful drain.
//! * [`wal`] — the write-ahead log: segmented, checksummed, group-
//!   committed durability under the F²DB engine, with replay-on-open
//!   crash recovery.
//! * [`rng`] — the deterministic xoshiro256** random number generator
//!   shared by data generation, stochastic optimizers and sampling.
//!
//! ## Quickstart
//!
//! ```
//! use fdc::datagen::{GenSpec, generate_cube};
//! use fdc::advisor::{Advisor, AdvisorOptions};
//!
//! // Generate a small synthetic cube (16 base series, 3 levels).
//! let data = generate_cube(&GenSpec::small(16, 48, 7));
//! // Run the advisor until its α schedule completes.
//! let mut advisor = Advisor::new(&data.dataset, AdvisorOptions::default()).unwrap();
//! let outcome = advisor.run();
//! assert!(outcome.configuration.model_count() >= 1);
//! ```

pub use fdc_approx as approx;
pub use fdc_core as advisor;
pub use fdc_cube as cube;
pub use fdc_datagen as datagen;
pub use fdc_f2db as f2db;
pub use fdc_forecast as forecast;
pub use fdc_hierarchical as hierarchical;
pub use fdc_linalg as linalg;
pub use fdc_obs as obs;
pub use fdc_rng as rng;
pub use fdc_router as router;
pub use fdc_serve as serve;
pub use fdc_wal as wal;
