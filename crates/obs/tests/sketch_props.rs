//! Seeded property tests of the t-digest against an exact sorted
//! oracle: uniform and lognormal streams, adversarial sorted/reversed
//! streams, merge associativity, and the acceptance bound the ISSUE
//! pins — p99/p999 of a seeded lognormal latency stream within 0.5%
//! rank error of the exact quantile.
//!
//! "Property test" here means deterministic seeded exploration (the
//! workspace is std-only): each property runs over a grid of seeds and
//! stream shapes via `fdc_rng::Rng`, so failures reproduce exactly.

use fdc_obs::TDigest;
use fdc_rng::Rng;

/// Rank error of estimate `est` for target quantile `q` against the
/// sorted exact stream: how far (as a fraction of n) the estimate's
/// position is from where the true quantile sits.
fn rank_error(sorted: &[f64], est: f64, q: f64) -> f64 {
    let below = sorted.partition_point(|&x| x < est);
    let above = sorted.partition_point(|&x| x <= est);
    // `est` may fall inside a run of equal values; the closest rank in
    // that run is the fair one to charge.
    let target = q * sorted.len() as f64;
    let rank = (target.clamp(below as f64, above as f64) - target).abs();
    rank / sorted.len() as f64
}

fn lognormal_stream(rng: &mut Rng, n: usize) -> Vec<f64> {
    (0..n)
        .map(|_| (8.0 + 0.75 * rng.standard_normal()).exp())
        .collect()
}

fn uniform_stream(rng: &mut Rng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.f64_range(0.0, 1.0e6)).collect()
}

fn digest_of(values: &[f64], compression: f64) -> TDigest {
    let mut d = TDigest::new(compression);
    for &v in values {
        d.insert(v);
    }
    d.flush();
    d
}

fn assert_stream_tracks_oracle(values: &[f64], compression: f64, tol: f64, what: &str) {
    let d = digest_of(values, compression);
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999] {
        let err = rank_error(&sorted, d.quantile(q), q);
        assert!(
            err <= tol,
            "{what}: q={q} rank error {err:.5} > {tol} (n={}, centroids={})",
            values.len(),
            d.centroid_count()
        );
    }
}

#[test]
fn uniform_streams_track_the_exact_oracle() {
    for seed in [1u64, 42, 0xDEAD] {
        for n in [100usize, 5_000, 50_000] {
            let mut rng = Rng::seed_from_u64(seed);
            let values = uniform_stream(&mut rng, n);
            assert_stream_tracks_oracle(&values, 200.0, 0.01, "uniform");
        }
    }
}

#[test]
fn lognormal_streams_track_the_exact_oracle() {
    for seed in [7u64, 99, 0xBEEF] {
        let mut rng = Rng::seed_from_u64(seed);
        let values = lognormal_stream(&mut rng, 50_000);
        assert_stream_tracks_oracle(&values, 200.0, 0.01, "lognormal");
    }
}

/// The acceptance bound: on a seeded lognormal latency stream the
/// digest's p99 and p999 sit within 0.5% rank error of the exact
/// quantile — the tail accuracy the log-bucketed histograms cannot give.
#[test]
fn lognormal_tail_quantiles_within_half_percent_rank_error() {
    let mut rng = Rng::seed_from_u64(0x01A7_E9C5);
    let values = lognormal_stream(&mut rng, 100_000);
    let d = digest_of(&values, 200.0);
    let mut sorted = values.clone();
    sorted.sort_by(f64::total_cmp);
    for q in [0.99, 0.999] {
        let est = d.quantile(q);
        let err = rank_error(&sorted, est, q);
        assert!(
            err <= 0.005,
            "q={q}: digest {est:.2} has rank error {err:.5} > 0.005"
        );
    }
}

/// Adversarial insertion orders: a fully sorted and a fully reversed
/// stream stress the buffer/compress path (every flush sees monotone
/// runs), but must not distort the quantiles.
#[test]
fn sorted_and_reversed_streams_are_not_adversarial() {
    let n = 30_000usize;
    let asc: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let desc: Vec<f64> = (0..n).rev().map(|i| i as f64).collect();
    assert_stream_tracks_oracle(&asc, 200.0, 0.01, "sorted ascending");
    assert_stream_tracks_oracle(&desc, 200.0, 0.01, "sorted descending");
    // Both orders summarize the same multiset: quantiles agree tightly.
    let da = digest_of(&asc, 200.0);
    let dd = digest_of(&desc, 200.0);
    for q in [0.1, 0.5, 0.9, 0.99] {
        let (a, b) = (da.quantile(q), dd.quantile(q));
        assert!(
            (a - b).abs() <= 0.02 * n as f64,
            "q={q}: ascending {a} vs descending {b}"
        );
    }
}

/// Merging must be associative up to the accuracy bound: merging 8
/// partial digests in left-to-right, pairwise-tree, and reversed order
/// yields the same quantiles within tolerance, and every merge order
/// tracks the pooled oracle.
#[test]
fn merge_is_associative_up_to_rank_error() {
    let mut rng = Rng::seed_from_u64(0xC0FFEE);
    let parts: Vec<Vec<f64>> = (0..8)
        .map(|s| {
            let mut r = rng.fork(s);
            lognormal_stream(&mut r, 5_000)
        })
        .collect();
    let digests: Vec<TDigest> = parts.iter().map(|p| digest_of(p, 200.0)).collect();

    let fold = |order: &[usize]| {
        let mut acc = TDigest::new(200.0);
        for &i in order {
            acc.merge(&digests[i]);
        }
        acc.flush();
        acc
    };
    let left_to_right = fold(&[0, 1, 2, 3, 4, 5, 6, 7]);
    let reversed = fold(&[7, 6, 5, 4, 3, 2, 1, 0]);
    // Pairwise tree: (01)(23)(45)(67) then ((01)(23))((45)(67)).
    let pair = |a: &TDigest, b: &TDigest| {
        let mut m = a.clone();
        m.merge(b);
        m.flush();
        m
    };
    let tree = pair(
        &pair(
            &pair(&digests[0], &digests[1]),
            &pair(&digests[2], &digests[3]),
        ),
        &pair(
            &pair(&digests[4], &digests[5]),
            &pair(&digests[6], &digests[7]),
        ),
    );

    let mut pooled: Vec<f64> = parts.iter().flatten().copied().collect();
    pooled.sort_by(f64::total_cmp);
    for d in [&left_to_right, &reversed, &tree] {
        assert_eq!(d.count(), pooled.len() as u64);
        for q in [0.05, 0.5, 0.95, 0.99, 0.999] {
            let err = rank_error(&pooled, d.quantile(q), q);
            assert!(err <= 0.01, "merge order broke q={q}: rank error {err:.5}");
        }
    }
    // And the orders agree with each other within the same bound.
    for q in [0.5, 0.99] {
        for (a, b) in [
            (left_to_right.quantile(q), reversed.quantile(q)),
            (left_to_right.quantile(q), tree.quantile(q)),
        ] {
            let err = rank_error(&pooled, a, rank_of(&pooled, b));
            assert!(err <= 0.01, "orders disagree at q={q}: {a} vs {b}");
        }
    }
}

/// Exact rank of `v` in `sorted` as a fraction of n.
fn rank_of(sorted: &[f64], v: f64) -> f64 {
    sorted.partition_point(|&x| x <= v) as f64 / sorted.len() as f64
}

/// Merging partials built from disjoint slices tracks the oracle as
/// well as one digest fed the whole stream — the per-thread shard
/// story behind `Histogram`'s striped digests.
#[test]
fn merged_partials_match_single_digest_accuracy() {
    let mut rng = Rng::seed_from_u64(2026);
    let values = uniform_stream(&mut rng, 40_000);
    let whole = digest_of(&values, 100.0);
    let mut merged = TDigest::new(100.0);
    for chunk in values.chunks(10_000) {
        merged.merge(&digest_of(chunk, 100.0));
    }
    merged.flush();
    let mut sorted = values.clone();
    sorted.sort_by(f64::total_cmp);
    assert_eq!(merged.count(), whole.count());
    for q in [0.5, 0.95, 0.99] {
        assert!(rank_error(&sorted, whole.quantile(q), q) <= 0.01);
        assert!(rank_error(&sorted, merged.quantile(q), q) <= 0.01);
    }
}
