//! End-to-end exporter test: scrape a live [`ObsServer`] with a raw
//! `TcpStream` GET and assert the Prometheus text exposition is
//! well-formed — correct content type, one `# TYPE` line per family,
//! canonical label ordering, and monotone cumulative histogram buckets.
//!
//! Runs as its own process, so the global registry contains only what
//! this file records (plus the exporter's own `obs_http_requests`).

use fdc_obs::ObsServer;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// One-shot HTTP GET, returning `(status_line, headers, body)`.
fn get(addr: SocketAddr, target: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("blank line");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), headers.to_string(), body.to_string())
}

/// Splits a sample line `name{labels} value` / `name value` into
/// `(series, value)`.
fn parse_sample(line: &str) -> (&str, f64) {
    let (series, value) = line.rsplit_once(' ').expect("sample has a value");
    (series, value.parse().expect("value parses as f64"))
}

#[test]
fn metrics_scrape_is_well_formed() {
    // Populate every metric kind, with deliberately unsorted labels.
    fdc_obs::counter_with("itest.hits", &[("zone", "eu"), ("app", "fdc")]).add(3);
    fdc_obs::counter("itest.plain").incr();
    fdc_obs::gauge("itest.level").set(-7);
    fdc_obs::float_gauge_with("itest.ratio", &[("node", "3")]).set(0.625);
    let hist = fdc_obs::histogram("itest.latency.ns");
    for v in [1, 100, 100, 5_000, 1_000_000] {
        hist.record(v);
    }

    let server = ObsServer::bind(0).unwrap();
    let addr = server.addr();

    let (status, headers, _) = get(addr, "/healthz");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert!(headers.contains("application/json"), "{headers}");

    let (status, headers, body) = get(addr, "/metrics");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert!(
        headers.contains("text/plain; version=0.0.4; charset=utf-8"),
        "{headers}"
    );

    // Canonical label order: sorted by key regardless of call order.
    assert!(
        body.contains("itest_hits{app=\"fdc\",zone=\"eu\"} 3"),
        "{body}"
    );
    assert!(body.contains("itest_plain 1"), "{body}");
    assert!(body.contains("itest_level -7"), "{body}");
    assert!(body.contains("itest_ratio{node=\"3\"} 0.625"), "{body}");

    // Exactly one TYPE line per family, declared before its samples.
    let mut type_for: std::collections::BTreeMap<&str, &str> = Default::default();
    for line in body.lines().filter(|l| l.starts_with("# TYPE ")) {
        let mut parts = line["# TYPE ".len()..].split_whitespace();
        let family = parts.next().unwrap();
        let kind = parts.next().unwrap();
        assert!(
            type_for.insert(family, kind).is_none(),
            "duplicate TYPE line for {family}"
        );
    }
    assert_eq!(type_for.get("itest_hits"), Some(&"counter"));
    assert_eq!(type_for.get("itest_level"), Some(&"gauge"));
    assert_eq!(type_for.get("itest_latency_ns"), Some(&"histogram"));

    // Every sample line parses and belongs to a declared family.
    for line in body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (series, value) = parse_sample(line);
        assert!(value.is_finite() || value.is_nan(), "{line}");
        let name = series.split('{').next().unwrap();
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| type_for.get(f) == Some(&"histogram"))
            .unwrap_or(name);
        assert!(type_for.contains_key(family), "undeclared family: {line}");
    }

    // Histogram buckets: cumulative, non-decreasing, +Inf == _count.
    let buckets: Vec<f64> = body
        .lines()
        .filter(|l| l.starts_with("itest_latency_ns_bucket{"))
        .map(|l| parse_sample(l).1)
        .collect();
    assert!(buckets.len() >= 2, "{body}");
    for w in buckets.windows(2) {
        assert!(w[1] >= w[0], "buckets decrease: {buckets:?}");
    }
    let inf_line = body
        .lines()
        .find(|l| l.starts_with("itest_latency_ns_bucket{le=\"+Inf\"}"))
        .expect("+Inf bucket");
    let count_line = body
        .lines()
        .find(|l| l.starts_with("itest_latency_ns_count"))
        .expect("_count sample");
    assert_eq!(parse_sample(inf_line).1, 5.0);
    assert_eq!(parse_sample(count_line).1, 5.0);
    let sum_line = body
        .lines()
        .find(|l| l.starts_with("itest_latency_ns_sum"))
        .expect("_sum sample");
    assert!(parse_sample(sum_line).1 >= 1_000_000.0);

    // The exporter counts its own scrapes under a bounded route label.
    let (_, _, body2) = get(addr, "/metrics");
    assert!(
        body2.contains("obs_http_requests{path=\"/metrics\"}"),
        "{body2}"
    );
    assert!(
        body2.contains("obs_http_requests{path=\"/healthz\"} 1"),
        "{body2}"
    );

    // /events and /snapshot answer JSON.
    let (status, _, events) = get(addr, "/events?n=4");
    assert!(status.starts_with("HTTP/1.1 200"));
    assert!(events.starts_with('[') && events.ends_with(']'), "{events}");
    assert!(events.contains("\"type\":\"ServeStart\""), "{events}");
    let (status, _, snap) = get(addr, "/snapshot");
    assert!(status.starts_with("HTTP/1.1 200"));
    assert!(snap.trim_start().starts_with('{'), "{snap}");

    server.shutdown();
}
