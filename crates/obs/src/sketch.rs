//! Mergeable sketches: a t-digest for tail quantiles and an exactly
//! mergeable moment summary.
//!
//! The log-bucketed [`crate::Histogram`] bounds percentile error by the
//! bucket width (≤ 2× the true value) — fine for dashboards, too coarse
//! for latency SLOs at p99/p999. And `RollingAccuracy`'s raw error
//! windows cannot be combined across shards or processes. This module
//! supplies the two primitives that fix both:
//!
//! * [`TDigest`] — Dunning's *merging* t-digest: constant space
//!   (configurable compression δ), O(1) amortized insert, sub-percent
//!   rank error that *tightens* towards the tails, and a `merge` that
//!   lets per-thread or per-process digests combine into one truthful
//!   global distribution.
//! * [`MomentSummary`] — n, mean, M2/M3 (Welford), min/max and Σ|x|,
//!   with an **exact** pooled `merge` (Chan et al.'s parallel update):
//!   merging the same partials in the same order is bit-for-bit
//!   reproducible no matter which thread or process produced each
//!   partial. Feed it forecast errors and `mean`/`abs_mean`/`stddev`
//!   give bias, MAE and error spread — the inputs of variance-aware
//!   drift detection.
//!
//! Both carry a versioned byte codec ([`TDigest::encode`] /
//! [`MomentSummary::encode`]) so partial aggregates can cross process
//! boundaries alongside WAL shipping: a router decodes per-shard
//! sketches and merges them without ever seeing raw samples.
//!
//! Everything here is `std`-only and deterministic: no clocks, no
//! randomness, total-order float comparisons.

use std::fmt;

// ---------------------------------------------------------------------
// Codec plumbing
// ---------------------------------------------------------------------

/// Codec version written by [`MomentSummary::encode`].
pub const MOMENT_CODEC_VERSION: u8 = 1;
/// Codec version written by [`TDigest::encode`].
pub const DIGEST_CODEC_VERSION: u8 = 1;

/// Why a sketch could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SketchDecodeError {
    /// The buffer ended before the declared payload.
    Truncated,
    /// The leading version byte is not one this build understands.
    UnsupportedVersion(u8),
    /// The payload decoded but violates an invariant (negative weight,
    /// non-finite centroid, inconsistent counts).
    Corrupt(&'static str),
}

impl fmt::Display for SketchDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchDecodeError::Truncated => write!(f, "sketch payload truncated"),
            SketchDecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported sketch codec version {v}")
            }
            SketchDecodeError::Corrupt(what) => write!(f, "corrupt sketch payload: {what}"),
        }
    }
}

impl std::error::Error for SketchDecodeError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, SketchDecodeError> {
        let b = *self.buf.get(self.pos).ok_or(SketchDecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, SketchDecodeError> {
        let end = self
            .pos
            .checked_add(8)
            .ok_or(SketchDecodeError::Truncated)?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(SketchDecodeError::Truncated)?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, SketchDecodeError> {
        let end = self
            .pos
            .checked_add(4)
            .ok_or(SketchDecodeError::Truncated)?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(SketchDecodeError::Truncated)?;
        self.pos = end;
        Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, SketchDecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn done(&self) -> Result<(), SketchDecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SketchDecodeError::Corrupt("trailing bytes"))
        }
    }
}

// ---------------------------------------------------------------------
// MomentSummary
// ---------------------------------------------------------------------

/// An exactly mergeable running-moments summary: count, mean, second
/// and third central moments (Welford), min/max, and the sum of
/// absolute values (so a summary over forecast errors yields the MAE).
///
/// `merge` uses the pooled parallel-update formulas, so
/// `merge(merge(s1, s2), s3)` over partials equals — bit for bit — the
/// same partials merged on any other thread or decoded from bytes on
/// another process. (Merging is exact over *partials*; like any
/// floating-point accumulation, a different partitioning of the raw
/// stream may differ in the last ulp.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MomentSummary {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    min: f64,
    max: f64,
    abs_sum: f64,
}

impl Default for MomentSummary {
    fn default() -> Self {
        Self::new()
    }
}

impl MomentSummary {
    /// An empty summary.
    pub fn new() -> Self {
        MomentSummary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            abs_sum: 0.0,
        }
    }

    /// A summary of a single observation.
    pub fn of(x: f64) -> Self {
        let mut s = Self::new();
        s.insert(x);
        s
    }

    /// Absorbs one observation (non-finite values are ignored — a NaN
    /// must not poison a summary that crosses process boundaries).
    pub fn insert(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let n0 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let term1 = delta * delta_n * n0;
        self.mean += delta_n;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.abs_sum += x.abs();
    }

    /// Pooled merge of two summaries (Chan et al.). Deterministic: the
    /// same operands in the same order produce bit-identical results.
    pub fn merge(&self, other: &MomentSummary) -> MomentSummary {
        if other.n == 0 {
            return *self;
        }
        if self.n == 0 {
            return *other;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let n = na + nb;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * nb / n;
        let m2 = self.m2 + other.m2 + delta * delta * na * nb / n;
        let m3 = self.m3
            + other.m3
            + delta * delta * delta * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        MomentSummary {
            n: self.n + other.n,
            mean,
            m2,
            m3,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            abs_sum: self.abs_sum + other.abs_sum,
        }
    }

    /// Number of absorbed observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Mean of absolute values — the MAE when the summary holds forecast
    /// errors (0 when empty).
    pub fn abs_mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.abs_sum / self.n as f64
        }
    }

    /// Sum of absolute values.
    pub fn abs_sum(&self) -> f64 {
        self.abs_sum
    }

    /// Population variance M2/n (0 when empty).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.m2 / self.n as f64).max(0.0)
        }
    }

    /// Sample variance M2/(n−1); 0 until two observations exist, so a
    /// 1-sample baseline can never divide by zero.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n as f64 - 1.0)).max(0.0)
        }
    }

    /// Sample standard deviation (0 until two observations exist).
    pub fn stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean, `stddev / √n` (0 until two
    /// observations exist). This is the scale of a confidence interval
    /// around [`MomentSummary::mean`]: callers building intervals use
    /// `z · stderr()` instead of recomputing `√(m2 / (n−1) / n)` by
    /// hand.
    pub fn stderr(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.stddev() / (self.n as f64).sqrt()
        }
    }

    /// Skewness g1 = √n·M3 / M2^{3/2} (0 when undefined).
    pub fn skewness(&self) -> f64 {
        if self.n < 2 || self.m2 <= 0.0 {
            0.0
        } else {
            (self.n as f64).sqrt() * self.m3 / self.m2.powf(1.5)
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Serializes as `[version][n][mean][m2][m3][min][max][abs_sum]`
    /// (little-endian, f64 bit patterns — exact round-trip).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + 7 * 8);
        out.push(MOMENT_CODEC_VERSION);
        out.extend_from_slice(&self.n.to_le_bytes());
        for v in [
            self.mean,
            self.m2,
            self.m3,
            self.min,
            self.max,
            self.abs_sum,
        ] {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        out
    }

    /// Decodes a summary produced by [`MomentSummary::encode`].
    pub fn decode(bytes: &[u8]) -> Result<MomentSummary, SketchDecodeError> {
        let mut r = Reader::new(bytes);
        let version = r.u8()?;
        if version != MOMENT_CODEC_VERSION {
            return Err(SketchDecodeError::UnsupportedVersion(version));
        }
        let s = MomentSummary {
            n: r.u64()?,
            mean: r.f64()?,
            m2: r.f64()?,
            m3: r.f64()?,
            min: r.f64()?,
            max: r.f64()?,
            abs_sum: r.f64()?,
        };
        r.done()?;
        if s.n > 0 && (!s.mean.is_finite() || s.m2 < 0.0 || s.min > s.max) {
            return Err(SketchDecodeError::Corrupt("moment invariants"));
        }
        Ok(s)
    }
}

// ---------------------------------------------------------------------
// TDigest
// ---------------------------------------------------------------------

/// One weighted centroid: `weight` samples summarized by their mean.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Centroid {
    mean: f64,
    weight: f64,
}

/// Default compression δ (≈ the retained centroid budget).
pub const DEFAULT_COMPRESSION: f64 = 200.0;

/// A merging t-digest (Dunning): a constant-space quantile sketch whose
/// rank error shrinks towards the distribution tails — exactly where
/// latency SLOs live.
///
/// Samples buffer in an unsorted `Vec`; when the buffer fills (or on
/// [`TDigest::merge`] / [`TDigest::flush`]) it is sorted and merged
/// into the centroid list under the `k1` scale function
/// `k(q) = δ/2π · asin(2q−1)`, which caps centroid width near q=0 and
/// q=1. Two digests merge by replaying one's centroids into the other's
/// buffer — associative up to the usual t-digest approximation error.
///
/// Deterministic by construction: sorting uses `f64::total_cmp`, and no
/// randomness or clocks are involved, so the same insert/merge sequence
/// always yields the same centroids (and the same [`TDigest::encode`]
/// bytes).
#[derive(Debug, Clone, PartialEq)]
pub struct TDigest {
    compression: f64,
    centroids: Vec<Centroid>,
    buffer: Vec<Centroid>,
    /// Buffered samples that trigger a compression pass (fixed at
    /// construction; `Vec::capacity` grows on push, so it cannot serve
    /// as the trigger).
    buffer_limit: usize,
    min: f64,
    max: f64,
    /// Total weight across centroids and buffer.
    weight: f64,
    /// Compression passes performed (observability of the sketch plane).
    compressions: u64,
}

impl Default for TDigest {
    fn default() -> Self {
        TDigest::new(DEFAULT_COMPRESSION)
    }
}

/// Scale function `k1` and its inverse, in units where one centroid
/// spans one `k`-unit.
fn k_of(q: f64, compression: f64) -> f64 {
    compression / (2.0 * std::f64::consts::PI) * (2.0 * q - 1.0).clamp(-1.0, 1.0).asin()
}

fn q_of(k: f64, compression: f64) -> f64 {
    ((k * 2.0 * std::f64::consts::PI / compression).sin() + 1.0) / 2.0
}

impl TDigest {
    /// Creates an empty digest with the given compression δ (clamped to
    /// ≥ 20; higher δ → more centroids → lower rank error).
    pub fn new(compression: f64) -> Self {
        let compression = if compression.is_finite() {
            compression.max(20.0)
        } else {
            DEFAULT_COMPRESSION
        };
        // Amortizes sort cost: one compression pass per ~4δ inserts.
        let buffer_limit = ((4.0 * compression) as usize).max(32);
        TDigest {
            compression,
            centroids: Vec::new(),
            buffer: Vec::with_capacity(buffer_limit),
            buffer_limit,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            weight: 0.0,
            compressions: 0,
        }
    }

    /// The configured compression δ.
    pub fn compression(&self) -> f64 {
        self.compression
    }

    /// Total number of absorbed samples (sum of weights).
    pub fn count(&self) -> u64 {
        self.weight as u64
    }

    /// True when nothing was inserted.
    pub fn is_empty(&self) -> bool {
        self.weight == 0.0
    }

    /// Smallest absorbed sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (!self.is_empty()).then_some(self.min)
    }

    /// Largest absorbed sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (!self.is_empty()).then_some(self.max)
    }

    /// Centroids currently retained (after the last compression).
    pub fn centroid_count(&self) -> usize {
        self.centroids.len()
    }

    /// Compression passes performed so far.
    pub fn compressions(&self) -> u64 {
        self.compressions
    }

    /// Absorbs one sample (non-finite samples are ignored).
    pub fn insert(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.buffer.push(Centroid {
            mean: x,
            weight: 1.0,
        });
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.weight += 1.0;
        if self.buffer.len() >= self.buffer_limit {
            self.compress();
        }
    }

    /// Merges `other` into `self` (other is unchanged). Weight, min and
    /// max pool exactly; quantiles pool up to t-digest accuracy.
    pub fn merge(&mut self, other: &TDigest) {
        if other.weight == 0.0 {
            return;
        }
        self.buffer.extend_from_slice(&other.centroids);
        self.buffer.extend_from_slice(&other.buffer);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.weight += other.weight;
        self.compress();
    }

    /// Folds any buffered samples into the centroid list.
    pub fn flush(&mut self) {
        if !self.buffer.is_empty() {
            self.compress();
        }
    }

    /// One merging-digest compression pass: sort the pending points
    /// with the retained centroids, then greedily coalesce neighbours
    /// while each stays within its `k1` width budget.
    fn compress(&mut self) {
        if self.buffer.is_empty() && self.centroids.len() <= (self.compression as usize) * 2 {
            return;
        }
        let mut points = std::mem::take(&mut self.centroids);
        points.append(&mut self.buffer);
        if points.is_empty() {
            return;
        }
        points.sort_by(|a, b| a.mean.total_cmp(&b.mean));
        let total: f64 = self.weight;
        let mut merged: Vec<Centroid> = Vec::with_capacity(self.compression as usize * 2);
        let mut iter = points.into_iter();
        let mut cur = iter.next().unwrap();
        let mut w_so_far = 0.0;
        let mut limit = total * q_of(k_of(0.0, self.compression) + 1.0, self.compression);
        for p in iter {
            let proposed = cur.weight + p.weight;
            if w_so_far + proposed <= limit {
                // Coalesce: weighted mean keeps the centroid unbiased.
                cur.mean = (cur.mean * cur.weight + p.mean * p.weight) / proposed;
                cur.weight = proposed;
            } else {
                w_so_far += cur.weight;
                limit = total
                    * q_of(
                        k_of(w_so_far / total, self.compression) + 1.0,
                        self.compression,
                    );
                merged.push(cur);
                cur = p;
            }
        }
        merged.push(cur);
        self.centroids = merged;
        self.compressions += 1;
    }

    /// Estimated value of the `q`-quantile (`q` clamped to `[0, 1]`;
    /// 0.0 when empty). Interpolates linearly between centroid means,
    /// anchored at the exact observed min and max.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        if !self.buffer.is_empty() {
            // Read-only callers pay a one-off clone; the registry's
            // snapshot path flushes first and never takes this branch.
            let mut flushed = self.clone();
            flushed.flush();
            return flushed.quantile(q);
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.weight;
        // Positions of centroid means along the cumulative-weight axis:
        // half a centroid's weight sits below its mean.
        let mut cum = 0.0;
        let mut prev_pos = 0.0;
        let mut prev_mean = self.min;
        for c in &self.centroids {
            let pos = cum + c.weight / 2.0;
            if target < pos {
                let span = pos - prev_pos;
                let frac = if span > 0.0 {
                    (target - prev_pos) / span
                } else {
                    0.0
                };
                return (prev_mean + frac * (c.mean - prev_mean)).clamp(self.min, self.max);
            }
            cum += c.weight;
            prev_pos = pos;
            prev_mean = c.mean;
        }
        let span = self.weight - prev_pos;
        let frac = if span > 0.0 {
            (target - prev_pos) / span
        } else {
            1.0
        };
        (prev_mean + frac * (self.max - prev_mean)).clamp(self.min, self.max)
    }

    /// Serializes as `[version][compression][weight][min][max]
    /// [n_centroids][mean, weight]*` (little-endian, f64 bit patterns).
    /// Buffered samples are folded in first, so `decode(encode(d))`
    /// reproduces the digest exactly.
    pub fn encode(&self) -> Vec<u8> {
        let flushed;
        let d = if self.buffer.is_empty() {
            self
        } else {
            let mut f = self.clone();
            f.flush();
            flushed = f;
            &flushed
        };
        let mut out = Vec::with_capacity(1 + 4 * 8 + 4 + d.centroids.len() * 16);
        out.push(DIGEST_CODEC_VERSION);
        for v in [d.compression, d.weight, d.min, d.max] {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&(d.centroids.len() as u32).to_le_bytes());
        for c in &d.centroids {
            out.extend_from_slice(&c.mean.to_bits().to_le_bytes());
            out.extend_from_slice(&c.weight.to_bits().to_le_bytes());
        }
        out
    }

    /// Decodes a digest produced by [`TDigest::encode`].
    pub fn decode(bytes: &[u8]) -> Result<TDigest, SketchDecodeError> {
        let mut r = Reader::new(bytes);
        let version = r.u8()?;
        if version != DIGEST_CODEC_VERSION {
            return Err(SketchDecodeError::UnsupportedVersion(version));
        }
        let compression = r.f64()?;
        let weight = r.f64()?;
        let min = r.f64()?;
        let max = r.f64()?;
        let n = r.u32()? as usize;
        if !compression.is_finite() || compression < 20.0 {
            return Err(SketchDecodeError::Corrupt("compression"));
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(SketchDecodeError::Corrupt("weight"));
        }
        let mut centroids = Vec::with_capacity(n.min(4096));
        let mut sum = 0.0;
        let mut prev = f64::NEG_INFINITY;
        for _ in 0..n {
            let mean = r.f64()?;
            let w = r.f64()?;
            if !mean.is_finite() || !w.is_finite() || w <= 0.0 {
                return Err(SketchDecodeError::Corrupt("centroid"));
            }
            if mean < prev {
                return Err(SketchDecodeError::Corrupt("centroid order"));
            }
            prev = mean;
            sum += w;
            centroids.push(Centroid { mean, weight: w });
        }
        r.done()?;
        if weight > 0.0 && (min > max || (sum - weight).abs() > weight * 1e-9) {
            return Err(SketchDecodeError::Corrupt("weight total"));
        }
        let mut d = TDigest::new(compression);
        d.centroids = centroids;
        d.min = if weight > 0.0 { min } else { f64::INFINITY };
        d.max = if weight > 0.0 { max } else { f64::NEG_INFINITY };
        d.weight = weight;
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // ---- MomentSummary ------------------------------------------------

    #[test]
    fn moments_match_hand_computation() {
        let mut s = MomentSummary::new();
        for x in [2.0, -4.0, 6.0, -8.0] {
            s.insert(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - (-1.0)).abs() < 1e-12);
        assert!((s.abs_mean() - 5.0).abs() < 1e-12);
        // Population variance of {2,-4,6,-8} around -1: (9+9+49+49)/4 = 29.
        assert!((s.variance() - 29.0).abs() < 1e-9, "{}", s.variance());
        assert!((s.sample_variance() - 116.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.min(), Some(-8.0));
        assert_eq!(s.max(), Some(6.0));
    }

    #[test]
    fn stderr_matches_pinned_golden_values() {
        // Golden: {2, -4, 6, -8} has sample variance 116/3, so
        // stderr = √(116/3)/√4 = √(116/3)/2 = 3.1091263510296048.
        let mut s = MomentSummary::new();
        for x in [2.0, -4.0, 6.0, -8.0] {
            s.insert(x);
        }
        assert!(
            (s.stderr() - 3.1091263510296048).abs() < 1e-12,
            "{}",
            s.stderr()
        );
        assert_eq!(s.stderr(), s.stddev() / (s.count() as f64).sqrt());
        // Golden: {1, 2, 3, 4, 5} has sample variance 2.5, so
        // stderr = √2.5/√5 = √0.5 = 0.7071067811865476.
        let mut t = MomentSummary::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            t.insert(x);
        }
        #[allow(clippy::approx_constant)] // golden literal, not a rounded constant
        let expected = 0.7071067811865476;
        assert!((t.stderr() - expected).abs() < 1e-12, "{}", t.stderr());
        // Degenerate counts never divide by zero.
        assert_eq!(MomentSummary::new().stderr(), 0.0);
        assert_eq!(MomentSummary::of(9.0).stderr(), 0.0);
    }

    #[test]
    fn empty_and_single_sample_summaries_are_safe() {
        let empty = MomentSummary::new();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.stddev(), 0.0);
        assert_eq!(empty.min(), None);
        let one = MomentSummary::of(5.0);
        assert_eq!(one.count(), 1);
        assert_eq!(one.mean(), 5.0);
        // n=1: sample variance must be defined (0), not a division by 0.
        assert_eq!(one.sample_variance(), 0.0);
        assert!(one.stddev().is_finite());
    }

    #[test]
    fn merge_equals_sequential_insert_up_to_float_noise() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| ((i * 37 + 11) % 101) as f64 - 50.0)
            .collect();
        let mut whole = MomentSummary::new();
        for &x in &xs {
            whole.insert(x);
        }
        let mut a = MomentSummary::new();
        let mut b = MomentSummary::new();
        for &x in &xs[..400] {
            a.insert(x);
        }
        for &x in &xs[400..] {
            b.insert(x);
        }
        let merged = a.merge(&b);
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        assert!((merged.variance() - whole.variance()).abs() < 1e-6);
        assert!((merged.skewness() - whole.skewness()).abs() < 1e-6);
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
        assert!((merged.abs_sum() - whole.abs_sum()).abs() < 1e-9);
    }

    #[test]
    fn merge_of_identical_partials_is_bit_identical() {
        // The merge-demo guarantee: merging the same partial summaries
        // in the same order is reproducible to the last bit.
        let mut parts = Vec::new();
        for t in 0..8 {
            let mut s = MomentSummary::new();
            for i in 0..500 {
                s.insert(((t * 500 + i) as f64).sin() * 100.0);
            }
            parts.push(s);
        }
        let fold =
            |ps: &[MomentSummary]| ps.iter().fold(MomentSummary::new(), |acc, p| acc.merge(p));
        assert_eq!(fold(&parts).encode(), fold(&parts).encode());
        // Merging with an empty summary is the identity, bitwise.
        let m = fold(&parts);
        assert_eq!(m.merge(&MomentSummary::new()).encode(), m.encode());
        assert_eq!(MomentSummary::new().merge(&m).encode(), m.encode());
    }

    #[test]
    fn moment_codec_round_trips_and_rejects_garbage() {
        let mut s = MomentSummary::new();
        for x in [1.5, -0.25, 1e9, -3.75] {
            s.insert(x);
        }
        let bytes = s.encode();
        let back = MomentSummary::decode(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.encode(), bytes);
        assert_eq!(
            MomentSummary::decode(&bytes[..bytes.len() - 1]),
            Err(SketchDecodeError::Truncated)
        );
        let mut wrong = bytes.clone();
        wrong[0] = 99;
        assert_eq!(
            MomentSummary::decode(&wrong),
            Err(SketchDecodeError::UnsupportedVersion(99))
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            MomentSummary::decode(&trailing),
            Err(SketchDecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn nan_inputs_are_ignored() {
        let mut s = MomentSummary::new();
        s.insert(f64::NAN);
        s.insert(f64::INFINITY);
        s.insert(1.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 1.0);
        let mut d = TDigest::new(100.0);
        d.insert(f64::NAN);
        d.insert(2.0);
        assert_eq!(d.count(), 1);
        assert_eq!(d.quantile(0.5), 2.0);
    }

    // ---- TDigest ------------------------------------------------------

    #[test]
    fn digest_is_exact_on_tiny_inputs() {
        let mut d = TDigest::new(100.0);
        for x in [10.0, 20.0, 30.0] {
            d.insert(x);
        }
        assert_eq!(d.count(), 3);
        assert_eq!(d.quantile(0.0), 10.0);
        assert_eq!(d.quantile(1.0), 30.0);
        let med = d.quantile(0.5);
        assert!((10.0..=30.0).contains(&med), "{med}");
    }

    #[test]
    fn digest_bounds_centroids_and_tracks_uniform_quantiles() {
        let n = 50_000;
        let mut d = TDigest::new(100.0);
        // Deterministic permutation of 0..n (n is not divisible by 7).
        for i in 0..n {
            d.insert(((i * 7919) % n) as f64);
        }
        d.flush();
        assert!(
            d.centroid_count() <= 2 * 100,
            "{} centroids",
            d.centroid_count()
        );
        assert_eq!(d.count(), n as u64);
        for (q, tol) in [(0.5, 0.01), (0.95, 0.005), (0.99, 0.002), (0.999, 0.001)] {
            let est = d.quantile(q);
            let rank = est / n as f64; // uniform: value ≈ rank * n
            assert!(
                (rank - q).abs() <= tol,
                "q={q}: est {est} → rank {rank} (tol {tol})"
            );
        }
    }

    #[test]
    fn digest_merge_pools_weight_min_max() {
        let mut a = TDigest::new(100.0);
        let mut b = TDigest::new(100.0);
        for i in 0..1000 {
            a.insert(i as f64);
            b.insert((i + 5000) as f64);
        }
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), 2000);
        assert_eq!(m.min(), Some(0.0));
        assert_eq!(m.max(), Some(5999.0));
        // Median of the union sits in the gap between the two halves.
        let med = m.quantile(0.5);
        assert!((900.0..=5100.0).contains(&med), "{med}");
        // b itself is untouched.
        assert_eq!(b.count(), 1000);
    }

    #[test]
    fn digest_quantiles_are_monotone_in_q() {
        let mut d = TDigest::new(50.0);
        for i in 0..10_000 {
            d.insert(((i * 2654435761u64) % 100_000) as f64);
        }
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = d.quantile(q);
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn digest_codec_round_trips_and_rejects_garbage() {
        let mut d = TDigest::new(128.0);
        for i in 0..5000 {
            d.insert((i % 997) as f64 * 1.5);
        }
        let bytes = d.encode();
        let back = TDigest::decode(&bytes).unwrap();
        assert_eq!(back.count(), d.count());
        assert_eq!(back.compression(), 128.0);
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(back.quantile(q).to_bits(), d.quantile(q).to_bits());
        }
        // Round-trip is a fixed point of the codec.
        assert_eq!(back.encode(), bytes);
        assert_eq!(
            TDigest::decode(&bytes[..10]),
            Err(SketchDecodeError::Truncated)
        );
        let mut wrong = bytes.clone();
        wrong[0] = 2;
        assert_eq!(
            TDigest::decode(&wrong),
            Err(SketchDecodeError::UnsupportedVersion(2))
        );
        // Corrupt a centroid weight into a negative number.
        let mut corrupt = bytes.clone();
        let weight_off = 1 + 4 * 8 + 4 + 8;
        corrupt[weight_off..weight_off + 8].copy_from_slice(&(-1.0f64).to_bits().to_le_bytes());
        assert!(matches!(
            TDigest::decode(&corrupt),
            Err(SketchDecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn empty_digest_is_well_behaved() {
        let d = TDigest::default();
        assert!(d.is_empty());
        assert_eq!(d.quantile(0.5), 0.0);
        assert_eq!(d.min(), None);
        let bytes = d.encode();
        let back = TDigest::decode(&bytes).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn same_insert_sequence_is_deterministic() {
        let build = || {
            let mut d = TDigest::new(64.0);
            for i in 0..20_000u64 {
                d.insert((i.wrapping_mul(6364136223846793005) >> 33) as f64);
            }
            d.encode()
        };
        assert_eq!(build(), build());
    }
}
