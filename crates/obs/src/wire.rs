//! The cross-process sketch container: what a shard ships and a router
//! folds.
//!
//! [`crate::sketch`] gives each summary its own versioned codec;
//! partitioned serving needs one more layer — a single byte blob a
//! shard can answer `GET /sketch` with, carrying *all* of its mergeable
//! state: the per-key [`KeyAccuracy`] partials of its accuracy tracker
//! and the named [`TDigest`]s behind its latency histograms. The router
//! decodes one [`SketchBundle`] per shard and folds them
//! ([`KeyAccuracy::merge`] / [`TDigest::merge`]) into a fleet-wide view
//! without ever seeing a raw sample.
//!
//! The container is length-prefixed throughout, so a corrupt or
//! truncated shard response fails decoding loudly instead of smearing
//! garbage into the fold.

use crate::accuracy::KeyAccuracy;
use crate::sketch::{SketchDecodeError, TDigest};

/// Codec version written by [`SketchBundle::encode`].
pub const SKETCH_BUNDLE_CODEC_VERSION: u8 = 1;

/// Upper bound on counts and lengths a decode will accept — far above
/// any real bundle, low enough that a corrupt length prefix cannot ask
/// for gigabytes.
const MAX_ITEMS: u32 = 1 << 20;

/// Everything mergeable one process ships to an aggregator: accuracy
/// partials (sorted by key on encode) and named latency digests.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SketchBundle {
    /// Per-key accuracy partials (one per tracked catalog node).
    pub accuracy: Vec<KeyAccuracy>,
    /// Named t-digests, e.g. one per `serve.request.ns{route=...}`
    /// series. Names are the full series keys.
    pub digests: Vec<(String, TDigest)>,
}

impl SketchBundle {
    /// Serializes as `[version][n_acc][len,bytes]*[n_dig]
    /// [name_len,name,len,bytes]*` (all lengths little-endian `u32`),
    /// each item using its own sketch codec.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.accuracy.len() * 180);
        out.push(SKETCH_BUNDLE_CODEC_VERSION);
        out.extend_from_slice(&(self.accuracy.len() as u32).to_le_bytes());
        for a in &self.accuracy {
            let bytes = a.encode();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        out.extend_from_slice(&(self.digests.len() as u32).to_le_bytes());
        for (name, d) in &self.digests {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            let bytes = d.encode();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Decodes a bundle produced by [`SketchBundle::encode`].
    pub fn decode(bytes: &[u8]) -> Result<SketchBundle, SketchDecodeError> {
        let mut pos = 0usize;
        let u8_at = |pos: &mut usize| -> Result<u8, SketchDecodeError> {
            let b = *bytes.get(*pos).ok_or(SketchDecodeError::Truncated)?;
            *pos += 1;
            Ok(b)
        };
        let u32_at = |pos: &mut usize| -> Result<u32, SketchDecodeError> {
            let end = pos.checked_add(4).ok_or(SketchDecodeError::Truncated)?;
            let b = bytes.get(*pos..end).ok_or(SketchDecodeError::Truncated)?;
            *pos = end;
            Ok(u32::from_le_bytes(b.try_into().unwrap()))
        };
        let slice_at = |pos: &mut usize, len: u32| -> Result<&[u8], SketchDecodeError> {
            if len > MAX_ITEMS {
                return Err(SketchDecodeError::Corrupt("length prefix"));
            }
            let end = pos
                .checked_add(len as usize)
                .ok_or(SketchDecodeError::Truncated)?;
            let s = bytes.get(*pos..end).ok_or(SketchDecodeError::Truncated)?;
            *pos = end;
            Ok(s)
        };

        let version = u8_at(&mut pos)?;
        if version != SKETCH_BUNDLE_CODEC_VERSION {
            return Err(SketchDecodeError::UnsupportedVersion(version));
        }
        let n_acc = u32_at(&mut pos)?;
        if n_acc > MAX_ITEMS {
            return Err(SketchDecodeError::Corrupt("accuracy count"));
        }
        let mut accuracy = Vec::with_capacity(n_acc.min(1024) as usize);
        for _ in 0..n_acc {
            let len = u32_at(&mut pos)?;
            accuracy.push(KeyAccuracy::decode(slice_at(&mut pos, len)?)?);
        }
        let n_dig = u32_at(&mut pos)?;
        if n_dig > MAX_ITEMS {
            return Err(SketchDecodeError::Corrupt("digest count"));
        }
        let mut digests = Vec::with_capacity(n_dig.min(1024) as usize);
        for _ in 0..n_dig {
            let name_len = u32_at(&mut pos)?;
            let name = std::str::from_utf8(slice_at(&mut pos, name_len)?)
                .map_err(|_| SketchDecodeError::Corrupt("digest name utf-8"))?
                .to_string();
            let len = u32_at(&mut pos)?;
            digests.push((name, TDigest::decode(slice_at(&mut pos, len)?)?));
        }
        if pos != bytes.len() {
            return Err(SketchDecodeError::Corrupt("trailing bytes"));
        }
        Ok(SketchBundle { accuracy, digests })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::{AccuracyOptions, RollingAccuracy};

    fn sample_bundle() -> SketchBundle {
        let acc = RollingAccuracy::new(AccuracyOptions::default());
        for i in 0..9 {
            acc.record(3, 10.0 + i as f64, 10.0);
            acc.record(7, 4.0, 2.0 + i as f64);
        }
        let mut d = TDigest::new(64.0);
        for i in 0..500 {
            d.insert((i * 31 % 977) as f64);
        }
        // Structural equality after a round trip needs the buffer folded
        // (encode flushes a copy; the decoded digest is always flushed).
        d.flush();
        SketchBundle {
            accuracy: acc.summaries(),
            digests: vec![
                ("serve.request.ns{route=\"/query\"}".to_string(), d.clone()),
                ("serve.request.ns{route=\"/insert\"}".to_string(), d),
            ],
        }
    }

    #[test]
    fn bundle_codec_round_trips_exactly() {
        let bundle = sample_bundle();
        let bytes = bundle.encode();
        let back = SketchBundle::decode(&bytes).unwrap();
        assert_eq!(back.accuracy, bundle.accuracy);
        // Digests carry a local-only compression-pass counter outside
        // the codec; equality holds at the wire level.
        assert_eq!(back.encode(), bytes, "round-trip is a codec fixed point");
        for ((name, d), (orig_name, orig)) in back.digests.iter().zip(&bundle.digests) {
            assert_eq!(name, orig_name);
            assert_eq!(d.count(), orig.count());
            for q in [0.5, 0.95, 0.99] {
                assert_eq!(d.quantile(q).to_bits(), orig.quantile(q).to_bits());
            }
        }
    }

    #[test]
    fn empty_bundle_round_trips() {
        let bytes = SketchBundle::default().encode();
        let back = SketchBundle::decode(&bytes).unwrap();
        assert!(back.accuracy.is_empty() && back.digests.is_empty());
    }

    #[test]
    fn decode_rejects_garbage() {
        let bundle = sample_bundle();
        let bytes = bundle.encode();
        assert_eq!(
            SketchBundle::decode(&bytes[..bytes.len() - 3]),
            Err(SketchDecodeError::Truncated)
        );
        let mut wrong = bytes.clone();
        wrong[0] = 42;
        assert_eq!(
            SketchBundle::decode(&wrong),
            Err(SketchDecodeError::UnsupportedVersion(42))
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            SketchBundle::decode(&trailing),
            Err(SketchDecodeError::Corrupt(_))
        ));
        // A corrupt count prefix must fail fast, not allocate wildly.
        let mut huge = bytes;
        huge[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(SketchBundle::decode(&huge).is_err());
    }
}
