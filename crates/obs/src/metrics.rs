//! The metrics registry: atomic counters, gauges, and log-bucketed
//! histograms with percentile snapshots.
//!
//! All types are lock-free on the hot path (a single atomic RMW per
//! record); the registry itself takes a short `RwLock` read to resolve
//! a name to its handle. Callers on genuinely hot loops should resolve
//! the `Arc` handle once and reuse it.

use crate::labels::{overflow_series, series_key, MAX_SERIES_PER_FAMILY};
use crate::names;
use crate::sketch::TDigest;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i`
/// (1 ≤ i ≤ 64) holds values whose bit length is `i`, i.e. the range
/// `[2^(i-1), 2^i)`.
pub(crate) const BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increments by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (used by benches between phases).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A gauge: an instantaneous signed value (model counts, scaled errors).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments by one (e.g. a work item entered an in-flight set).
    pub fn incr(&self) {
        self.add(1);
    }

    /// Decrements by one (the work item left the in-flight set).
    pub fn decr(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.set(0);
    }
}

/// A gauge holding an `f64` (scaled errors, ratios — values an [`i64`]
/// gauge would truncate). Stored as the value's bit pattern in one
/// atomic, so reads and writes stay lock-free.
#[derive(Debug, Default)]
pub struct FloatGauge(AtomicU64);

impl FloatGauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.set(0.0);
    }
}

/// Number of per-thread-striped t-digest shards per histogram. Each
/// recording thread hashes to one shard's mutex, so uncontended records
/// stay cheap; snapshots merge the shards into one digest — exercising
/// the same merge path a multi-process router uses.
pub(crate) const DIGEST_SHARDS: usize = 4;

/// Compression δ of the per-histogram digests: ~δ centroids retained,
/// sub-0.5% rank error at p99/p999 on latency-shaped streams.
pub(crate) const HISTOGRAM_DIGEST_COMPRESSION: f64 = 100.0;

/// Stable per-thread shard index (assigned round-robin on first use).
fn digest_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    SHARD.with(|s| *s) % DIGEST_SHARDS
}

/// A log-bucketed histogram of `u64` samples (by convention
/// nanoseconds when the metric name ends in `.ns`).
///
/// Buckets are powers of two, so the bucket update is one
/// `leading_zeros` plus one atomic add, and the full value range of
/// `u64` is covered with 65 buckets. The buckets feed the Prometheus
/// `_bucket{le=...}` series; **percentiles** come from an embedded,
/// thread-striped [`TDigest`] (merged across stripes at snapshot time),
/// so p50/p95/p99/p999 carry sub-percent rank error instead of the
/// bucket estimator's ≤ 2× bound. The bucket-midpoint estimator remains
/// as the fallback for the (racy) case of a snapshot observing a bucket
/// update before the matching digest insert.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    digests: [Mutex<TDigest>; DIGEST_SHARDS],
    /// Worst traced observation of the current exemplar window.
    exemplar: Mutex<Option<(Exemplar, Instant)>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            digests: std::array::from_fn(|_| {
                Mutex::new(TDigest::new(HISTOGRAM_DIGEST_COMPRESSION))
            }),
            exemplar: Mutex::new(None),
        }
    }
}

/// Length of a histogram's exemplar window: within one window the
/// exemplar tracks the *worst* traced observation; once the window
/// ages out, the next traced observation starts a fresh one, so a
/// startup spike cannot pin the exemplar forever.
pub const EXEMPLAR_WINDOW: Duration = Duration::from_secs(10);

/// A traced observation attached to a histogram — the OpenMetrics
/// exemplar: the sample's value, the trace that produced it, and when.
/// A p99 spike on `/metrics` thereby links directly to a trace id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The observed sample (nanoseconds for `.ns` histograms).
    pub value: u64,
    /// Trace id of the request that produced the sample.
    pub trace_id: u128,
    /// Wall-clock observation time, ms since the Unix epoch.
    pub unix_ms: u64,
}

/// Bucket index of a value: 0 for 0, otherwise its bit length.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive value range `[lo, hi]` covered by a bucket.
pub(crate) fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

/// The log-bucket percentile estimator (the digest's fallback):
/// midpoint of the rank's bucket after clamping the bucket to the
/// observed `[min, max]`. When the clamped range collapses to a single
/// value — constant streams, the zero bucket — that value is **exact**,
/// not a midpoint estimate; otherwise the error stays bounded by the
/// (clamped) bucket width.
pub(crate) fn bucket_percentile(counts: &[u64], count: u64, min: u64, max: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    // 1-based rank of the q-quantile sample.
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            let (lo, hi) = bucket_bounds(i);
            // A non-empty bucket always intersects [min, max].
            let lo = lo.max(min);
            let hi = hi.min(max);
            if lo == hi {
                return lo;
            }
            return lo + (hi - lo) / 2;
        }
    }
    max
}

impl Histogram {
    /// Records a sample.
    pub fn record(&self, v: u64) {
        self.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.digests[digest_shard()]
            .lock()
            .unwrap()
            .insert(v as f64);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records a sample carrying its trace id, making it an exemplar
    /// candidate: the slot keeps the worst observation per
    /// [`EXEMPLAR_WINDOW`]. The plain [`Histogram::record`] path stays
    /// lock-free; only traced (i.e. sampled) observations pay the
    /// exemplar mutex.
    pub fn record_with_trace(&self, v: u64, trace_id: u128) {
        self.record(v);
        let now = Instant::now();
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut slot = self.exemplar.lock().unwrap();
        let fresh = Exemplar {
            value: v,
            trace_id,
            unix_ms,
        };
        match slot.as_mut() {
            Some((ex, window_start)) => {
                if now.duration_since(*window_start) > EXEMPLAR_WINDOW {
                    *slot = Some((fresh, now));
                } else if v >= ex.value {
                    *ex = fresh;
                }
            }
            None => *slot = Some((fresh, now)),
        }
    }

    /// [`Histogram::record_with_trace`] for durations in nanoseconds.
    pub fn record_duration_with_trace(&self, d: Duration, trace_id: u128) {
        self.record_with_trace(d.as_nanos().min(u128::from(u64::MAX)) as u64, trace_id);
    }

    /// The current exemplar, if a traced observation has been recorded.
    pub fn exemplar(&self) -> Option<Exemplar> {
        self.exemplar.lock().unwrap().map(|(e, _)| e)
    }

    /// Merges the thread-striped digest shards into one digest — the
    /// percentile source for snapshots, and the partial a router would
    /// ship across processes via [`TDigest::encode`].
    pub fn merged_digest(&self) -> TDigest {
        let mut merged = TDigest::new(HISTOGRAM_DIGEST_COMPRESSION);
        for shard in &self.digests {
            merged.merge(&shard.lock().unwrap());
        }
        merged.flush();
        merged
    }

    /// Takes a point-in-time snapshot (not atomic across buckets, which
    /// is fine for reporting).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let (min, max) = if count == 0 {
            (0, 0)
        } else {
            (
                self.min.load(Ordering::Relaxed),
                self.max.load(Ordering::Relaxed),
            )
        };
        let digest = self.merged_digest();
        let percentile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            if digest.is_empty() {
                // A snapshot raced between a bucket update and the
                // matching digest insert; fall back to the buckets.
                return bucket_percentile(&counts, count, min, max, q);
            }
            // Digest quantiles are clamped into the observed range so a
            // snapshot can never report a percentile outside [min, max].
            (digest.quantile(q).round() as u64).clamp(min, max)
        };
        let mut buckets = [0u64; BUCKETS];
        buckets.copy_from_slice(&counts);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min,
            max,
            p50: percentile(0.50),
            p95: percentile(0.95),
            p99: percentile(0.99),
            p999: percentile(0.999),
            buckets,
            exemplar: self.exemplar(),
        }
    }

    /// Resets all buckets, statistics, digest shards and the exemplar.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for shard in &self.digests {
            *shard.lock().unwrap() = TDigest::new(HISTOGRAM_DIGEST_COMPRESSION);
        }
        *self.exemplar.lock().unwrap() = None;
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Estimated median (digest-backed).
    pub p50: u64,
    /// Estimated 95th percentile (digest-backed).
    pub p95: u64,
    /// Estimated 99th percentile (digest-backed).
    pub p99: u64,
    /// Estimated 99.9th percentile (digest-backed).
    pub p999: u64,
    /// Raw per-bucket sample counts (power-of-two buckets; see
    /// [`Histogram`]). The Prometheus exporter renders these as
    /// cumulative `le` buckets.
    pub buckets: [u64; BUCKETS],
    /// Worst traced observation of the current exemplar window, if any.
    pub exemplar: Option<Exemplar>,
}

impl HistogramSnapshot {
    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Cumulative `(upper_bound, count ≤ upper_bound)` pairs over the
    /// non-empty buckets, in ascending bound order — the exact shape of
    /// Prometheus histogram `_bucket{le=...}` samples (`+Inf` excluded;
    /// it equals [`HistogramSnapshot::count`]). Cumulative counts are
    /// non-decreasing by construction.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            out.push((bucket_bounds(i).1, cum));
        }
        out
    }
}

/// The process-wide registry interning metrics by name.
///
/// Labeled series are interned under their canonical series key
/// ([`crate::labels::series_key`]); the `*_with` methods enforce the
/// per-family cardinality bound.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    float_gauges: RwLock<BTreeMap<String, Arc<FloatGauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    /// Families that already logged their one overflow warning event.
    overflow_warned: Mutex<BTreeSet<String>>,
}

fn intern<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(m) = map.read().unwrap().get(name) {
        return Arc::clone(m);
    }
    let mut w = map.write().unwrap();
    Arc::clone(w.entry(name.to_string()).or_default())
}

/// Interns the labeled series of `name`, enforcing the per-family
/// cardinality bound: a new label set beyond [`MAX_SERIES_PER_FAMILY`]
/// is redirected to the family's shared `{overflow="true"}` series and
/// reported via the `obs.series.dropped` counter handed in by the
/// caller (passed, not resolved here, to keep the drop path free of
/// recursion into this function). The returned flag says whether this
/// call overflowed, so the caller can attribute the drop to its family
/// *after* releasing the map lock.
fn intern_labeled<T: Default>(
    map: &RwLock<BTreeMap<String, Arc<T>>>,
    name: &str,
    labels: &[(&str, &str)],
    dropped: &Counter,
) -> (Arc<T>, bool) {
    let key = series_key(name, labels);
    if let Some(m) = map.read().unwrap().get(&key) {
        return (Arc::clone(m), false);
    }
    let mut w = map.write().unwrap();
    if w.contains_key(&key) {
        return (Arc::clone(&w[&key]), false);
    }
    // New series: count the family's existing labeled series. The
    // prefix `name{` cannot collide with other families because `{`
    // never appears in family names.
    let prefix = format!("{name}{{");
    let family_series = w
        .range(prefix.clone()..)
        .take_while(|(k, _)| k.starts_with(&prefix))
        .count();
    if !labels.is_empty() && family_series >= MAX_SERIES_PER_FAMILY {
        dropped.incr();
        return (
            Arc::clone(w.entry(overflow_series(name)).or_default()),
            true,
        );
    }
    (Arc::clone(w.entry(key).or_default()), false)
}

impl Registry {
    /// Resolves (creating on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name)
    }

    /// Resolves (creating on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name)
    }

    /// Resolves (creating on first use) the float gauge `name`.
    pub fn float_gauge(&self, name: &str) -> Arc<FloatGauge> {
        intern(&self.float_gauges, name)
    }

    /// Resolves (creating on first use) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name)
    }

    /// Resolves the labeled counter series `name{labels}` (canonical
    /// label order, bounded per-family cardinality).
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let dropped = self.counter(names::OBS_SERIES_DROPPED);
        let (c, overflowed) = intern_labeled(&self.counters, name, labels, &dropped);
        if overflowed {
            self.note_overflow(name);
        }
        c
    }

    /// Resolves the labeled gauge series `name{labels}`.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let dropped = self.counter(names::OBS_SERIES_DROPPED);
        let (g, overflowed) = intern_labeled(&self.gauges, name, labels, &dropped);
        if overflowed {
            self.note_overflow(name);
        }
        g
    }

    /// Resolves the labeled float-gauge series `name{labels}`.
    pub fn float_gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<FloatGauge> {
        let dropped = self.counter(names::OBS_SERIES_DROPPED);
        let (g, overflowed) = intern_labeled(&self.float_gauges, name, labels, &dropped);
        if overflowed {
            self.note_overflow(name);
        }
        g
    }

    /// Resolves the labeled histogram series `name{labels}`.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let dropped = self.counter(names::OBS_SERIES_DROPPED);
        let (h, overflowed) = intern_labeled(&self.histograms, name, labels, &dropped);
        if overflowed {
            self.note_overflow(name);
        }
        h
    }

    /// Attributes a cardinality overflow to its family: bumps the
    /// per-family `obs.labels.overflow{family=...}` counter (interned
    /// directly — the family label set is code-controlled, so it cannot
    /// itself overflow) and publishes one `SeriesOverflow` warning event
    /// per family per process. Called after the series-map lock is
    /// released; the plain `obs.series.dropped` total remains as the
    /// family-blind aggregate.
    fn note_overflow(&self, family: &str) {
        let key = series_key(names::OBS_LABELS_OVERFLOW, &[("family", family)]);
        intern(&self.counters, &key).incr();
        let first = self
            .overflow_warned
            .lock()
            .unwrap()
            .insert(family.to_string());
        if first {
            crate::events::journal().publish(crate::events::Event::SeriesOverflow {
                family: family.to_string(),
            });
        }
    }

    /// Snapshots every registered metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        // Each histogram snapshot merges its DIGEST_SHARDS digest
        // stripes; account for them before the counters are read so the
        // tally is visible in this very snapshot.
        let hist_count = self.histograms.read().unwrap().len() as u64;
        if hist_count > 0 {
            self.counter(names::OBS_SKETCH_MERGES)
                .add(hist_count * DIGEST_SHARDS as u64);
        }
        Snapshot {
            counters: self
                .counters
                .read()
                .unwrap()
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap()
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            float_gauges: self
                .float_gauges
                .read()
                .unwrap()
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap()
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        }
    }

    /// Zeroes every registered metric. Existing handles stay valid.
    pub fn reset(&self) {
        for c in self.counters.read().unwrap().values() {
            c.reset();
        }
        for g in self.gauges.read().unwrap().values() {
            g.reset();
        }
        for g in self.float_gauges.read().unwrap().values() {
            g.reset();
        }
        for h in self.histograms.read().unwrap().values() {
            h.reset();
        }
    }
}

/// The process-global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// A full registry snapshot. `Display` renders a human-readable report
/// (durations humanized for `.ns`-suffixed names); [`Snapshot::to_json`]
/// renders a machine-readable document.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` per counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, value)` per float gauge, sorted by name.
    pub float_gauges: Vec<(String, f64)>,
    /// `(name, summary)` per histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Renders nanoseconds via `Duration`'s humanized `Debug` form.
fn fmt_ns(ns: u64) -> String {
    format!("{:?}", Duration::from_nanos(ns))
}

fn is_nanos(name: &str) -> bool {
    name.ends_with(".ns") || name.ends_with("_ns")
}

impl Snapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.float_gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// Serializes the snapshot as a JSON object:
    /// `{"counters":{...},"gauges":{...},"float_gauges":{...},"histograms":{name:{count,sum,min,max,p50,p95,p99,p999}}}`.
    ///
    /// Series names may carry labels (`name{k="v"}`), so the string
    /// escaping of names is load-bearing: quotes and backslashes inside
    /// label values must round-trip.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"float_gauges\":{");
        for (i, (name, v)) in self.float_gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            push_json_f64(&mut out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"p999\":{}}}",
                h.count, h.sum, h.min, h.max, h.p50, h.p95, h.p99, h.p999
            ));
        }
        out.push_str("}}");
        out
    }
}

/// Appends an `f64` as a JSON number. JSON has no NaN/Infinity; those
/// (never produced by well-behaved gauges) serialize as `null`.
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` on f64 round-trips (shortest representation) and never
        // produces exponents JSON cannot parse.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Appends `s` as a JSON string literal (quotes + escapes).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "(no metrics recorded)");
        }
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (name, v) in &self.counters {
                writeln!(f, "  {name:<44} {v}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges:")?;
            for (name, v) in &self.gauges {
                writeln!(f, "  {name:<44} {v}")?;
            }
        }
        if !self.float_gauges.is_empty() {
            writeln!(f, "float gauges:")?;
            for (name, v) in &self.float_gauges {
                writeln!(f, "  {name:<44} {v:.6}")?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(f, "histograms:")?;
            for (name, h) in &self.histograms {
                if is_nanos(name) {
                    writeln!(
                        f,
                        "  {name:<44} count={} mean={} p50={} p95={} p99={} p999={} max={}",
                        h.count,
                        fmt_ns(h.mean() as u64),
                        fmt_ns(h.p50),
                        fmt_ns(h.p95),
                        fmt_ns(h.p99),
                        fmt_ns(h.p999),
                        fmt_ns(h.max),
                    )?;
                } else {
                    writeln!(
                        f,
                        "  {name:<44} count={} mean={:.1} p50={} p95={} p99={} p999={} max={}",
                        h.count,
                        h.mean(),
                        h.p50,
                        h.p95,
                        h.p99,
                        h.p999,
                        h.max,
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_is_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_partition_the_u64_range() {
        let (lo, hi) = bucket_bounds(0);
        assert_eq!((lo, hi), (0, 0));
        let mut expected_lo = 1u64;
        for i in 1..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i}");
            assert!(bucket_of(lo) == i && bucket_of(hi) == i, "bucket {i}");
            expected_lo = hi.wrapping_add(1);
        }
        assert_eq!(expected_lo, 0, "last bucket ends at u64::MAX");
    }

    #[test]
    fn empty_histogram_snapshots_to_zeros() {
        let h = Histogram::default();
        let s = h.snapshot();
        assert_eq!(
            (s.count, s.sum, s.min, s.max, s.p50, s.p95, s.p99, s.p999),
            (0, 0, 0, 0, 0, 0, 0, 0)
        );
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_value_percentiles_collapse() {
        let h = Histogram::default();
        for _ in 0..100 {
            h.record(777);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 777);
        assert_eq!(s.max, 777);
        assert_eq!(s.p50, 777);
        assert_eq!(s.p95, 777);
        assert_eq!(s.p99, 777);
        assert_eq!(s.p999, 777);
    }

    #[test]
    fn percentiles_track_uniform_distribution() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // Digest-backed percentiles land within ±1% rank of the truth —
        // far inside the old log-bucket bound.
        assert!((490..=510).contains(&s.p50), "p50 {}", s.p50);
        assert!((940..=960).contains(&s.p95), "p95 {}", s.p95);
        assert!((980..=1000).contains(&s.p99), "p99 {}", s.p99);
        assert!((989..=1000).contains(&s.p999), "p999 {}", s.p999);
        assert!(s.p95 >= s.p50 && s.p99 >= s.p95 && s.p999 >= s.p99);
    }

    /// Regression for the bucket-estimator percentile bias: a constant
    /// stream sitting mid-bucket must report the exact value once the
    /// bucket clamps to a singleton range, even with an outlier pulling
    /// the clamp bounds apart (the pre-fix code clamped the *unclamped*
    /// midpoint, reporting 767 for a stream of 777s).
    #[test]
    fn bucket_percentile_is_exact_on_singleton_ranges() {
        // Constant stream: bucket [512, 1023] clamps to [777, 777].
        let mut counts = vec![0u64; BUCKETS];
        counts[bucket_of(777)] = 100;
        assert_eq!(bucket_percentile(&counts, 100, 777, 777, 0.5), 777);
        assert_eq!(bucket_percentile(&counts, 100, 777, 777, 0.99), 777);
        // Zero bucket is a singleton by construction.
        let mut zeros = vec![0u64; BUCKETS];
        zeros[0] = 10;
        assert_eq!(bucket_percentile(&zeros, 10, 0, 0, 0.5), 0);
        // With an outlier above, the p50 bucket clamps to [777, 1023]:
        // still an estimate, but never below the observed minimum.
        let mut mixed = vec![0u64; BUCKETS];
        mixed[bucket_of(777)] = 100;
        mixed[bucket_of(5000)] = 1;
        let p50 = bucket_percentile(&mixed, 101, 777, 5000, 0.5);
        assert!((777..=1023).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn histogram_digest_merges_across_recording_threads() {
        // Samples recorded from many threads stripe over the digest
        // shards; the snapshot must still see one coherent distribution.
        let h = Arc::new(Histogram::default());
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.record(t * 1000 + i + 1);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 8000);
        // True p50 = 4000: the merged digest must land within ±1% rank.
        assert!((3920..=4080).contains(&s.p50), "p50 {}", s.p50);
        assert!((7840..=8000).contains(&s.p999), "p999 {}", s.p999);
    }

    #[test]
    fn extreme_values_do_not_overflow_buckets() {
        let h = Histogram::default();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn concurrent_counter_increments_are_lossless() {
        let c = Arc::new(Counter::default());
        let threads = 8;
        let per_thread = 10_000;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), threads * per_thread);
    }

    #[test]
    fn concurrent_histogram_records_are_lossless() {
        let h = Arc::new(Histogram::default());
        let threads = 8u64;
        let per_thread = 5_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * per_thread + i + 1);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, threads * per_thread);
        let n = threads * per_thread;
        assert_eq!(s.sum, n * (n + 1) / 2);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, n);
    }

    #[test]
    fn gauge_incr_decr_track_in_flight_work() {
        let g = Gauge::default();
        g.incr();
        g.incr();
        assert_eq!(g.get(), 2);
        g.decr();
        assert_eq!(g.get(), 1);
        g.decr();
        g.decr();
        assert_eq!(g.get(), -1, "gauges may go negative; callers balance");
    }

    #[test]
    fn registry_interns_by_name() {
        let r = Registry::default();
        let a = r.counter("x");
        let b = r.counter("x");
        a.incr();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn registry_reset_keeps_handles_valid() {
        let r = Registry::default();
        let c = r.counter("c");
        let h = r.histogram("h");
        c.add(5);
        h.record(9);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        c.incr();
        assert_eq!(r.snapshot().counters[0].1, 1);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let r = Registry::default();
        r.counter("a.b").add(3);
        r.gauge("g").set(-2);
        r.histogram("h.ns").record(1000);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a.b\":3"), "{json}");
        assert!(json.contains("\"g\":-2"), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
        assert!(json.contains("\"p99\":"), "{json}");
        // Balanced braces (crude structural check without a parser).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_escapes_labeled_series_names() {
        // Labeled series keys contain quotes and (for escaped label
        // values) backslashes — `to_json` must keep the document
        // parseable. Exercise the worst case: a label value containing
        // a quote and a backslash, which the canonical key stores as
        // `m{k="a\"b\\c"}`.
        let r = Registry::default();
        r.counter_with("m", &[("k", "a\"b\\c")]).add(1);
        r.float_gauge_with("g", &[("k", "x\"y")]).set(0.5);
        let json = r.snapshot().to_json();
        // The key's `"` chars are JSON-escaped; its `\` chars doubled.
        assert!(json.contains(r#""m{k=\"a\\\"b\\\\c\"}":1"#), "{json}");
        assert!(json.contains(r#""g{k=\"x\\\"y\"}":0.5"#), "{json}");
        // Structural sanity: balanced braces.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn float_gauge_round_trips_values() {
        let r = Registry::default();
        let g = r.float_gauge("ratio");
        g.set(0.375);
        assert_eq!(g.get(), 0.375);
        let snap = r.snapshot();
        assert_eq!(snap.float_gauges, vec![("ratio".to_string(), 0.375)]);
        assert!(snap.to_json().contains("\"ratio\":0.375"));
        assert!(snap.to_string().contains("ratio"));
        r.reset();
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn labeled_series_intern_by_canonical_key() {
        let r = Registry::default();
        let a = r.counter_with("hits", &[("node", "3"), ("kind", "q")]);
        let b = r.counter_with("hits", &[("kind", "q"), ("node", "3")]);
        assert!(Arc::ptr_eq(&a, &b), "label order must not split series");
        a.incr();
        let snap = r.snapshot();
        assert_eq!(
            snap.counters
                .iter()
                .find(|(n, _)| n == "hits{kind=\"q\",node=\"3\"}")
                .map(|(_, v)| *v),
            Some(1)
        );
    }

    #[test]
    fn overflow_counts_are_attributed_to_the_family() {
        // Regression: the overflow redirect used to lose the overflowed
        // family's name — only the family-blind obs.series.dropped total
        // moved. Overflow two distinct families and check each gets its
        // own attributed count plus exactly one warning event.
        let r = Registry::default();
        let fam_a = "overflow_attr_test.alpha";
        let fam_b = "overflow_attr_test.beta";
        for i in 0..MAX_SERIES_PER_FAMILY + 3 {
            let v = i.to_string();
            r.counter_with(fam_a, &[("node", &v)]).incr();
        }
        for i in 0..MAX_SERIES_PER_FAMILY + 1 {
            let v = i.to_string();
            r.gauge_with(fam_b, &[("node", &v)]).set(1);
        }
        let key_a = series_key(names::OBS_LABELS_OVERFLOW, &[("family", fam_a)]);
        let key_b = series_key(names::OBS_LABELS_OVERFLOW, &[("family", fam_b)]);
        let snap = r.snapshot();
        let get = |key: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == key)
                .map(|(_, v)| *v)
        };
        assert_eq!(get(&key_a), Some(3), "alpha overflowed 3 times");
        assert_eq!(get(&key_b), Some(1), "beta overflowed once");
        // Re-resolving an *existing* overflow label set must not count.
        r.counter_with(fam_a, &[("node", "0")]).incr();
        assert_eq!(
            r.snapshot()
                .counters
                .iter()
                .find(|(n, _)| n == &key_a)
                .map(|(_, v)| *v),
            Some(3)
        );
        // One warning event per family, in the global journal.
        let warnings: Vec<_> = crate::events::journal()
            .recent(usize::MAX)
            .into_iter()
            .filter(|e| {
                matches!(
                    &e.event,
                    crate::events::Event::SeriesOverflow { family }
                        if family == fam_a || family == fam_b
                )
            })
            .collect();
        assert_eq!(warnings.len(), 2, "exactly one warning per family");
    }

    #[test]
    fn exemplar_tracks_worst_traced_observation() {
        let h = Histogram::default();
        assert_eq!(h.exemplar(), None);
        h.record(1_000_000); // untraced: never an exemplar
        assert_eq!(h.exemplar(), None);
        h.record_with_trace(500, 0xaaaa);
        h.record_with_trace(9_000, 0xbbbb);
        h.record_with_trace(700, 0xcccc); // smaller: keeps the worst
        let ex = h.exemplar().unwrap();
        assert_eq!(ex.value, 9_000);
        assert_eq!(ex.trace_id, 0xbbbb);
        assert!(ex.unix_ms > 0);
        let snap = h.snapshot();
        assert_eq!(snap.exemplar, Some(ex));
        assert_eq!(snap.count, 4);
        h.reset();
        assert_eq!(h.exemplar(), None);
    }

    #[test]
    fn cumulative_buckets_are_monotone() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 5000, 5001] {
            h.record(v);
        }
        let s = h.snapshot();
        let cum = s.cumulative_buckets();
        assert!(!cum.is_empty());
        let mut last = 0;
        for (le, c) in &cum {
            assert!(*c >= last, "cumulative counts must not decrease");
            assert!(*le > 0);
            last = *c;
        }
        assert_eq!(last, s.count);
    }

    #[test]
    fn display_humanizes_ns_histograms() {
        let r = Registry::default();
        r.histogram("query.ns").record(1_500_000);
        let text = r.snapshot().to_string();
        assert!(text.contains("query.ns"), "{text}");
        assert!(text.contains("ms") || text.contains("µs"), "{text}");
    }
}
