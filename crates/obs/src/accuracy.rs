//! Rolling forecast-accuracy tracking and drift detection, built on
//! mergeable moment summaries.
//!
//! The maintenance loop (paper §V) watches per-model forecast error to
//! decide when to re-estimate. [`RollingAccuracy`] is the observable
//! half of that loop: per tracked key (catalog node) it keeps a ring of
//! [`MomentSummary`] slots — one slot per recorded `(actual, predicted)`
//! pair, holding the SMAPE term and the signed error — plus a baseline
//! summary absorbing everything that ages out of the ring. Because every
//! piece of state is a `MomentSummary`, per-key accuracy is
//! **partializable**: [`KeyAccuracy`] values from different trackers
//! (threads, shards, processes — via the sketch codec) merge exactly at
//! read time without any global lock.
//!
//! Drift fires edge-triggered (once per excursion, not once per step)
//! on either of two conditions:
//!
//! * **SMAPE threshold** — the recent window's mean SMAPE term crosses
//!   `smape_threshold` from below (the classic trigger), or
//! * **variance-aware** — the recent window's mean absolute error
//!   exceeds the baseline's by more than `stddev_k` baseline standard
//!   deviations: a model can degrade badly relative to its own history
//!   while its SMAPE still sits under a global threshold.
//!
//! Each key's windowed SMAPE, MAE and error stddev publish into
//! float-gauge families (label `node`) so `/metrics` exposes per-node
//! accuracy. The tracker is engine-agnostic: keys are plain `u64`s and
//! the gauge families are configured by the caller, so `fdc-f2db` wires
//! it to its catalog nodes without this crate knowing about catalogs.

use crate::metrics::registry;
use crate::names;
use crate::sketch::{MomentSummary, SketchDecodeError};
use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

/// Configuration of a [`RollingAccuracy`] tracker.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyOptions {
    /// Window length in observations (per key).
    pub window: usize,
    /// Windowed-SMAPE threshold in `[0, 1]` above which a key is
    /// considered drifting.
    pub smape_threshold: f64,
    /// Minimum observations in the window before drift can fire (a
    /// single bad step in a near-empty window is noise, not drift).
    /// Clamped to ≥ 1; the variance trigger additionally requires a
    /// baseline of ≥ 2 observations, so a 1-sample baseline can never
    /// produce a stddev-based alert.
    pub min_samples: usize,
    /// Variance-trigger sensitivity: alert when the recent window's
    /// mean absolute error exceeds the baseline's mean absolute error
    /// by more than `stddev_k` baseline standard deviations.
    /// Non-positive disables the variance trigger.
    pub stddev_k: f64,
}

impl Default for AccuracyOptions {
    fn default() -> Self {
        AccuracyOptions {
            window: 12,
            smape_threshold: 0.5,
            min_samples: 4,
            stddev_k: 3.0,
        }
    }
}

/// Which condition raised a [`DriftAlert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftTrigger {
    /// The windowed SMAPE crossed `smape_threshold` from below.
    SmapeThreshold,
    /// The recent mean absolute error exceeded the baseline mean by
    /// more than `stddev_k` baseline standard deviations.
    Variance,
}

impl DriftTrigger {
    /// Stable string tag (journal events, JSON payloads).
    pub fn as_str(&self) -> &'static str {
        match self {
            DriftTrigger::SmapeThreshold => "smape_threshold",
            DriftTrigger::Variance => "variance",
        }
    }
}

/// A drift signal returned by [`RollingAccuracy::record`] when a key
/// crosses one of its drift conditions from below.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftAlert {
    /// The tracked key (catalog node id).
    pub key: u64,
    /// Windowed SMAPE at the moment of crossing.
    pub smape: f64,
    /// Windowed MAE at the moment of crossing.
    pub mae: f64,
    /// The configured SMAPE threshold.
    pub threshold: f64,
    /// Which condition fired (SMAPE wins when both cross at once).
    pub trigger: DriftTrigger,
    /// Baseline mean absolute error at the moment of crossing.
    pub baseline_mae: f64,
    /// Baseline error standard deviation at the moment of crossing.
    pub baseline_stddev: f64,
}

/// Mergeable per-key accuracy state: the partial a shard ships to a
/// router. All members are [`MomentSummary`]s, so [`KeyAccuracy::merge`]
/// is exact and deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyAccuracy {
    /// The tracked key (catalog node id).
    pub key: u64,
    /// Recent-window SMAPE terms (`mean()` is the windowed SMAPE).
    pub smape: MomentSummary,
    /// Recent-window signed errors (`abs_mean()` is the windowed MAE,
    /// `stddev()` the error spread, `mean()` the bias).
    pub err: MomentSummary,
    /// Errors that aged out of the window since the last reset — the
    /// baseline the variance trigger compares against.
    pub baseline_err: MomentSummary,
    /// Whether the key was in a drift excursion after its last record.
    pub drifting: bool,
}

/// Codec version written by [`KeyAccuracy::encode`].
pub const KEY_ACCURACY_CODEC_VERSION: u8 = 1;

impl KeyAccuracy {
    /// Observations represented (recent window + baseline).
    pub fn total(&self) -> u64 {
        self.err.count() + self.baseline_err.count()
    }

    /// Pools two partials for the same key: summaries merge exactly,
    /// drift states OR together.
    pub fn merge(&self, other: &KeyAccuracy) -> KeyAccuracy {
        KeyAccuracy {
            key: self.key,
            smape: self.smape.merge(&other.smape),
            err: self.err.merge(&other.err),
            baseline_err: self.baseline_err.merge(&other.baseline_err),
            drifting: self.drifting || other.drifting,
        }
    }

    /// Serializes as `[version][key][drifting][smape][err][baseline]`
    /// using the [`MomentSummary`] codec for each member — the wire
    /// format a shard ships alongside WAL frames.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + 8 + 3 * 57);
        out.push(KEY_ACCURACY_CODEC_VERSION);
        out.extend_from_slice(&self.key.to_le_bytes());
        out.push(self.drifting as u8);
        for s in [&self.smape, &self.err, &self.baseline_err] {
            out.extend_from_slice(&s.encode());
        }
        out
    }

    /// Decodes a partial produced by [`KeyAccuracy::encode`].
    pub fn decode(bytes: &[u8]) -> Result<KeyAccuracy, SketchDecodeError> {
        if bytes.len() < 10 {
            return Err(SketchDecodeError::Truncated);
        }
        if bytes[0] != KEY_ACCURACY_CODEC_VERSION {
            return Err(SketchDecodeError::UnsupportedVersion(bytes[0]));
        }
        let key = u64::from_le_bytes(bytes[1..9].try_into().unwrap());
        let drifting = match bytes[9] {
            0 => false,
            1 => true,
            _ => return Err(SketchDecodeError::Corrupt("drift flag")),
        };
        let rest = &bytes[10..];
        let part = rest.len() / 3;
        if !rest.len().is_multiple_of(3) || part == 0 {
            return Err(SketchDecodeError::Truncated);
        }
        Ok(KeyAccuracy {
            key,
            drifting,
            smape: MomentSummary::decode(&rest[..part])?,
            err: MomentSummary::decode(&rest[part..2 * part])?,
            baseline_err: MomentSummary::decode(&rest[2 * part..])?,
        })
    }
}

/// Per-key state: a ring of single-observation [`MomentSummary`] slots
/// (two per observation: SMAPE term and signed error) plus the baseline
/// absorbing evicted observations.
#[derive(Debug)]
struct KeyWindow {
    /// Ring of per-observation SMAPE-term summaries.
    smape_slots: Vec<MomentSummary>,
    /// Ring of per-observation signed-error summaries (parallel to
    /// `smape_slots`).
    err_slots: Vec<MomentSummary>,
    /// Next write position in the rings.
    next: usize,
    /// Observations absorbed so far (saturates at the window length).
    filled: usize,
    /// Signed errors evicted from the ring since the last reset.
    baseline_err: MomentSummary,
    /// Whether the key was above a drift condition after the last
    /// record — drift fires only on the false→true edge.
    above: bool,
}

impl KeyWindow {
    fn new(window: usize) -> Self {
        KeyWindow {
            smape_slots: vec![MomentSummary::new(); window],
            err_slots: vec![MomentSummary::new(); window],
            next: 0,
            filled: 0,
            baseline_err: MomentSummary::new(),
            above: false,
        }
    }

    fn push(&mut self, smape_term: f64, err: f64) {
        if self.filled == self.smape_slots.len() {
            // The slot being overwritten ages into the baseline.
            self.baseline_err = self.baseline_err.merge(&self.err_slots[self.next]);
        }
        self.smape_slots[self.next] = MomentSummary::of(smape_term);
        self.err_slots[self.next] = MomentSummary::of(err);
        self.next = (self.next + 1) % self.smape_slots.len();
        self.filled = (self.filled + 1).min(self.smape_slots.len());
    }

    /// Merged recent-window summaries `(smape, err)`.
    fn recent(&self) -> (MomentSummary, MomentSummary) {
        let mut smape = MomentSummary::new();
        let mut err = MomentSummary::new();
        for i in 0..self.filled {
            smape = smape.merge(&self.smape_slots[i]);
            err = err.merge(&self.err_slots[i]);
        }
        (smape, err)
    }
}

/// Windowed per-key accuracy tracker on [`MomentSummary`] ring slots,
/// with edge-triggered SMAPE-threshold and variance-aware drift
/// detection. All methods take `&self`; internally one mutex guards the
/// key map (records happen once per key per time advance — far off any
/// hot path). Reads produce mergeable [`KeyAccuracy`] partials, so
/// per-shard trackers combine at read time without a global lock.
#[derive(Debug)]
pub struct RollingAccuracy {
    opts: AccuracyOptions,
    /// Float-gauge families to publish into: `(smape_family,
    /// mae_family, stddev_family)`, label `node=<key>`. `None` keeps
    /// the tracker registry-silent (tests, ad-hoc use).
    gauges: Option<(String, String, String)>,
    windows: Mutex<HashMap<u64, KeyWindow>>,
}

impl RollingAccuracy {
    /// Creates a tracker with the given options, not publishing gauges.
    pub fn new(opts: AccuracyOptions) -> Self {
        RollingAccuracy {
            opts: AccuracyOptions {
                window: opts.window.max(1),
                min_samples: opts.min_samples.max(1),
                ..opts
            },
            gauges: None,
            windows: Mutex::new(HashMap::new()),
        }
    }

    /// Publishes each key's windowed SMAPE, MAE and error stddev into
    /// the given float-gauge families (label `node`), e.g.
    /// `f2db.node.smape{node="17"}`.
    pub fn with_gauge_families(
        mut self,
        smape_family: &str,
        mae_family: &str,
        stddev_family: &str,
    ) -> Self {
        self.gauges = Some((
            smape_family.to_string(),
            mae_family.to_string(),
            stddev_family.to_string(),
        ));
        self
    }

    /// The configured options.
    pub fn options(&self) -> &AccuracyOptions {
        &self.opts
    }

    /// Records one `(actual, predicted)` pair for `key`. Returns a
    /// [`DriftAlert`] when this record moved the key across a drift
    /// condition from below: the windowed SMAPE over `smape_threshold`
    /// (with ≥ `min_samples` observations), or the windowed MAE over
    /// the baseline MAE plus `stddev_k` baseline standard deviations
    /// (additionally requiring a baseline of ≥ 2 observations).
    pub fn record(&self, key: u64, actual: f64, predicted: f64) -> Option<DriftAlert> {
        let denom = (actual + predicted).abs();
        let smape_term = if denom < f64::EPSILON {
            0.0
        } else {
            (actual - predicted).abs() / denom
        };
        let err = actual - predicted;

        let (smape, mae, stddev, fired) = {
            let mut windows = self.windows.lock().unwrap();
            let w = windows
                .entry(key)
                .or_insert_with(|| KeyWindow::new(self.opts.window));
            w.push(smape_term, err);
            let (recent_smape, recent_err) = w.recent();
            let smape = recent_smape.mean();
            let mae = recent_err.abs_mean();
            let stddev = recent_err.stddev();
            let enough = w.filled >= self.opts.min_samples;
            let above_smape = enough && smape > self.opts.smape_threshold;
            // Variance trigger: never against a baseline of fewer than
            // two observations (a 1-sample baseline has no spread, and
            // with min_samples = 0 it would alert on the very first
            // record).
            let baseline = &w.baseline_err;
            let above_var = self.opts.stddev_k > 0.0
                && enough
                && baseline.count() >= 2
                && mae > baseline.abs_mean() + self.opts.stddev_k * baseline.stddev();
            let above = above_smape || above_var;
            let fired = (above && !w.above).then(|| DriftAlert {
                key,
                smape,
                mae,
                threshold: self.opts.smape_threshold,
                trigger: if above_smape {
                    DriftTrigger::SmapeThreshold
                } else {
                    DriftTrigger::Variance
                },
                baseline_mae: baseline.abs_mean(),
                baseline_stddev: baseline.stddev(),
            });
            w.above = above;
            (smape, mae, stddev, fired)
        };

        self.publish_gauges(key, smape, mae, stddev);
        fired
    }

    fn publish_gauges(&self, key: u64, smape: f64, mae: f64, stddev: f64) {
        if let Some((smape_family, mae_family, stddev_family)) = &self.gauges {
            let node = key.to_string();
            registry()
                .float_gauge_with(smape_family, &[("node", &node)])
                .set(smape);
            registry()
                .float_gauge_with(mae_family, &[("node", &node)])
                .set(mae);
            registry()
                .float_gauge_with(stddev_family, &[("node", &node)])
                .set(stddev);
        }
    }

    /// Windowed SMAPE of `key` (`None` until its first record).
    pub fn smape(&self, key: u64) -> Option<f64> {
        self.windows
            .lock()
            .unwrap()
            .get(&key)
            .map(|w| w.recent().0.mean())
    }

    /// Windowed MAE of `key` (`None` until its first record).
    pub fn mae(&self, key: u64) -> Option<f64> {
        self.windows
            .lock()
            .unwrap()
            .get(&key)
            .map(|w| w.recent().1.abs_mean())
    }

    /// Mergeable accuracy partial of `key` (`None` until its first
    /// record).
    pub fn summary(&self, key: u64) -> Option<KeyAccuracy> {
        self.windows.lock().unwrap().get(&key).map(|w| {
            let (smape, err) = w.recent();
            KeyAccuracy {
                key,
                smape,
                err,
                baseline_err: w.baseline_err,
                drifting: w.above,
            }
        })
    }

    /// Mergeable accuracy partials for every tracked key, sorted by
    /// key. The per-tracker mutex is held only while copying summaries
    /// out — merging across trackers happens lock-free on the copies.
    pub fn summaries(&self) -> Vec<KeyAccuracy> {
        let windows = self.windows.lock().unwrap();
        let mut out: Vec<KeyAccuracy> = windows
            .iter()
            .map(|(&key, w)| {
                let (smape, err) = w.recent();
                KeyAccuracy {
                    key,
                    smape,
                    err,
                    baseline_err: w.baseline_err,
                    drifting: w.above,
                }
            })
            .collect();
        drop(windows);
        out.sort_by_key(|s| s.key);
        out
    }

    /// Merges per-key partials from many trackers (shards) into one
    /// global view, sorted by key. No lock spans trackers: each tracker
    /// is snapshotted independently and the [`KeyAccuracy::merge`]
    /// folds run on the copies. Merge work counts into
    /// `obs.sketch.accuracy_merges`.
    pub fn merged(trackers: &[&RollingAccuracy]) -> Vec<KeyAccuracy> {
        let mut by_key: BTreeMap<u64, KeyAccuracy> = BTreeMap::new();
        let mut merges = 0u64;
        for t in trackers {
            for s in t.summaries() {
                by_key
                    .entry(s.key)
                    .and_modify(|acc| {
                        *acc = acc.merge(&s);
                        merges += 1;
                    })
                    .or_insert(s);
            }
        }
        if merges > 0 {
            registry()
                .counter(names::OBS_SKETCH_ACCURACY_MERGES)
                .add(merges);
        }
        by_key.into_values().collect()
    }

    /// Folds already-snapshotted partials (e.g. decoded from shard
    /// `/sketch` bundles) into one global view, sorted by key — the
    /// router-side counterpart of [`RollingAccuracy::merged`]. Merge
    /// work counts into `obs.sketch.accuracy_merges`.
    pub fn merged_partials(groups: &[Vec<KeyAccuracy>]) -> Vec<KeyAccuracy> {
        let mut by_key: BTreeMap<u64, KeyAccuracy> = BTreeMap::new();
        let mut merges = 0u64;
        for group in groups {
            for s in group {
                by_key
                    .entry(s.key)
                    .and_modify(|acc| {
                        *acc = acc.merge(s);
                        merges += 1;
                    })
                    .or_insert(*s);
            }
        }
        if merges > 0 {
            registry()
                .counter(names::OBS_SKETCH_ACCURACY_MERGES)
                .add(merges);
        }
        by_key.into_values().collect()
    }

    /// Number of keys tracked so far.
    pub fn tracked_keys(&self) -> usize {
        self.windows.lock().unwrap().len()
    }

    /// Clears `key`'s window **and baseline** (call after the model was
    /// re-estimated, so the fresh parameters are not judged by stale
    /// errors — and so the next genuine excursion re-alerts on either
    /// trigger).
    pub fn reset_key(&self, key: u64) {
        let mut windows = self.windows.lock().unwrap();
        if let Some(w) = windows.get_mut(&key) {
            *w = KeyWindow::new(self.opts.window);
        }
        drop(windows);
        self.publish_gauges(key, 0.0, 0.0, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(window: usize, threshold: f64, min_samples: usize) -> AccuracyOptions {
        AccuracyOptions {
            window,
            smape_threshold: threshold,
            min_samples,
            // Tests of the SMAPE trigger disable the variance trigger.
            stddev_k: 0.0,
        }
    }

    #[test]
    fn window_math_matches_hand_computation() {
        let acc = RollingAccuracy::new(opts(3, 0.9, 1));
        // Perfect forecast: SMAPE term 0, MAE 0.
        acc.record(1, 10.0, 10.0);
        assert_eq!(acc.smape(1), Some(0.0));
        assert_eq!(acc.mae(1), Some(0.0));
        // One fully-wrong step: |10-0|/|10+0| = 1.
        acc.record(1, 10.0, 0.0);
        assert!((acc.smape(1).unwrap() - 0.5).abs() < 1e-12);
        assert!((acc.mae(1).unwrap() - 5.0).abs() < 1e-12);
        // Window slides: after 3 more perfect steps the bad one is gone.
        for _ in 0..3 {
            acc.record(1, 10.0, 10.0);
        }
        assert_eq!(acc.smape(1), Some(0.0));
        // ... but not forgotten: it aged into the baseline.
        let s = acc.summary(1).expect("tracked");
        assert_eq!(s.err.count(), 3);
        assert_eq!(s.baseline_err.count(), 2);
        assert_eq!(s.total(), 5);
    }

    #[test]
    fn drift_fires_on_threshold_crossing_only() {
        let acc = RollingAccuracy::new(opts(4, 0.4, 2));
        assert!(acc.record(7, 10.0, 10.0).is_none());
        // First bad step: window SMAPE 0.5 but only fires once the edge
        // is crossed with >= min_samples.
        let alert = acc.record(7, 10.0, 0.0).expect("crossing fires");
        assert_eq!(alert.key, 7);
        assert!(alert.smape > 0.4);
        assert_eq!(alert.threshold, 0.4);
        assert_eq!(alert.trigger, DriftTrigger::SmapeThreshold);
        // Still above: no re-fire.
        assert!(acc.record(7, 10.0, 0.0).is_none());
        // Recover below, then cross again: fires again.
        for _ in 0..4 {
            assert!(acc.record(7, 10.0, 10.0).is_none());
        }
        for _ in 0..4 {
            if acc.record(7, 10.0, 0.0).is_some() {
                return;
            }
        }
        panic!("second excursion must re-alert");
    }

    #[test]
    fn min_samples_suppresses_early_noise() {
        let acc = RollingAccuracy::new(opts(8, 0.2, 4));
        // Three terrible steps — below min_samples, no alert.
        for _ in 0..3 {
            assert!(acc.record(1, 100.0, 0.0).is_none());
        }
        // The fourth reaches min_samples and fires.
        assert!(acc.record(1, 100.0, 0.0).is_some());
    }

    #[test]
    fn variance_trigger_catches_mean_shift_under_the_smape_radar() {
        // SMAPE threshold unreachable (SMAPE terms are ≤ 1), so only
        // the variance trigger can fire.
        let acc = RollingAccuracy::new(AccuracyOptions {
            window: 4,
            smape_threshold: 2.0,
            min_samples: 2,
            stddev_k: 3.0,
        });
        // Build a calm baseline: small errors around 1.0 must age out
        // of the 4-slot ring into the baseline.
        for i in 0..12 {
            let jitter = if i % 2 == 0 { 0.9 } else { 1.1 };
            assert!(
                acc.record(5, 100.0 + jitter, 100.0).is_none(),
                "calm phase must not alert (step {i})"
            );
        }
        // Level shift: errors jump to ~25 — far beyond baseline
        // mean + 3·stddev, while SMAPE stays ≈ 0.11.
        let mut fired = None;
        for _ in 0..4 {
            if let Some(a) = acc.record(5, 125.0, 100.0) {
                fired = Some(a);
                break;
            }
        }
        let alert = fired.expect("variance trigger fires on the shift");
        assert_eq!(alert.trigger, DriftTrigger::Variance);
        assert!(alert.smape < 0.2, "smape {} stayed small", alert.smape);
        assert!(alert.mae > alert.baseline_mae + 3.0 * alert.baseline_stddev);
        // Still above: edge-triggered, no re-fire.
        assert!(acc.record(5, 125.0, 100.0).is_none());
    }

    /// Regression: with `min_samples = 0` the very first observation
    /// must not raise a drift alert — the effective minimum clamps to 1
    /// for the SMAPE trigger, and the variance trigger needs a baseline
    /// of at least two observations (a 1-sample baseline has stddev 0
    /// and would otherwise alert on any increase).
    #[test]
    fn min_samples_zero_cannot_alert_on_first_observation() {
        let acc = RollingAccuracy::new(AccuracyOptions {
            window: 2,
            smape_threshold: 2.0, // unreachable: isolate the variance path
            min_samples: 0,
            stddev_k: 0.5,
        });
        assert_eq!(acc.options().min_samples, 1, "clamped on construction");
        // First observation: window of 1, baseline of 0 — silence, and
        // the published stddev is finite.
        assert!(acc.record(9, 1000.0, 0.0).is_none());
        let s = acc.summary(9).expect("tracked");
        assert!(s.err.stddev().is_finite());
        assert!(!s.drifting);
        // Second observation: baseline still has < 2 samples — silence.
        assert!(acc.record(9, 1000.0, 0.0).is_none());
        // Two more calm records age errors into the baseline; once the
        // baseline holds 2 observations the variance trigger arms and a
        // genuine excursion still fires.
        assert!(acc.record(9, 1.0, 0.0).is_none());
        assert!(acc.record(9, 1.0, 0.0).is_none());
        assert!(
            acc.record(9, 5000.0, 0.0).is_some(),
            "armed trigger still catches a real excursion"
        );
    }

    #[test]
    fn reset_key_clears_window_and_rearms() {
        let acc = RollingAccuracy::new(opts(4, 0.4, 1));
        assert!(acc.record(3, 10.0, 0.0).is_some());
        acc.reset_key(3);
        assert_eq!(acc.smape(3), Some(0.0));
        assert_eq!(acc.summary(3).unwrap().total(), 0, "baseline cleared too");
        // Re-armed: the next excursion alerts again.
        assert!(acc.record(3, 10.0, 0.0).is_some());
    }

    #[test]
    fn gauges_publish_per_key_series() {
        let acc = RollingAccuracy::new(opts(4, 0.9, 1)).with_gauge_families(
            "acc_test.smape",
            "acc_test.mae",
            "acc_test.err_stddev",
        );
        acc.record(42, 10.0, 0.0);
        acc.record(42, 14.0, 0.0);
        let snap = crate::snapshot();
        let find = |name: &str| {
            snap.float_gauges
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .1
        };
        assert!((find("acc_test.smape{node=\"42\"}") - 1.0).abs() < 1e-12);
        assert!((find("acc_test.mae{node=\"42\"}") - 12.0).abs() < 1e-12);
        // Sample stddev of {10, 14} = √8.
        assert!((find("acc_test.err_stddev{node=\"42\"}") - 8f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn zero_denominator_is_not_an_error() {
        let acc = RollingAccuracy::new(opts(2, 0.1, 1));
        assert!(acc.record(1, 0.0, 0.0).is_none());
        assert_eq!(acc.smape(1), Some(0.0));
    }

    #[test]
    fn partials_merge_exactly_across_trackers() {
        // Two shards observe different steps of the same node; the
        // merged view must pool counts and moments exactly — the router
        // story for partitioned serving.
        let a = RollingAccuracy::new(opts(8, 0.9, 1));
        let b = RollingAccuracy::new(opts(8, 0.9, 1));
        for i in 0..5 {
            a.record(7, 10.0 + i as f64, 10.0);
        }
        for i in 0..3 {
            b.record(7, 20.0 + i as f64, 10.0);
        }
        b.record(9, 1.0, 1.0); // a key only shard b tracks
        let merged = RollingAccuracy::merged(&[&a, &b]);
        assert_eq!(merged.len(), 2);
        let node7 = &merged[0];
        assert_eq!(node7.key, 7);
        assert_eq!(node7.err.count(), 8);
        // Pooled MAE over {0,1,2,3,4} ∪ {10,11,12}: 43/8.
        assert!((node7.err.abs_mean() - 43.0 / 8.0).abs() < 1e-12);
        // Merging is reproducible bit-for-bit over the same partials.
        let s1 = a.summary(7).unwrap();
        let s2 = b.summary(7).unwrap();
        assert_eq!(s1.merge(&s2).encode(), s1.merge(&s2).encode());
        assert_eq!(merged[1].key, 9);
    }

    /// Replication story: a primary and a follower each track accuracy
    /// locally and ship [`KeyAccuracy`] **codec bytes**; the view
    /// rebuilt from the wire must equal the in-process
    /// [`RollingAccuracy::merged`] oracle bit-for-bit — same keys, same
    /// moments, same drift flags, same encoded bytes.
    #[test]
    fn follower_merge_over_codec_bytes_matches_the_in_process_oracle() {
        let primary = RollingAccuracy::new(opts(6, 0.4, 1));
        let follower = RollingAccuracy::new(opts(6, 0.4, 1));
        // Key 3 is observed by both sides (overlapping windows, one
        // side driven into a drift excursion), 5 only by the primary,
        // 8 only by the follower.
        for i in 0..9 {
            primary.record(3, 10.0 + i as f64, 10.0);
            primary.record(5, 4.0, 2.0 + i as f64);
        }
        for i in 0..5 {
            follower.record(3, 30.0 + i as f64, 1.0);
            follower.record(8, 2.0, 2.0);
        }
        // The wire trip a router performs: encode every partial on its
        // origin, decode and fold on arrival.
        let mut shipped: Vec<Vec<u8>> = Vec::new();
        for tracker in [&primary, &follower] {
            for s in tracker.summaries() {
                shipped.push(s.encode());
            }
        }
        let mut by_key: BTreeMap<u64, KeyAccuracy> = BTreeMap::new();
        for bytes in &shipped {
            let s = KeyAccuracy::decode(bytes).expect("wire partial decodes");
            by_key
                .entry(s.key)
                .and_modify(|acc| *acc = acc.merge(&s))
                .or_insert(s);
        }
        let via_bytes: Vec<KeyAccuracy> = by_key.into_values().collect();

        let oracle = RollingAccuracy::merged(&[&primary, &follower]);
        assert_eq!(via_bytes.len(), oracle.len());
        assert_eq!(
            via_bytes.iter().map(|s| s.key).collect::<Vec<_>>(),
            vec![3, 5, 8]
        );
        for (wire, local) in via_bytes.iter().zip(&oracle) {
            assert_eq!(wire, local, "key {} diverged over the wire", local.key);
            assert_eq!(
                wire.encode(),
                local.encode(),
                "key {} re-encodes differently",
                local.key
            );
        }
        // The overlapping key pooled both windows and kept the drift OR.
        let node3 = &oracle[0];
        assert_eq!(node3.err.count(), 6 + 5);
        assert!(
            node3.drifting,
            "the follower-side excursion must survive the merge"
        );
    }

    #[test]
    fn key_accuracy_codec_round_trips() {
        let acc = RollingAccuracy::new(opts(3, 0.4, 1));
        for i in 0..7 {
            acc.record(11, i as f64, 0.5);
        }
        let s = acc.summary(11).unwrap();
        let bytes = s.encode();
        let back = KeyAccuracy::decode(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.encode(), bytes);
        assert_eq!(
            KeyAccuracy::decode(&bytes[..5]),
            Err(SketchDecodeError::Truncated)
        );
        let mut wrong = bytes.clone();
        wrong[0] = 9;
        assert_eq!(
            KeyAccuracy::decode(&wrong),
            Err(SketchDecodeError::UnsupportedVersion(9))
        );
    }
}
