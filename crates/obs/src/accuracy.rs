//! Rolling forecast-accuracy tracking and drift detection.
//!
//! The maintenance loop (paper §V) watches per-model forecast error to
//! decide when to re-estimate. [`RollingAccuracy`] is the observable
//! half of that loop: a windowed SMAPE/MAE per tracked key (catalog
//! node), fed one `(actual, predicted)` pair per time advance, that
//!
//! * publishes each key's current window into a float-gauge family
//!   (label `node`) so `/metrics` exposes per-node accuracy, and
//! * raises a [`DriftAlert`] when the windowed SMAPE **crosses** the
//!   configured threshold from below (edge-triggered, so a persistently
//!   bad series alerts once per excursion, not once per step).
//!
//! The tracker is engine-agnostic: keys are plain `u64`s and the gauge
//! family is configured by the caller, so `fdc-f2db` wires it to its
//! catalog nodes without this crate knowing about catalogs.

use crate::metrics::registry;
use std::collections::HashMap;
use std::sync::Mutex;

/// Configuration of a [`RollingAccuracy`] tracker.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyOptions {
    /// Window length in observations (per key).
    pub window: usize,
    /// Windowed-SMAPE threshold in `[0, 1]` above which a key is
    /// considered drifting.
    pub smape_threshold: f64,
    /// Minimum observations in the window before drift can fire (a
    /// single bad step in a near-empty window is noise, not drift).
    pub min_samples: usize,
}

impl Default for AccuracyOptions {
    fn default() -> Self {
        AccuracyOptions {
            window: 12,
            smape_threshold: 0.5,
            min_samples: 4,
        }
    }
}

/// A drift signal returned by [`RollingAccuracy::record`] when a key's
/// windowed SMAPE crosses its threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftAlert {
    /// The tracked key (catalog node id).
    pub key: u64,
    /// Windowed SMAPE at the moment of crossing.
    pub smape: f64,
    /// Windowed MAE at the moment of crossing.
    pub mae: f64,
    /// The configured threshold that was crossed.
    pub threshold: f64,
}

/// Per-key state: a ring of the last `window` error terms.
#[derive(Debug)]
struct KeyWindow {
    /// Per-step symmetric errors `|a−p| / |a+p|` (the SMAPE terms).
    smape_terms: Vec<f64>,
    /// Per-step absolute errors `|a−p|`.
    abs_errors: Vec<f64>,
    /// Next write position in the rings.
    next: usize,
    /// Observations absorbed so far (saturates at the window length).
    filled: usize,
    /// Whether the key was above threshold after the last record —
    /// drift fires only on the false→true edge.
    above: bool,
}

impl KeyWindow {
    fn new(window: usize) -> Self {
        KeyWindow {
            smape_terms: vec![0.0; window],
            abs_errors: vec![0.0; window],
            next: 0,
            filled: 0,
            above: false,
        }
    }

    fn push(&mut self, smape_term: f64, abs_err: f64) {
        self.smape_terms[self.next] = smape_term;
        self.abs_errors[self.next] = abs_err;
        self.next = (self.next + 1) % self.smape_terms.len();
        self.filled = (self.filled + 1).min(self.smape_terms.len());
    }

    fn smape(&self) -> f64 {
        if self.filled == 0 {
            return 0.0;
        }
        self.smape_terms.iter().take(self.filled).sum::<f64>() / self.filled as f64
    }

    fn mae(&self) -> f64 {
        if self.filled == 0 {
            return 0.0;
        }
        self.abs_errors.iter().take(self.filled).sum::<f64>() / self.filled as f64
    }
}

/// Windowed per-key SMAPE/MAE tracker with edge-triggered drift
/// detection. All methods take `&self`; internally one mutex guards the
/// key map (records happen once per key per time advance — far off any
/// hot path).
#[derive(Debug)]
pub struct RollingAccuracy {
    opts: AccuracyOptions,
    /// Float-gauge families to publish into: `(smape_family,
    /// mae_family)`, label `node=<key>`. `None` keeps the tracker
    /// registry-silent (tests, ad-hoc use).
    gauges: Option<(String, String)>,
    windows: Mutex<HashMap<u64, KeyWindow>>,
}

impl RollingAccuracy {
    /// Creates a tracker with the given options, not publishing gauges.
    pub fn new(opts: AccuracyOptions) -> Self {
        RollingAccuracy {
            opts: AccuracyOptions {
                window: opts.window.max(1),
                ..opts
            },
            gauges: None,
            windows: Mutex::new(HashMap::new()),
        }
    }

    /// Publishes each key's windowed SMAPE and MAE into the given
    /// float-gauge families (label `node`), e.g.
    /// `f2db.node.smape{node="17"}`.
    pub fn with_gauge_families(mut self, smape_family: &str, mae_family: &str) -> Self {
        self.gauges = Some((smape_family.to_string(), mae_family.to_string()));
        self
    }

    /// The configured options.
    pub fn options(&self) -> &AccuracyOptions {
        &self.opts
    }

    /// Records one `(actual, predicted)` pair for `key`. Returns a
    /// [`DriftAlert`] when this record moved the key's windowed SMAPE
    /// across the threshold from below (and the window holds at least
    /// `min_samples` observations).
    pub fn record(&self, key: u64, actual: f64, predicted: f64) -> Option<DriftAlert> {
        let denom = (actual + predicted).abs();
        let smape_term = if denom < f64::EPSILON {
            0.0
        } else {
            (actual - predicted).abs() / denom
        };
        let abs_err = (actual - predicted).abs();

        let (smape, mae, fired) = {
            let mut windows = self.windows.lock().unwrap();
            let w = windows
                .entry(key)
                .or_insert_with(|| KeyWindow::new(self.opts.window));
            w.push(smape_term, abs_err);
            let smape = w.smape();
            let mae = w.mae();
            let above =
                w.filled >= self.opts.min_samples.max(1) && smape > self.opts.smape_threshold;
            let fired = above && !w.above;
            w.above = above;
            (smape, mae, fired)
        };

        if let Some((smape_family, mae_family)) = &self.gauges {
            let node = key.to_string();
            registry()
                .float_gauge_with(smape_family, &[("node", &node)])
                .set(smape);
            registry()
                .float_gauge_with(mae_family, &[("node", &node)])
                .set(mae);
        }

        fired.then_some(DriftAlert {
            key,
            smape,
            mae,
            threshold: self.opts.smape_threshold,
        })
    }

    /// Windowed SMAPE of `key` (`None` until its first record).
    pub fn smape(&self, key: u64) -> Option<f64> {
        self.windows.lock().unwrap().get(&key).map(|w| w.smape())
    }

    /// Windowed MAE of `key` (`None` until its first record).
    pub fn mae(&self, key: u64) -> Option<f64> {
        self.windows.lock().unwrap().get(&key).map(|w| w.mae())
    }

    /// Number of keys tracked so far.
    pub fn tracked_keys(&self) -> usize {
        self.windows.lock().unwrap().len()
    }

    /// Clears `key`'s window (call after the model was re-estimated, so
    /// the fresh parameters are not judged by the stale window — and so
    /// the next genuine excursion re-alerts).
    pub fn reset_key(&self, key: u64) {
        let mut windows = self.windows.lock().unwrap();
        if let Some(w) = windows.get_mut(&key) {
            *w = KeyWindow::new(self.opts.window);
        }
        drop(windows);
        if let Some((smape_family, mae_family)) = &self.gauges {
            let node = key.to_string();
            registry()
                .float_gauge_with(smape_family, &[("node", &node)])
                .set(0.0);
            registry()
                .float_gauge_with(mae_family, &[("node", &node)])
                .set(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(window: usize, threshold: f64, min_samples: usize) -> AccuracyOptions {
        AccuracyOptions {
            window,
            smape_threshold: threshold,
            min_samples,
        }
    }

    #[test]
    fn window_math_matches_hand_computation() {
        let acc = RollingAccuracy::new(opts(3, 0.9, 1));
        // Perfect forecast: SMAPE term 0, MAE 0.
        acc.record(1, 10.0, 10.0);
        assert_eq!(acc.smape(1), Some(0.0));
        assert_eq!(acc.mae(1), Some(0.0));
        // One fully-wrong step: |10-0|/|10+0| = 1.
        acc.record(1, 10.0, 0.0);
        assert!((acc.smape(1).unwrap() - 0.5).abs() < 1e-12);
        assert!((acc.mae(1).unwrap() - 5.0).abs() < 1e-12);
        // Window slides: after 3 more perfect steps the bad one is gone.
        for _ in 0..3 {
            acc.record(1, 10.0, 10.0);
        }
        assert_eq!(acc.smape(1), Some(0.0));
    }

    #[test]
    fn drift_fires_on_threshold_crossing_only() {
        let acc = RollingAccuracy::new(opts(4, 0.4, 2));
        assert!(acc.record(7, 10.0, 10.0).is_none());
        // First bad step: window SMAPE 0.5 but only fires once the edge
        // is crossed with >= min_samples.
        let alert = acc.record(7, 10.0, 0.0).expect("crossing fires");
        assert_eq!(alert.key, 7);
        assert!(alert.smape > 0.4);
        assert_eq!(alert.threshold, 0.4);
        // Still above: no re-fire.
        assert!(acc.record(7, 10.0, 0.0).is_none());
        // Recover below, then cross again: fires again.
        for _ in 0..4 {
            assert!(acc.record(7, 10.0, 10.0).is_none());
        }
        for _ in 0..4 {
            if acc.record(7, 10.0, 0.0).is_some() {
                return;
            }
        }
        panic!("second excursion must re-alert");
    }

    #[test]
    fn min_samples_suppresses_early_noise() {
        let acc = RollingAccuracy::new(opts(8, 0.2, 4));
        // Three terrible steps — below min_samples, no alert.
        for _ in 0..3 {
            assert!(acc.record(1, 100.0, 0.0).is_none());
        }
        // The fourth reaches min_samples and fires.
        assert!(acc.record(1, 100.0, 0.0).is_some());
    }

    #[test]
    fn reset_key_clears_window_and_rearms() {
        let acc = RollingAccuracy::new(opts(4, 0.4, 1));
        assert!(acc.record(3, 10.0, 0.0).is_some());
        acc.reset_key(3);
        assert_eq!(acc.smape(3), Some(0.0));
        // Re-armed: the next excursion alerts again.
        assert!(acc.record(3, 10.0, 0.0).is_some());
    }

    #[test]
    fn gauges_publish_per_key_series() {
        let acc = RollingAccuracy::new(opts(4, 0.9, 1))
            .with_gauge_families("acc_test.smape", "acc_test.mae");
        acc.record(42, 10.0, 0.0);
        let snap = crate::snapshot();
        let smape = snap
            .float_gauges
            .iter()
            .find(|(n, _)| n == "acc_test.smape{node=\"42\"}")
            .expect("gauge series exists");
        assert!((smape.1 - 1.0).abs() < 1e-12);
        let mae = snap
            .float_gauges
            .iter()
            .find(|(n, _)| n == "acc_test.mae{node=\"42\"}")
            .expect("mae series exists");
        assert!((mae.1 - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_denominator_is_not_an_error() {
        let acc = RollingAccuracy::new(opts(2, 0.1, 1));
        assert!(acc.record(1, 0.0, 0.0).is_none());
        assert_eq!(acc.smape(1), Some(0.0));
    }
}
