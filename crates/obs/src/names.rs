//! Canonical metric and event names.
//!
//! Every metric the workspace records is named here once; `f2db`,
//! `core` and `bench` reference these constants instead of string
//! literals, so a typo can no longer silently create a parallel series.
//! The DESIGN.md "Metric catalog" section documents each name's meaning
//! and labels; keep the two in sync.
//!
//! Naming convention: dotted paths, `<subsystem>.<noun>[.<unit>]`; a
//! name ending in `.ns` holds nanoseconds (humanized by `Snapshot`'s
//! `Display` and converted by the Prometheus encoder's name mangling to
//! `_ns`).

// ---- F²DB query path -------------------------------------------------

/// Counter: forecast queries answered (plain and `EXPLAIN ANALYZE`).
pub const F2DB_QUERIES: &str = "f2db.queries";
/// Counter: `EXPLAIN ANALYZE` executions (subset of [`F2DB_QUERIES`]).
pub const F2DB_EXPLAIN_ANALYZE: &str = "f2db.explain_analyze";
/// Histogram: end-to-end forecast query latency in nanoseconds.
pub const F2DB_QUERY_NS: &str = "f2db.query.ns";
/// Counter: query rows answered approximately from the sampling plane.
pub const F2DB_APPROX_ROWS: &str = "f2db.approx.rows";
/// Counter: source models served from the catalog without a re-fit.
pub const F2DB_MODELS_CACHED: &str = "f2db.models.cached";
/// Counter: lazy parameter re-estimations (one per invalidation epoch).
pub const F2DB_MODELS_REESTIMATED: &str = "f2db.models.reestimated";

// ---- F²DB write path -------------------------------------------------

/// Counter: insert statements processed.
pub const F2DB_INSERTS: &str = "f2db.inserts";
/// Counter: completed batched time advances.
pub const F2DB_TIME_ADVANCES: &str = "f2db.time_advances";
/// Counter: incremental model updates skipped because a racing lazy
/// re-fit already absorbed the newest observation.
pub const F2DB_ADVANCE_SKIPPED_UPDATES: &str = "f2db.advance.skipped_updates";
/// Counter: micro-batched insert commits (`F2db::insert_batch` calls).
pub const F2DB_INSERT_BATCHES: &str = "f2db.insert.batches";
/// Histogram: rows per micro-batched insert commit.
pub const F2DB_INSERT_BATCH_ROWS: &str = "f2db.insert.batch_rows";

// ---- F²DB catalog ----------------------------------------------------

/// Gauge: number of catalog shards.
pub const F2DB_CATALOG_SHARDS: &str = "f2db.catalog.shards";
/// Counter: bytes written by catalog persistence.
pub const F2DB_CATALOG_ENCODED_BYTES: &str = "f2db.catalog.encoded_bytes";
/// Counter: bytes read by catalog restoration.
pub const F2DB_CATALOG_DECODED_BYTES: &str = "f2db.catalog.decoded_bytes";
/// Counter: contended catalog shard read-lock acquisitions.
pub const F2DB_SHARD_READ_CONTENTION: &str = "f2db.shard.read_contention";
/// Counter: contended catalog shard write-lock acquisitions.
pub const F2DB_SHARD_WRITE_CONTENTION: &str = "f2db.shard.write_contention";
/// Gauge: single-flight re-estimations currently running.
pub const F2DB_REESTIMATE_IN_FLIGHT: &str = "f2db.reestimate.in_flight";

// ---- F²DB accuracy / drift monitoring --------------------------------

/// Float gauge family (label `node`): windowed SMAPE of the stored
/// model's one-step forecasts at a catalog node.
pub const F2DB_NODE_SMAPE: &str = "f2db.node.smape";
/// Float gauge family (label `node`): windowed mean absolute error of
/// the stored model's one-step forecasts at a catalog node.
pub const F2DB_NODE_MAE: &str = "f2db.node.mae";
/// Float gauge family (label `node`): sample standard deviation of the
/// recent-window forecast errors at a catalog node (the spread behind
/// variance-aware drift detection).
pub const F2DB_NODE_ERR_STDDEV: &str = "f2db.node.err_stddev";
/// Counter: drift alerts raised (windowed SMAPE crossed its threshold,
/// or the recent mean error exceeded the baseline by `k`·stddev).
pub const F2DB_DRIFT_ALERTS: &str = "f2db.drift.alerts";

// ---- Advisor ---------------------------------------------------------

/// Counter: advisor iterations run.
pub const ADVISOR_ITERATIONS: &str = "advisor.iterations";
/// Counter: candidate nodes proposed by the selection phase.
pub const ADVISOR_CANDIDATES: &str = "advisor.candidates";
/// Counter: candidate models actually built (post pre-filter).
pub const ADVISOR_MODELS_BUILT: &str = "advisor.models_built";
/// Counter: candidate models accepted into the configuration.
pub const ADVISOR_ACCEPTED: &str = "advisor.accepted";
/// Counter: candidate models rejected by the acceptance criterion.
pub const ADVISOR_REJECTED: &str = "advisor.rejected";
/// Counter: models deleted by the deletion phase.
pub const ADVISOR_DELETED: &str = "advisor.deleted";
/// Histogram: per-iteration candidate selection time.
pub const ADVISOR_SELECTION_NS: &str = "advisor.selection.ns";
/// Histogram: per-iteration evaluation time.
pub const ADVISOR_EVALUATION_NS: &str = "advisor.evaluation.ns";
/// Gauge: models in the final configuration.
pub const ADVISOR_MODEL_COUNT: &str = "advisor.model_count";
/// Counter: indicator-store cache hits during selection.
pub const ADVISOR_INDICATOR_CACHE_HIT: &str = "advisor.indicator.cache_hit";
/// Counter: indicator-store cache misses during selection.
pub const ADVISOR_INDICATOR_CACHE_MISS: &str = "advisor.indicator.cache_miss";

// ---- Observability plane itself --------------------------------------

/// Counter: labeled series dropped because a family hit its cardinality
/// bound (the sample lands in the family's `overflow="true"` series).
pub const OBS_SERIES_DROPPED: &str = "obs.series.dropped";
/// Counter family (label `family`): cardinality overflows attributed to
/// the family that overflowed — unlike [`OBS_SERIES_DROPPED`], this
/// keeps the overflowed family's name.
pub const OBS_LABELS_OVERFLOW: &str = "obs.labels.overflow";
/// Counter: HTTP requests served by the exporter.
pub const OBS_HTTP_REQUESTS: &str = "obs.http.requests";
/// Counter: events pushed into the journal.
pub const OBS_JOURNAL_EVENTS: &str = "obs.journal.events";
/// Counter: t-digest shard merges performed by registry snapshots (each
/// histogram folds its thread-striped digest shards per snapshot).
pub const OBS_SKETCH_MERGES: &str = "obs.sketch.merges";
/// Counter: per-key accuracy-summary merges performed at read time
/// (lock-free partial aggregation across trackers/shards).
pub const OBS_SKETCH_ACCURACY_MERGES: &str = "obs.sketch.accuracy_merges";

// ---- Forecast-serving subsystem (`fdc-serve`) ------------------------

/// Counter family (labels `route`, `status`): HTTP requests answered by
/// the forecast server, by route and status code.
pub const SERVE_REQUESTS: &str = "serve.http.requests";
/// Histogram family (label `route`): end-to-end request latency from
/// worker pickup to response written, in nanoseconds.
pub const SERVE_REQUEST_NS: &str = "serve.request.ns";
/// Gauge: connections currently queued for a worker.
pub const SERVE_QUEUE_DEPTH: &str = "serve.queue.depth";
/// Counter family (label `reason`): requests rejected by admission
/// control — `queue_full` (429) or `deadline` (503).
pub const SERVE_REJECTED: &str = "serve.rejected";
/// Counter: micro-batch flushes performed by the insert coalescer.
pub const SERVE_BATCH_FLUSHES: &str = "serve.batch.flushes";
/// Histogram: rows per insert-coalescer flush.
pub const SERVE_BATCH_FLUSH_ROWS: &str = "serve.batch.flush_rows";
/// Counter: requests captured into the slow-query journal (latency past
/// `ServeOptions::slow_threshold`, with `EXPLAIN ANALYZE` / wait
/// breakdown attached).
pub const SERVE_SLOW_CAPTURED: &str = "serve.slow.captured";

// ---- Routing tier (`fdc-router`) -------------------------------------

/// Counter family (labels `route`, `status`): HTTP requests answered by
/// the routing tier, by route and status code.
pub const ROUTER_REQUESTS: &str = "router.http.requests";
/// Histogram family (label `route`): end-to-end router request latency
/// (fan-out included) in nanoseconds.
pub const ROUTER_REQUEST_NS: &str = "router.request.ns";
/// Histogram: shards contacted per scatter-gather request (the fan-out
/// width — 1 for single-shard routes, N for fleet-wide folds).
pub const ROUTER_FANOUT_SIZE: &str = "router.fanout.size";
/// Counter family (label `shard`): failed shard calls (connect errors,
/// timeouts, 5xx) attributed to the shard that failed.
pub const ROUTER_SHARD_ERRORS: &str = "router.shard.errors";
/// Counter family (label `shard`): read requests served by a shard's
/// replica because its primary was unreachable.
pub const ROUTER_REPLICA_READS: &str = "router.replica.reads";
/// Counter: fleet-wide sketch folds performed by the router (one per
/// `/stats` or `/metrics` aggregation over shipped codec bytes).
pub const ROUTER_SKETCH_FOLDS: &str = "router.sketch.folds";

// ---- Write-ahead log (`fdc-wal`) -------------------------------------

/// Counter: records appended to the write-ahead log.
pub const WAL_APPENDS: &str = "wal.appends";
/// Counter: bytes appended to the write-ahead log (frames, including
/// headers).
pub const WAL_APPENDED_BYTES: &str = "wal.appended_bytes";
/// Counter: group-commit fsyncs performed by the dedicated sync thread.
pub const WAL_FSYNCS: &str = "wal.fsyncs";
/// Histogram: appenders acknowledged per group-commit fsync (the group
/// size — `> 1` means concurrent appenders shared one fsync).
pub const WAL_GROUP_SIZE: &str = "wal.group_size";
/// Counter: records replayed by recovery (`Wal::open`).
pub const WAL_REPLAYED_RECORDS: &str = "wal.replayed_records";
/// Histogram: wall-clock time of a `Wal::open` replay, in nanoseconds.
pub const WAL_RECOVERY_NS: &str = "wal.recovery.ns";
/// Gauge: live segment files in the log directory.
pub const WAL_SEGMENTS: &str = "wal.segments";
/// Gauge: sequence number of the most recently appended record.
pub const WAL_LAST_SEQ: &str = "wal.last_seq";
/// Gauge: sequence number covered by the most recent checkpoint.
pub const WAL_CHECKPOINT_SEQ: &str = "wal.checkpoint_seq";
/// Counter: fully-checkpointed segment files deleted by truncation.
pub const WAL_SEGMENTS_TRUNCATED: &str = "wal.segments.truncated";
/// Counter: torn-tail bytes discarded by recovery (a partial record a
/// crash left at the end of the log).
pub const WAL_TORN_TAIL_BYTES: &str = "wal.torn_tail_bytes";
/// Gauge: sequence number covered by the most recent completed fsync
/// (the shipping watermark — followers never see frames past it).
pub const WAL_DURABLE_SEQ: &str = "wal.durable_seq";

// ---- WAL shipping / replication --------------------------------------

/// Counter: ship chunks served to followers by the primary.
pub const WAL_SHIP_CHUNKS: &str = "wal.ship.chunks";
/// Counter: frames shipped to followers.
pub const WAL_SHIP_FRAMES: &str = "wal.ship.frames";
/// Counter: frame bytes shipped to followers (headers included).
pub const WAL_SHIP_BYTES: &str = "wal.ship.bytes";
/// Gauge: follower-side replication lag in sequence numbers (the
/// primary's durable watermark minus the follower's applied watermark).
pub const WAL_REPLICATION_LAG_SEQ: &str = "wal.replication.lag_seq";
/// Gauge: follower-side applied watermark (highest sequence durably
/// appended to the follower's own log).
pub const WAL_REPLICATION_APPLIED_SEQ: &str = "wal.replication.applied_seq";
/// Counter: fetch-and-apply rounds the follower failed (network error,
/// truncated chunk, watermark gap); the fetch loop retries after each.
pub const WAL_REPLICATION_ERRORS: &str = "wal.replication.errors";

// ---- Bench harness ---------------------------------------------------

/// Gauge family for the concurrent-QPS bench (labels `phase`, `engine`,
/// `threads`): measured queries per second.
pub const BENCH_CONCURRENT_QPS: &str = "bench.concurrent_qps.qps";
/// Gauge family for the concurrent-QPS bench (labels `phase`,
/// `threads`): sharded-vs-single-lock speedup × 100.
pub const BENCH_CONCURRENT_SPEEDUP_X100: &str = "bench.concurrent_qps.speedup_x100";
/// Gauge family for the `server_qps` load generator (label `stat`):
/// closed-loop throughput and latency percentiles against `fdc-serve`.
pub const BENCH_SERVER_QPS: &str = "bench.server_qps";
/// Gauge family for the `router_qps` load generator (label `stat`):
/// closed-loop throughput and latency percentiles against `fdc-router`.
pub const BENCH_ROUTER_QPS: &str = "bench.router_qps";

/// Histogram name for a micro-benchmark's per-iteration samples.
pub fn bench_ns(name: &str) -> String {
    format!("bench.{name}.ns")
}

/// Counter name for an optimizer's run count.
pub fn optimize_runs(algo: &str) -> String {
    format!("optimize.{algo}.runs")
}

/// Counter name for an optimizer's objective-evaluation count.
pub fn optimize_evals(algo: &str) -> String {
    format!("optimize.{algo}.evals")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_dotted_and_unique() {
        let all = [
            F2DB_QUERIES,
            F2DB_EXPLAIN_ANALYZE,
            F2DB_QUERY_NS,
            F2DB_MODELS_CACHED,
            F2DB_MODELS_REESTIMATED,
            F2DB_INSERTS,
            F2DB_TIME_ADVANCES,
            F2DB_ADVANCE_SKIPPED_UPDATES,
            F2DB_INSERT_BATCHES,
            F2DB_INSERT_BATCH_ROWS,
            F2DB_CATALOG_SHARDS,
            F2DB_CATALOG_ENCODED_BYTES,
            F2DB_CATALOG_DECODED_BYTES,
            F2DB_SHARD_READ_CONTENTION,
            F2DB_SHARD_WRITE_CONTENTION,
            F2DB_REESTIMATE_IN_FLIGHT,
            F2DB_NODE_SMAPE,
            F2DB_NODE_MAE,
            F2DB_NODE_ERR_STDDEV,
            F2DB_DRIFT_ALERTS,
            ADVISOR_ITERATIONS,
            ADVISOR_CANDIDATES,
            ADVISOR_MODELS_BUILT,
            ADVISOR_ACCEPTED,
            ADVISOR_REJECTED,
            ADVISOR_DELETED,
            ADVISOR_SELECTION_NS,
            ADVISOR_EVALUATION_NS,
            ADVISOR_MODEL_COUNT,
            ADVISOR_INDICATOR_CACHE_HIT,
            ADVISOR_INDICATOR_CACHE_MISS,
            OBS_SERIES_DROPPED,
            OBS_LABELS_OVERFLOW,
            OBS_HTTP_REQUESTS,
            OBS_JOURNAL_EVENTS,
            OBS_SKETCH_MERGES,
            OBS_SKETCH_ACCURACY_MERGES,
            SERVE_REQUESTS,
            SERVE_REQUEST_NS,
            SERVE_QUEUE_DEPTH,
            SERVE_REJECTED,
            SERVE_BATCH_FLUSHES,
            SERVE_BATCH_FLUSH_ROWS,
            SERVE_SLOW_CAPTURED,
            ROUTER_REQUESTS,
            ROUTER_REQUEST_NS,
            ROUTER_FANOUT_SIZE,
            ROUTER_SHARD_ERRORS,
            ROUTER_REPLICA_READS,
            ROUTER_SKETCH_FOLDS,
            WAL_APPENDS,
            WAL_APPENDED_BYTES,
            WAL_FSYNCS,
            WAL_GROUP_SIZE,
            WAL_REPLAYED_RECORDS,
            WAL_RECOVERY_NS,
            WAL_SEGMENTS,
            WAL_LAST_SEQ,
            WAL_CHECKPOINT_SEQ,
            WAL_SEGMENTS_TRUNCATED,
            WAL_TORN_TAIL_BYTES,
            WAL_DURABLE_SEQ,
            WAL_SHIP_CHUNKS,
            WAL_SHIP_FRAMES,
            WAL_SHIP_BYTES,
            WAL_REPLICATION_LAG_SEQ,
            WAL_REPLICATION_APPLIED_SEQ,
            WAL_REPLICATION_ERRORS,
            BENCH_CONCURRENT_QPS,
            BENCH_CONCURRENT_SPEEDUP_X100,
            BENCH_SERVER_QPS,
            BENCH_ROUTER_QPS,
        ];
        let mut seen = std::collections::BTreeSet::new();
        for n in all {
            assert!(!n.is_empty() && !n.contains(['{', '}', '"', ' ']), "{n}");
            assert!(seen.insert(n), "duplicate metric name {n}");
        }
        assert_eq!(bench_ns("models"), "bench.models.ns");
    }
}
