//! Distributed trace context — the W3C-`traceparent`-style identity
//! that ties spans from different processes into one timeline.
//!
//! A [`TraceContext`] is a 128-bit trace id, a 64-bit span id and a
//! sampling flag. `fdc-serve` mints one at request ingress (or adopts
//! the caller's from a `traceparent` header), activates it on the
//! worker thread, and every [`crate::span!`] opened while it is active
//! mints a child span id under the same trace id. Outbound hops (the
//! replica's `/wal/fetch` poll, promotion's tail replay, a future
//! router fan-out) re-serialize the active context as a `traceparent`
//! header, so the downstream process's spans join the same trace and a
//! textual merge of the per-process Chrome-trace exports yields one
//! Perfetto timeline.
//!
//! Wire format (the W3C trace-context `traceparent` header, version 00):
//!
//! ```text
//! 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//! ^^ ^^^^^^^^ 32 hex: trace id ^^^^^^ ^16 hex: span id^ ^^ flags
//! ```
//!
//! Flags bit 0 is the sampled flag. Malformed headers are *ignored* —
//! the parser returns `None` and the server mints a fresh root — never
//! an error: a bad caller must not be able to break ingress.
//!
//! Ids come from per-thread SplitMix64 streams seeded once from wall
//! clock ⊕ pid ⊕ a process counter: unique enough across two processes
//! on one machine without any shared state, `std`-only, and cheap
//! enough to mint on every request.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// The `traceparent` header name (always sent/matched lowercase).
pub const TRACEPARENT_HEADER: &str = "traceparent";

/// A propagated trace identity: which trace this work belongs to, which
/// span is its immediate parent, and whether the trace is sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit trace id, shared by every span in the trace.
    pub trace_id: u128,
    /// 64-bit id of the current (parent) span.
    pub span_id: u64,
    /// Whether spans under this context should be recorded/exported.
    pub sampled: bool,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

thread_local! {
    /// Per-thread SplitMix64 state; 0 = not yet seeded.
    static ID_STATE: Cell<u64> = const { Cell::new(0) };
}

/// Mints a fresh 64-bit id (never zero). Each thread seeds a SplitMix64
/// stream once — wall clock ⊕ pid ⊕ a process-wide counter — and steps
/// it per call, so minting costs a few arithmetic ops instead of a
/// clock read per id (ingress mints a root context on *every* request).
/// Streams stay collision-resistant across the two processes of a
/// primary/follower pair without shared state.
pub fn mint_id() -> u64 {
    ID_STATE.with(|slot| {
        let mut state = slot.get();
        if state == 0 {
            static THREADS: AtomicU64 = AtomicU64::new(0);
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            state = nanos
                ^ (u64::from(std::process::id())).rotate_left(32)
                ^ THREADS.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
            if state == 0 {
                state = 0x5EED_F2DB;
            }
        }
        let id = loop {
            let id = splitmix64(&mut state);
            if id != 0 {
                break id;
            }
        };
        slot.set(state);
        id
    })
}

/// Mints a fresh 128-bit trace id (never zero).
pub fn mint_trace_id() -> u128 {
    (u128::from(mint_id()) << 64) | u128::from(mint_id())
}

impl TraceContext {
    /// Mints a new root context (fresh trace id and span id).
    pub fn root(sampled: bool) -> TraceContext {
        TraceContext {
            trace_id: mint_trace_id(),
            span_id: mint_id(),
            sampled,
        }
    }

    /// A child context: same trace id and sampling, fresh span id.
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: mint_id(),
            sampled: self.sampled,
        }
    }

    /// Serializes as a version-00 `traceparent` header value.
    pub fn traceparent(&self) -> String {
        format!(
            "00-{:032x}-{:016x}-{:02x}",
            self.trace_id,
            self.span_id,
            u8::from(self.sampled)
        )
    }

    /// Parses a `traceparent` header value. Returns `None` for anything
    /// malformed (wrong shape, bad hex, all-zero ids, unknown version) —
    /// callers fall back to minting a fresh root.
    pub fn parse_traceparent(value: &str) -> Option<TraceContext> {
        let value = value.trim();
        let mut parts = value.split('-');
        let version = parts.next()?;
        let trace_hex = parts.next()?;
        let span_hex = parts.next()?;
        let flags_hex = parts.next()?;
        if parts.next().is_some() {
            return None;
        }
        if version.len() != 2
            || trace_hex.len() != 32
            || span_hex.len() != 16
            || flags_hex.len() != 2
        {
            return None;
        }
        // Version ff is explicitly invalid in the spec; we only speak 00
        // but accept forward versions with the same prefix layout.
        u8::from_str_radix(version, 16)
            .ok()
            .filter(|v| *v != 0xff)?;
        let trace_id = u128::from_str_radix(trace_hex, 16).ok()?;
        let span_id = u64::from_str_radix(span_hex, 16).ok()?;
        let flags = u8::from_str_radix(flags_hex, 16).ok()?;
        if trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(TraceContext {
            trace_id,
            span_id,
            sampled: flags & 1 == 1,
        })
    }
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The trace context active on this thread, if any.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(|c| c.get())
}

/// The active context's `(trace_id, span_id)` — only when sampled.
/// The shape embedded into WAL records and journal events.
pub fn current_sampled_pair() -> Option<(u128, u64)> {
    current()
        .filter(|c| c.sampled)
        .map(|c| (c.trace_id, c.span_id))
}

/// Replaces this thread's active context (used by span guards; prefer
/// [`activate`] elsewhere). Returns the previous context.
pub fn swap_current(ctx: Option<TraceContext>) -> Option<TraceContext> {
    CURRENT.with(|c| c.replace(ctx))
}

/// Activates `ctx` on this thread for the guard's lifetime; the
/// previous context (if any) is restored on drop.
pub fn activate(ctx: TraceContext) -> ContextGuard {
    ContextGuard {
        prev: swap_current(Some(ctx)),
    }
}

/// RAII guard restoring the previously active context on drop.
#[derive(Debug)]
pub struct ContextGuard {
    prev: Option<TraceContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        self.prev = swap_current(self.prev.take());
    }
}

/// Deterministic head sampling: returns true for roughly `rate` of
/// calls (process-wide counter stride, not random — reproducible under
/// test and free of rand dependencies). `rate >= 1.0` always samples,
/// `rate <= 0.0` never does.
pub fn should_sample(rate: f64) -> bool {
    if rate >= 1.0 {
        return true;
    }
    if rate <= 0.0 {
        return false;
    }
    static TICK: AtomicU64 = AtomicU64::new(0);
    let n = TICK.fetch_add(1, Ordering::Relaxed);
    // Sample when the fractional accumulator crosses 1: floor((n+1)*r)
    // > floor(n*r) picks ⌈rate·N⌉ of every N calls, evenly spread.
    let scaled = |k: u64| ((k as f64) * rate) as u64;
    scaled(n + 1) > scaled(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traceparent_round_trips() {
        let ctx = TraceContext {
            trace_id: 0x4bf9_2f35_77b3_4da6_a3ce_929d_0e0e_4736,
            span_id: 0x00f0_67aa_0ba9_02b7,
            sampled: true,
        };
        let header = ctx.traceparent();
        assert_eq!(
            header,
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
        );
        assert_eq!(TraceContext::parse_traceparent(&header), Some(ctx));
        let unsampled = TraceContext {
            sampled: false,
            ..ctx
        };
        assert_eq!(
            TraceContext::parse_traceparent(&unsampled.traceparent()),
            Some(unsampled)
        );
    }

    #[test]
    fn malformed_traceparent_is_ignored() {
        for bad in [
            "",
            "garbage",
            "00-short-00f067aa0ba902b7-01",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-short-01",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
            "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
            "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
            "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
            "00-4bf92f3577b34da6a3ce929dXe0e4736-00f067aa0ba902b7-01",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0x",
        ] {
            assert_eq!(TraceContext::parse_traceparent(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn minted_ids_are_nonzero_and_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..256 {
            let id = mint_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id:#x}");
        }
        assert_ne!(mint_trace_id(), 0);
    }

    #[test]
    fn child_keeps_trace_id_and_sampling() {
        let root = TraceContext::root(true);
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_ne!(child.span_id, root.span_id);
        assert!(child.sampled);
    }

    #[test]
    fn activation_nests_and_restores() {
        assert_eq!(current(), None);
        let a = TraceContext::root(true);
        let b = a.child();
        {
            let _ga = activate(a);
            assert_eq!(current(), Some(a));
            {
                let _gb = activate(b);
                assert_eq!(current(), Some(b));
            }
            assert_eq!(current(), Some(a));
            assert_eq!(current_sampled_pair(), Some((a.trace_id, a.span_id)));
        }
        assert_eq!(current(), None);
        assert_eq!(current_sampled_pair(), None);
    }

    #[test]
    fn unsampled_context_yields_no_pair() {
        let _g = activate(TraceContext::root(false));
        assert_eq!(current_sampled_pair(), None);
    }

    #[test]
    fn should_sample_extremes_and_rate() {
        assert!(should_sample(1.0));
        assert!(should_sample(2.0));
        assert!(!should_sample(0.0));
        assert!(!should_sample(-1.0));
        let hits = (0..1000).filter(|_| should_sample(0.25)).count();
        // Other tests share the counter, so allow slack around 250.
        assert!((200..=300).contains(&hits), "hits={hits}");
    }
}
