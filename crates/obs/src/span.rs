//! Hierarchical tracing spans.
//!
//! A span is an RAII guard around a region of work. Spans nest per
//! thread: entering `"select"` while `"advisor.step"` is open produces
//! the dotted-slash path `advisor.step/select`. Closing a span
//!
//! * records its wall-clock duration into the global histogram
//!   `span.<path>.ns`, and
//! * notifies the global [`SpanSubscriber`], if one is installed.
//!
//! [`FlameCollector`] is the built-in subscriber: it aggregates
//! count/total/self time per path and renders an indented flame-style
//! summary. Span collection is cheap (two `Instant::now()` calls and
//! one histogram record per span) and can be disabled globally with
//! [`set_spans_enabled`] — disabled spans cost one relaxed atomic load.

use crate::metrics::registry;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

static SPANS_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables span collection process-wide.
pub fn set_spans_enabled(enabled: bool) {
    SPANS_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether span collection is currently enabled.
pub fn spans_enabled() -> bool {
    SPANS_ENABLED.load(Ordering::Relaxed)
}

/// Observer of span closures. Implementations must be cheap — they run
/// inline in the instrumented thread on every span close.
pub trait SpanSubscriber: Send + Sync {
    /// Called when a span closes. `path` is the full slash-joined path,
    /// `depth` its nesting depth (0 = root span), `elapsed` the
    /// wall-clock time between enter and close.
    fn on_close(&self, path: &str, depth: usize, elapsed: Duration);
}

fn subscriber_slot() -> &'static RwLock<Option<Arc<dyn SpanSubscriber>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn SpanSubscriber>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Installs the global span subscriber, replacing any previous one.
pub fn set_subscriber(sub: Arc<dyn SpanSubscriber>) {
    *subscriber_slot().write().unwrap() = Some(sub);
}

/// Removes and returns the global span subscriber.
pub fn take_subscriber() -> Option<Arc<dyn SpanSubscriber>> {
    subscriber_slot().write().unwrap().take()
}

thread_local! {
    /// Stack of full paths of the spans currently open on this thread.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for an open span; created by [`crate::span!`] or
/// [`SpanGuard::enter`]. Closing (dropping) records the elapsed time.
#[must_use = "a span guard must be bound (`let _g = span!(..)`) or it closes immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when spans were disabled at enter time.
    start: Option<Instant>,
    depth: usize,
}

impl SpanGuard {
    /// Opens a span named `name` nested under the innermost open span
    /// of the current thread.
    pub fn enter(name: &str) -> SpanGuard {
        if !spans_enabled() {
            return SpanGuard {
                start: None,
                depth: 0,
            };
        }
        let depth = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => {
                    let mut p = String::with_capacity(parent.len() + 1 + name.len());
                    p.push_str(parent);
                    p.push('/');
                    p.push_str(name);
                    p
                }
                None => name.to_string(),
            };
            stack.push(path);
            stack.len() - 1
        });
        SpanGuard {
            start: Some(Instant::now()),
            depth,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        let path = SPAN_STACK.with(|stack| stack.borrow_mut().pop());
        let Some(path) = path else { return };
        registry()
            .histogram(&format!("span.{path}.ns"))
            .record_duration(elapsed);
        if let Some(sub) = subscriber_slot().read().unwrap().as_ref() {
            sub.on_close(&path, self.depth, elapsed);
        }
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct PathStat {
    count: u64,
    total: Duration,
}

/// A [`SpanSubscriber`] that aggregates per-path statistics and renders
/// a flame-style summary: one line per path, indented by depth, with
/// call count, total time, and self time (total minus direct children).
#[derive(Debug, Default)]
pub struct FlameCollector {
    stats: Mutex<BTreeMap<String, PathStat>>,
}

impl FlameCollector {
    /// Creates a collector ready to pass to [`set_subscriber`].
    pub fn new() -> Arc<FlameCollector> {
        Arc::new(FlameCollector::default())
    }

    /// Renders the flame-style summary. Paths are sorted, so children
    /// appear beneath their parents.
    pub fn summary(&self) -> String {
        let stats = self.stats.lock().unwrap();
        if stats.is_empty() {
            return "(no spans recorded)\n".to_string();
        }
        // Self time = total − Σ direct children totals.
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<52} {:>8} {:>12} {:>12}",
            "span", "count", "total", "self"
        );
        for (path, stat) in stats.iter() {
            let child_total: Duration = stats
                .iter()
                .filter(|(p, _)| {
                    p.starts_with(path.as_str())
                        && p.len() > path.len()
                        && p.as_bytes()[path.len()] == b'/'
                        && !p[path.len() + 1..].contains('/')
                })
                .map(|(_, s)| s.total)
                .sum();
            let self_time = stat.total.saturating_sub(child_total);
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let _ = writeln!(
                out,
                "{:<52} {:>8} {:>12} {:>12}",
                format!("{}{}", "  ".repeat(depth), name),
                stat.count,
                format!("{:.1?}", stat.total),
                format!("{:.1?}", self_time),
            );
        }
        out
    }
}

impl SpanSubscriber for FlameCollector {
    fn on_close(&self, path: &str, _depth: usize, elapsed: Duration) {
        let mut stats = self.stats.lock().unwrap();
        let stat = stats.entry(path.to_string()).or_default();
        stat.count += 1;
        stat.total += elapsed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_build_slash_paths() {
        let collector = FlameCollector::new();
        {
            // Drive the subscriber interface directly so this test is
            // independent of the global subscriber slot (other tests in
            // the binary may install their own).
            collector.on_close("root_t/leaf", 1, Duration::from_millis(2));
            collector.on_close("root_t", 0, Duration::from_millis(5));
        }
        let summary = collector.summary();
        assert!(summary.contains("root_t"), "{summary}");
        assert!(summary.contains("  leaf"), "{summary}");
    }

    #[test]
    fn flame_summary_computes_self_time() {
        let c = FlameCollector::default();
        c.on_close("a/b", 1, Duration::from_millis(30));
        c.on_close("a/b/c", 2, Duration::from_millis(10));
        c.on_close("a", 0, Duration::from_millis(100));
        let s = c.summary();
        // a: total 100ms, self 100-30 = 70ms; a/b: total 30, self 20.
        assert!(s.contains("70.0ms"), "{s}");
        assert!(s.contains("20.0ms"), "{s}");
    }

    #[test]
    fn empty_collector_reports_no_spans() {
        let c = FlameCollector::default();
        assert!(c.summary().contains("no spans"));
    }
}
