//! Hierarchical tracing spans.
//!
//! A span is an RAII guard around a region of work. Spans nest per
//! thread: entering `"select"` while `"advisor.step"` is open produces
//! the dotted-slash path `advisor.step/select`. Closing a span
//!
//! * records its wall-clock duration into the global histogram
//!   `span.<path>.ns`, and
//! * notifies the global [`SpanSubscriber`], if one is installed.
//!
//! [`FlameCollector`] is the built-in subscriber: it aggregates
//! count/total/self time per path and renders an indented flame-style
//! summary. Span collection is cheap (two `Instant::now()` calls and
//! one histogram record per span) and can be disabled globally with
//! [`set_spans_enabled`] — disabled spans cost one relaxed atomic load.
//! Threads running under an **unsampled** [`TraceContext`] skip span
//! collection too (one thread-local read): the head-sampling decision
//! made at request ingress covers every span under that request, which
//! is what keeps tracing affordable at high sampling-out rates.

use crate::metrics::registry;
use crate::trace::{self, TraceContext};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

static SPANS_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables span collection process-wide.
pub fn set_spans_enabled(enabled: bool) {
    SPANS_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether span collection is currently enabled.
pub fn spans_enabled() -> bool {
    SPANS_ENABLED.load(Ordering::Relaxed)
}

/// A span's distributed-trace identity, minted at enter time when a
/// *sampled* [`TraceContext`] is active on the thread. Spans opened
/// outside any trace (or under an unsampled one) carry no `SpanTrace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanTrace {
    /// Trace id shared across processes (from the active context).
    pub trace_id: u128,
    /// This span's own fresh 64-bit id.
    pub span_id: u64,
    /// The enclosing span's id (the context's id at enter time).
    pub parent_span_id: u64,
}

/// Observer of span closures. Implementations must be cheap — they run
/// inline in the instrumented thread on every span close.
pub trait SpanSubscriber: Send + Sync {
    /// Called when a span closes. `path` is the full slash-joined path,
    /// `depth` its nesting depth (0 = root span), `elapsed` the
    /// wall-clock time between enter and close.
    fn on_close(&self, path: &str, depth: usize, elapsed: Duration);

    /// Trace-aware close notification; `trace` is `Some` when the span
    /// was opened under a sampled [`TraceContext`]. Defaults to
    /// forwarding to [`SpanSubscriber::on_close`], so subscribers that
    /// do not care about trace ids need no changes.
    fn on_close_traced(
        &self,
        path: &str,
        depth: usize,
        elapsed: Duration,
        _trace: Option<&SpanTrace>,
    ) {
        self.on_close(path, depth, elapsed);
    }
}

fn subscriber_slot() -> &'static RwLock<Option<Arc<dyn SpanSubscriber>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn SpanSubscriber>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Installs the global span subscriber, replacing any previous one.
pub fn set_subscriber(sub: Arc<dyn SpanSubscriber>) {
    *subscriber_slot().write().unwrap() = Some(sub);
}

/// Removes and returns the global span subscriber.
pub fn take_subscriber() -> Option<Arc<dyn SpanSubscriber>> {
    subscriber_slot().write().unwrap().take()
}

thread_local! {
    /// Stack of full paths of the spans currently open on this thread.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for an open span; created by [`crate::span!`] or
/// [`SpanGuard::enter`]. Closing (dropping) records the elapsed time.
#[must_use = "a span guard must be bound (`let _g = span!(..)`) or it closes immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when spans were disabled at enter time.
    start: Option<Instant>,
    depth: usize,
    /// Trace identity minted at enter (sampled contexts only).
    trace: Option<SpanTrace>,
    /// Set when this guard pushed a child context that must be undone.
    prev_ctx: Option<Option<TraceContext>>,
}

impl SpanGuard {
    /// Opens a span named `name` nested under the innermost open span
    /// of the current thread. When a sampled [`TraceContext`] is active
    /// the span mints itself a child span id and becomes the active
    /// context for its extent, so nested spans (and outbound hops) form
    /// a parent/child chain under one trace id.
    pub fn enter(name: &str) -> SpanGuard {
        if !spans_enabled() {
            return SpanGuard {
                start: None,
                depth: 0,
                trace: None,
                prev_ctx: None,
            };
        }
        // Head sampling is an opt-out that covers the whole request: a
        // thread running under a context minted *unsampled* at ingress
        // skips span collection entirely — no path build, no stack
        // push, no histogram, no subscriber. Context-free work (advisor
        // runs, maintenance threads) keeps recording as before.
        let active = trace::current();
        if matches!(active, Some(ctx) if !ctx.sampled) {
            return SpanGuard {
                start: None,
                depth: 0,
                trace: None,
                prev_ctx: None,
            };
        }
        let depth = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => {
                    let mut p = String::with_capacity(parent.len() + 1 + name.len());
                    p.push_str(parent);
                    p.push('/');
                    p.push_str(name);
                    p
                }
                None => name.to_string(),
            };
            stack.push(path);
            stack.len() - 1
        });
        let (trace, prev_ctx) = match active {
            Some(ctx) if ctx.sampled => {
                let child = ctx.child();
                let trace = SpanTrace {
                    trace_id: child.trace_id,
                    span_id: child.span_id,
                    parent_span_id: ctx.span_id,
                };
                (Some(trace), Some(trace::swap_current(Some(child))))
            }
            _ => (None, None),
        };
        SpanGuard {
            start: Some(Instant::now()),
            depth,
            trace,
            prev_ctx,
        }
    }

    /// The trace identity minted for this span, if any.
    pub fn trace(&self) -> Option<SpanTrace> {
        self.trace
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        if let Some(prev) = self.prev_ctx.take() {
            trace::swap_current(prev);
        }
        let path = SPAN_STACK.with(|stack| stack.borrow_mut().pop());
        let Some(path) = path else { return };
        registry()
            .histogram(&format!("span.{path}.ns"))
            .record_duration(elapsed);
        if let Some(sub) = subscriber_slot().read().unwrap().as_ref() {
            sub.on_close_traced(&path, self.depth, elapsed, self.trace.as_ref());
        }
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct PathStat {
    count: u64,
    total: Duration,
}

/// A [`SpanSubscriber`] that aggregates per-path statistics and renders
/// a flame-style summary: one line per path, indented by depth, with
/// call count, total time, and self time (total minus direct children).
#[derive(Debug, Default)]
pub struct FlameCollector {
    stats: Mutex<BTreeMap<String, PathStat>>,
}

impl FlameCollector {
    /// Creates a collector ready to pass to [`set_subscriber`].
    pub fn new() -> Arc<FlameCollector> {
        Arc::new(FlameCollector::default())
    }

    /// Renders the flame-style summary. Paths are sorted, so children
    /// appear beneath their parents.
    pub fn summary(&self) -> String {
        let stats = self.stats.lock().unwrap();
        if stats.is_empty() {
            return "(no spans recorded)\n".to_string();
        }
        // Self time = total − Σ direct children totals.
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<52} {:>8} {:>12} {:>12}",
            "span", "count", "total", "self"
        );
        for (path, stat) in stats.iter() {
            let child_total: Duration = stats
                .iter()
                .filter(|(p, _)| {
                    p.starts_with(path.as_str())
                        && p.len() > path.len()
                        && p.as_bytes()[path.len()] == b'/'
                        && !p[path.len() + 1..].contains('/')
                })
                .map(|(_, s)| s.total)
                .sum();
            let self_time = stat.total.saturating_sub(child_total);
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let _ = writeln!(
                out,
                "{:<52} {:>8} {:>12} {:>12}",
                format!("{}{}", "  ".repeat(depth), name),
                stat.count,
                format!("{:.1?}", stat.total),
                format!("{:.1?}", self_time),
            );
        }
        out
    }
}

impl SpanSubscriber for FlameCollector {
    fn on_close(&self, path: &str, _depth: usize, elapsed: Duration) {
        let mut stats = self.stats.lock().unwrap();
        let stat = stats.entry(path.to_string()).or_default();
        stat.count += 1;
        stat.total += elapsed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_build_slash_paths() {
        let collector = FlameCollector::new();
        {
            // Drive the subscriber interface directly so this test is
            // independent of the global subscriber slot (other tests in
            // the binary may install their own).
            collector.on_close("root_t/leaf", 1, Duration::from_millis(2));
            collector.on_close("root_t", 0, Duration::from_millis(5));
        }
        let summary = collector.summary();
        assert!(summary.contains("root_t"), "{summary}");
        assert!(summary.contains("  leaf"), "{summary}");
    }

    #[test]
    fn flame_summary_computes_self_time() {
        let c = FlameCollector::default();
        c.on_close("a/b", 1, Duration::from_millis(30));
        c.on_close("a/b/c", 2, Duration::from_millis(10));
        c.on_close("a", 0, Duration::from_millis(100));
        let s = c.summary();
        // a: total 100ms, self 100-30 = 70ms; a/b: total 30, self 20.
        assert!(s.contains("70.0ms"), "{s}");
        assert!(s.contains("20.0ms"), "{s}");
    }

    #[test]
    fn empty_collector_reports_no_spans() {
        let c = FlameCollector::default();
        assert!(c.summary().contains("no spans"));
    }

    #[test]
    fn spans_mint_child_ids_under_sampled_context() {
        let root = TraceContext::root(true);
        let _ctx = trace::activate(root);
        let outer = SpanGuard::enter("span_trace_test.outer");
        let outer_trace = outer.trace().expect("sampled context mints a trace");
        assert_eq!(outer_trace.trace_id, root.trace_id);
        assert_eq!(outer_trace.parent_span_id, root.span_id);
        {
            let inner = SpanGuard::enter("inner");
            let inner_trace = inner.trace().unwrap();
            assert_eq!(inner_trace.trace_id, root.trace_id);
            assert_eq!(inner_trace.parent_span_id, outer_trace.span_id);
        }
        // Inner restored the active context to the outer span.
        assert_eq!(trace::current().unwrap().span_id, outer_trace.span_id);
        drop(outer);
        assert_eq!(trace::current(), Some(root));
    }

    #[test]
    fn unsampled_or_absent_context_mints_no_trace() {
        {
            let g = SpanGuard::enter("span_trace_test.bare");
            assert_eq!(g.trace(), None);
        }
        let _ctx = trace::activate(TraceContext::root(false));
        let g = SpanGuard::enter("span_trace_test.unsampled");
        assert_eq!(g.trace(), None);
    }

    #[test]
    fn unsampled_context_skips_span_collection_entirely() {
        // The head-sampling opt-out: under an unsampled context the
        // span records nothing — not even its latency histogram (the
        // unique name below is only ever touched by this test, so the
        // global registry is a safe oracle).
        {
            let _ctx = trace::activate(TraceContext::root(false));
            let _g = SpanGuard::enter("span_trace_test.skip_unsampled");
        }
        let recorded = registry()
            .histogram("span.span_trace_test.skip_unsampled.ns")
            .snapshot()
            .count;
        assert_eq!(recorded, 0, "an unsampled span recorded its histogram");

        // A context-free span of the same shape *does* record — the
        // opt-out is the explicit unsampled flag, not absence of spans.
        {
            let _g = SpanGuard::enter("span_trace_test.keep_bare");
        }
        let recorded = registry()
            .histogram("span.span_trace_test.keep_bare.ns")
            .snapshot()
            .count;
        assert_eq!(recorded, 1, "a context-free span failed to record");
    }
}
