//! Prometheus text-format exposition (version 0.0.4).
//!
//! One encoder renders a [`Snapshot`] for both consumers: the shell's
//! `\metrics` command and the HTTP `/metrics` route, so the two can
//! never drift apart.
//!
//! Series keys in the registry already carry their labels in Prometheus
//! syntax (`name{k="v"}`, canonical order, escaped values — see
//! `crate::labels`), so encoding a labeled sample is: split the family
//! off at the first `{`, sanitize the family into the Prometheus name
//! charset, and emit the label body verbatim. Histograms expand into
//! the conventional `_bucket{le=...}` / `_sum` / `_count` triple with
//! cumulative, non-decreasing bucket counts.

use crate::labels::{prometheus_name, split_series};
use crate::metrics::Snapshot;
use std::collections::BTreeMap;

/// Groups a section's series by sanitized family name, preserving the
/// snapshot's sorted order within each family. Prometheus requires all
/// samples of a family to be contiguous under one `# TYPE` line.
fn group_by_family<V: Copy>(series: &[(String, V)]) -> BTreeMap<String, Vec<(&str, V)>> {
    let mut families: BTreeMap<String, Vec<(&str, V)>> = BTreeMap::new();
    for (key, v) in series {
        let (family, _) = split_series(key);
        families
            .entry(prometheus_name(family))
            .or_default()
            .push((key.as_str(), *v));
    }
    families
}

/// Appends one sample line: `name{body} value` (or `name value` when
/// the series has no labels).
fn push_sample(out: &mut String, name: &str, body: &str, value: &str) {
    out.push_str(name);
    if !body.is_empty() {
        out.push('{');
        out.push_str(body);
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Renders `f` the way Prometheus expects floats (finite shortest form;
/// non-finite becomes `NaN`/`+Inf`/`-Inf`, which the text format allows).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Encodes a snapshot in the Prometheus text exposition format.
pub fn encode_prometheus(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(1024);

    for (family, series) in group_by_family(&snap.counters) {
        out.push_str(&format!("# TYPE {family} counter\n"));
        for (key, v) in series {
            let (_, body) = split_series(key);
            push_sample(&mut out, &family, body, &v.to_string());
        }
    }

    for (family, series) in group_by_family(&snap.gauges) {
        out.push_str(&format!("# TYPE {family} gauge\n"));
        for (key, v) in series {
            let (_, body) = split_series(key);
            push_sample(&mut out, &family, body, &v.to_string());
        }
    }

    for (family, series) in group_by_family(&snap.float_gauges) {
        out.push_str(&format!("# TYPE {family} gauge\n"));
        for (key, v) in series {
            let (_, body) = split_series(key);
            push_sample(&mut out, &family, body, &fmt_f64(v));
        }
    }

    for (family, series) in group_by_family(&snap.histograms) {
        out.push_str(&format!("# TYPE {family} histogram\n"));
        for (key, h) in series {
            let (_, body) = split_series(key);
            let bucket_name = format!("{family}_bucket");
            for (le, cum) in h.cumulative_buckets() {
                let le_label = format!("le=\"{le}\"");
                let full_body = if body.is_empty() {
                    le_label
                } else {
                    format!("{body},{le_label}")
                };
                push_sample(&mut out, &bucket_name, &full_body, &cum.to_string());
            }
            let inf_body = if body.is_empty() {
                "le=\"+Inf\"".to_string()
            } else {
                format!("{body},le=\"+Inf\"")
            };
            match h.exemplar {
                // OpenMetrics exemplar: ` # {labels} value timestamp`.
                // Attached to the `+Inf` bucket, whose bound trivially
                // admits any observed value.
                Some(ex) => {
                    out.push_str(&format!(
                        "{bucket_name}{{{inf_body}}} {} # {{trace_id=\"{:032x}\"}} {} {}\n",
                        h.count,
                        ex.trace_id,
                        ex.value,
                        fmt_f64(ex.unix_ms as f64 / 1000.0),
                    ));
                }
                None => push_sample(&mut out, &bucket_name, &inf_body, &h.count.to_string()),
            }
            push_sample(&mut out, &format!("{family}_sum"), body, &h.sum.to_string());
            push_sample(
                &mut out,
                &format!("{family}_count"),
                body,
                &h.count.to_string(),
            );
        }
    }

    // Digest-backed percentile gauges: a companion `<family>_digest`
    // gauge family per histogram, labeled `quantile=...` in the style of
    // Prometheus summaries. The `_bucket` series above keep the coarse
    // log-bucket shape; these carry the t-digest's tail accuracy.
    for (family, series) in group_by_family(&snap.histograms) {
        out.push_str(&format!("# TYPE {family}_digest gauge\n"));
        let name = format!("{family}_digest");
        for (key, h) in series {
            let (_, body) = split_series(key);
            for (q, v) in [
                ("0.5", h.p50),
                ("0.95", h.p95),
                ("0.99", h.p99),
                ("0.999", h.p999),
            ] {
                let q_label = format!("quantile=\"{q}\"");
                let full_body = if body.is_empty() {
                    q_label
                } else {
                    format!("{body},{q_label}")
                };
                push_sample(&mut out, &name, &full_body, &v.to_string());
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn encodes_all_metric_kinds() {
        let r = Registry::default();
        r.counter("f2db.queries").add(7);
        r.gauge("advisor.model_count").set(42);
        r.float_gauge_with("f2db.node.smape", &[("node", "3")])
            .set(0.625);
        r.histogram("f2db.query.ns").record(1000);
        r.histogram("f2db.query.ns").record(3000);
        let text = encode_prometheus(&r.snapshot());

        assert!(text.contains("# TYPE f2db_queries counter\n"), "{text}");
        assert!(text.contains("f2db_queries 7\n"), "{text}");
        assert!(text.contains("# TYPE advisor_model_count gauge\n"));
        assert!(text.contains("advisor_model_count 42\n"));
        assert!(text.contains("# TYPE f2db_node_smape gauge\n"));
        assert!(text.contains("f2db_node_smape{node=\"3\"} 0.625\n"));
        assert!(text.contains("# TYPE f2db_query_ns histogram\n"));
        assert!(
            text.contains("f2db_query_ns_bucket{le=\"1023\"} 1\n"),
            "{text}"
        );
        assert!(text.contains("f2db_query_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("f2db_query_ns_sum 4000\n"));
        assert!(text.contains("f2db_query_ns_count 2\n"));
        // Digest-backed quantile gauges ride along as a companion family.
        assert!(
            text.contains("# TYPE f2db_query_ns_digest gauge\n"),
            "{text}"
        );
        assert!(
            text.contains("f2db_query_ns_digest{quantile=\"0.5\"} "),
            "{text}"
        );
        assert!(
            text.contains("f2db_query_ns_digest{quantile=\"0.999\"} 3000\n"),
            "{text}"
        );
        // Every line is a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || line.rsplit_once(' ').is_some(),
                "{line}"
            );
        }
    }

    #[test]
    fn labeled_histogram_merges_le_label() {
        let r = Registry::default();
        r.histogram_with("work.ns", &[("kind", "fit")]).record(100);
        let text = encode_prometheus(&r.snapshot());
        assert!(
            text.contains("work_ns_bucket{kind=\"fit\",le=\"127\"} 1\n"),
            "{text}"
        );
        assert!(text.contains("work_ns_bucket{kind=\"fit\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("work_ns_sum{kind=\"fit\"} 100\n"));
        assert!(text.contains("work_ns_count{kind=\"fit\"} 1\n"));
        assert!(
            text.contains("work_ns_digest{kind=\"fit\",quantile=\"0.99\"} 100\n"),
            "{text}"
        );
    }

    #[test]
    fn one_type_line_per_family() {
        let r = Registry::default();
        for node in ["1", "2", "3"] {
            r.counter_with("family.hits", &[("node", node)]).incr();
        }
        let text = encode_prometheus(&r.snapshot());
        assert_eq!(text.matches("# TYPE family_hits counter").count(), 1);
        assert_eq!(text.matches("family_hits{node=").count(), 3);
    }

    #[test]
    fn traced_observations_emit_openmetrics_exemplars() {
        let r = Registry::default();
        let h = r.histogram("exq.ns");
        h.record(1000);
        h.record_with_trace(50_000, 0xdead_beef);
        let text = encode_prometheus(&r.snapshot());
        // The +Inf bucket carries the exemplar: bucket sample, then
        // ` # {trace_id="..."} value timestamp`.
        let line = text
            .lines()
            .find(|l| l.starts_with("exq_ns_bucket{le=\"+Inf\"}"))
            .unwrap();
        assert!(line.contains(" 2 # {trace_id=\""), "{line}");
        assert!(line.contains(&format!("{:032x}", 0xdead_beefu64)), "{line}");
        assert!(line.contains("\"} 50000 "), "{line}");
        // Untraced histograms keep the plain bucket line.
        let plain = encode_prometheus(&{
            let r2 = Registry::default();
            r2.histogram("plain.ns").record(5);
            r2.snapshot()
        });
        assert!(
            plain.contains("plain_ns_bucket{le=\"+Inf\"} 1\n"),
            "{plain}"
        );
    }

    #[test]
    fn cumulative_bucket_counts_do_not_decrease() {
        let r = Registry::default();
        let h = r.histogram("lat.ns");
        for v in [1u64, 5, 5, 900, 70_000] {
            h.record(v);
        }
        let text = encode_prometheus(&r.snapshot());
        let mut last = 0u64;
        let mut buckets = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("lat_ns_bucket{") {
                let count: u64 = rest.rsplit_once(' ').unwrap().1.parse().unwrap();
                assert!(count >= last, "{text}");
                last = count;
                buckets += 1;
            }
        }
        assert!(buckets >= 4, "{text}");
        assert_eq!(last, 5, "+Inf bucket equals total count");
    }
}
