//! The std-only export plane: Prometheus text exposition, a minimal
//! HTTP/1.1 endpoint, and a Chrome `trace_event` span exporter.
//!
//! * [`prom::encode_prometheus`] renders a [`crate::Snapshot`] in the
//!   Prometheus text format — one encoder shared by the shell's
//!   `\metrics` command and the HTTP `/metrics` route.
//! * [`httpcore`] is the shared std-only HTTP/1.1 request reader and
//!   response writer — one parser for both [`http::ObsServer`] and the
//!   `fdc-serve` forecast-serving subsystem.
//! * [`http::ObsServer`] serves `/metrics`, `/healthz`, `/events` and
//!   `/snapshot` from a `std::net::TcpListener` accept loop — no HTTP
//!   library, because the request surface is four fixed GET routes.
//! * [`trace::TraceCollector`] is a [`crate::SpanSubscriber`] that
//!   records every span close as a Chrome `trace_event` complete event;
//!   the resulting JSON loads directly into Perfetto / `chrome://tracing`.

pub mod http;
pub mod httpcore;
pub mod prom;
pub mod trace;
