//! The one hand-rolled HTTP/1.1 request reader of the workspace.
//!
//! Both network surfaces — the observability exporter
//! ([`super::http::ObsServer`]) and the forecast-serving subsystem
//! (`fdc-serve`) — speak a deliberately tiny slice of HTTP/1.1: one
//! request per connection, explicit `Content-Length` bodies, no chunked
//! transfer encoding, no keep-alive. Sharing the reader here means the
//! two servers cannot drift apart in how they parse a request line,
//! fold headers or bound a body.
//!
//! The surface is small enough that parsing by hand is simpler and
//! safer than a dependency: read until the blank line, split the
//! request line, lower-case header names, then read exactly
//! `Content-Length` more bytes (bounded by the caller's `max_body`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP/1.1 request: the request line, lower-cased header
/// names, and the raw body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, …).
    pub method: String,
    /// The raw request target, e.g. `/events?n=10`.
    pub target: String,
    /// Headers in arrival order; names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the header named `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The target split into `(path, query)`; the query is `""` when
    /// the target carries none.
    pub fn path_query(&self) -> (&str, &str) {
        split_target(&self.target)
    }

    /// The caller's [`TraceContext`], parsed from the `traceparent`
    /// header. `None` when the header is absent *or malformed* — a bad
    /// caller gets a fresh root trace, never an error.
    pub fn trace_context(&self) -> Option<crate::trace::TraceContext> {
        crate::trace::TraceContext::parse_traceparent(
            self.header(crate::trace::TRACEPARENT_HEADER)?,
        )
    }
}

/// Splits a request target into `(path, query)`.
pub fn split_target(target: &str) -> (&str, &str) {
    match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    }
}

/// Errors a request read can fail with — mapped to a status code by the
/// caller so the two servers can answer malformed traffic uniformly.
#[derive(Debug)]
pub enum RequestError {
    /// Socket-level failure (timeout, reset, EOF mid-head).
    Io(std::io::Error),
    /// The request line or headers were not parseable HTTP/1.1.
    Malformed(&'static str),
    /// The declared `Content-Length` exceeds the caller's bound.
    BodyTooLarge(usize),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Io(e) => write!(f, "i/o error: {e}"),
            RequestError::Malformed(m) => write!(f, "malformed request: {m}"),
            RequestError::BodyTooLarge(n) => write!(f, "body of {n} bytes exceeds the limit"),
        }
    }
}

impl std::error::Error for RequestError {}

impl From<std::io::Error> for RequestError {
    fn from(e: std::io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// Reads one HTTP/1.1 request from `stream`: the head up to the blank
/// line, then exactly `Content-Length` body bytes (rejected beyond
/// `max_body`). `timeout` bounds every socket read.
pub fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
    timeout: Duration,
) -> Result<Request, RequestError> {
    stream.set_read_timeout(Some(timeout))?;
    // Read until the head terminator, keeping any body bytes that
    // arrived in the same segments.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(RequestError::Malformed("request head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(RequestError::Malformed("connection closed mid-head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(RequestError::Malformed("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or(RequestError::Malformed("request line has no target"))?
        .to_string();
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(RequestError::Malformed("header line without a colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| RequestError::Malformed("unparseable content-length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(RequestError::BodyTooLarge(content_length));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(RequestError::Malformed("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request {
        method,
        target,
        headers,
        body,
    })
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes a complete HTTP/1.1 response with `Connection: close`,
/// `Content-Type`/`Content-Length` and any `extra_headers`, then the
/// body. `status` is the full status line tail, e.g. `"200 OK"`.
pub fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// [`write_response`] for binary payloads (e.g. WAL ship chunks): the
/// body goes out verbatim with its exact `Content-Length`, no string
/// conversion.
pub fn write_response_bytes(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, TcpListener};

    /// Round-trips raw request bytes through a real socket pair.
    fn parse(raw: &[u8]) -> Result<Request, RequestError> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.flush().unwrap();
            // Keep the write half open until the reader is done parsing;
            // shutdown would race a reader still waiting on body bytes.
            s
        });
        let (mut stream, _) = listener.accept().unwrap();
        let result = read_request(&mut stream, 4096, Duration::from_millis(500));
        drop(writer.join().unwrap());
        result
    }

    #[test]
    fn parses_request_with_body() {
        let req = parse(
            b"POST /insert?sync=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/insert?sync=1");
        assert_eq!(req.path_query(), ("/insert", "sync=1"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("Content-Length"), Some("11"));
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/metrics");
        assert!(req.body.is_empty());
        assert_eq!(req.path_query(), ("/metrics", ""));
    }

    #[test]
    fn rejects_oversized_body() {
        let err = parse(b"POST /q HTTP/1.1\r\nContent-Length: 100000\r\n\r\n").unwrap_err();
        assert!(matches!(err, RequestError::BodyTooLarge(100000)), "{err}");
    }

    #[test]
    fn rejects_malformed_head() {
        assert!(matches!(
            parse(b"\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn split_target_handles_bare_paths() {
        assert_eq!(split_target("/a/b"), ("/a/b", ""));
        assert_eq!(split_target("/a?x=1&y=2"), ("/a", "x=1&y=2"));
    }

    #[test]
    fn trace_context_parses_valid_and_ignores_malformed() {
        let good = parse(
            b"GET /q HTTP/1.1\r\ntraceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01\r\n\r\n",
        )
        .unwrap();
        let ctx = good.trace_context().unwrap();
        assert_eq!(ctx.trace_id, 0x4bf9_2f35_77b3_4da6_a3ce_929d_0e0e_4736);
        assert!(ctx.sampled);
        let bad = parse(b"GET /q HTTP/1.1\r\ntraceparent: junk-header\r\n\r\n").unwrap();
        assert_eq!(bad.trace_context(), None);
        let none = parse(b"GET /q HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(none.trace_context(), None);
    }
}
