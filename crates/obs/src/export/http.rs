//! A minimal std-only HTTP/1.1 exporter.
//!
//! [`ObsServer`] serves four fixed GET routes from a
//! `std::net::TcpListener` accept loop on one background thread:
//!
//! | route          | body                                            |
//! |----------------|-------------------------------------------------|
//! | `/metrics`     | Prometheus text exposition of the registry      |
//! | `/healthz`     | `{"status":"ok"}`                               |
//! | `/events?n=N`  | last `N` journal events as a JSON array         |
//! | `/snapshot`    | the registry snapshot as JSON                   |
//!
//! Requests are read with the shared HTTP/1.1 reader
//! ([`crate::export::httpcore`]) — the same module `fdc-serve` builds
//! its worker-pool server on, so the two network surfaces cannot drift
//! apart in how they parse a request. Connections are served
//! sequentially with short read timeouts — this is a scrape endpoint,
//! not a web server. Shutdown sets a flag and wakes the accept loop by
//! connecting to the listener's own port.

use crate::events::{journal, Event};
use crate::export::httpcore::{read_request, split_target, write_response};
use crate::export::prom::encode_prometheus;
use crate::metrics::registry;
use crate::names;
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default number of events returned by `/events` without a `n=` query.
const DEFAULT_EVENT_COUNT: usize = 64;

/// The running exporter. Dropping (or calling [`ObsServer::shutdown`])
/// stops the accept loop and joins its thread.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ObsServer {
    /// Binds `127.0.0.1:port` (`port` 0 picks an ephemeral port) and
    /// starts serving on a background thread.
    pub fn bind(port: u16) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("fdc-obs-http".to_string())
            .spawn(move || accept_loop(listener, &stop_flag))?;
        journal().publish(Event::ServeStart {
            addr: addr.to_string(),
        });
        Ok(ObsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept() so the loop observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, stop: &AtomicBool) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let _ = serve_connection(stream);
    }
}

/// Parses `n=<count>` out of a query string, tolerating other params.
fn parse_event_count(query: &str) -> usize {
    query
        .split('&')
        .find_map(|kv| kv.strip_prefix("n="))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEFAULT_EVENT_COUNT)
}

fn serve_connection(mut stream: TcpStream) -> std::io::Result<()> {
    // The exporter accepts no bodies; 1 KiB covers any scrape head.
    let request = match read_request(&mut stream, 1024, Duration::from_millis(500)) {
        Ok(r) => r,
        Err(_) => {
            return write_response(
                &mut stream,
                "400 Bad Request",
                "text/plain",
                "malformed request\n",
                &[],
            );
        }
    };
    if request.method != "GET" {
        return write_response(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
            &[("Allow", "GET")],
        );
    }
    let (path, query) = split_target(&request.target);
    // One bounded-cardinality label: the route (or "other" for misses).
    let route = match path {
        "/metrics" | "/healthz" | "/events" | "/snapshot" => path,
        _ => "other",
    };
    registry()
        .counter_with(names::OBS_HTTP_REQUESTS, &[("path", route)])
        .incr();

    match path {
        "/metrics" => {
            let body = encode_prometheus(&registry().snapshot());
            write_response(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
                &[],
            )
        }
        "/healthz" => write_response(
            &mut stream,
            "200 OK",
            "application/json",
            "{\"status\":\"ok\"}\n",
            &[],
        ),
        "/events" => {
            let n = parse_event_count(query);
            let body = journal().recent_json(n);
            write_response(&mut stream, "200 OK", "application/json", &body, &[])
        }
        "/snapshot" => {
            let body = registry().snapshot().to_json();
            write_response(&mut stream, "200 OK", "application/json", &body, &[])
        }
        _ => write_response(
            &mut stream,
            "404 Not Found",
            "text/plain",
            "not found\n",
            &[],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// Raw one-shot HTTP GET against the server, returning the full
    /// response (head + body).
    fn get(addr: SocketAddr, target: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_healthz_and_404() {
        let server = ObsServer::bind(0).unwrap();
        let addr = server.addr();
        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.contains("{\"status\":\"ok\"}"), "{health}");
        let missing = get(addr, "/no-such-route");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        server.shutdown();
    }

    #[test]
    fn parse_event_count_tolerates_garbage() {
        assert_eq!(parse_event_count(""), DEFAULT_EVENT_COUNT);
        assert_eq!(parse_event_count("n=12"), 12);
        assert_eq!(parse_event_count("a=b&n=3"), 3);
        assert_eq!(parse_event_count("n=x"), DEFAULT_EVENT_COUNT);
    }
}
