//! Chrome `trace_event` span export.
//!
//! [`TraceCollector`] is a [`SpanSubscriber`] that records every span
//! close as a complete ("X") trace event. The resulting JSON document
//! (`{"traceEvents":[...]}`) loads directly into Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`, giving a real
//! timeline view of advisor runs and F²DB maintenance.
//!
//! Spans only report their *close* time and elapsed duration, so the
//! start timestamp is reconstructed as `close − elapsed`. Timestamps
//! are anchored to the Unix epoch in microseconds (wall-clock sampled
//! once at collector creation, advanced monotonically): two collectors
//! in different processes therefore share a timebase, and
//! [`merge_trace_documents`] can splice their exports into one
//! timeline. Events carry the real OS `pid` plus an optional
//! process-name metadata event ([`TraceCollector::set_process_name`]),
//! so a merged trace shows "fdc-serve primary" and "fdc-serve follower"
//! as separate process tracks. Each OS thread gets a stable small `tid`
//! from a thread-local counter, so nested spans of one thread stack
//! correctly in the viewer.
//!
//! Spans closed under a sampled [`crate::trace::TraceContext`] carry
//! their trace/span/parent ids in `args`, which is what makes the
//! merged timeline *joinable*: filtering a merged file for one
//! `trace_id` shows a single request crossing the process boundary.

use crate::span::{SpanSubscriber, SpanTrace};
use std::cell::Cell;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// One recorded complete event.
#[derive(Debug, Clone)]
struct TraceEvent {
    name: String,
    /// Start timestamp in µs since the Unix epoch.
    ts_us: u64,
    /// Duration in µs.
    dur_us: u64,
    tid: u64,
    depth: usize,
    trace: Option<SpanTrace>,
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stable per-thread id, assigned on first span close of the thread.
    static TRACE_TID: Cell<u64> = const { Cell::new(0) };
}

fn current_tid() -> u64 {
    TRACE_TID.with(|tid| {
        if tid.get() == 0 {
            tid.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        tid.get()
    })
}

/// A [`SpanSubscriber`] that buffers spans as Chrome trace events.
/// Install with `fdc_obs::set_subscriber(TraceCollector::new())`, run
/// the workload, then [`TraceCollector::write_to`] a `.json` file.
#[derive(Debug)]
pub struct TraceCollector {
    t0: Instant,
    /// Wall-clock µs at `t0` — the cross-process alignment anchor.
    epoch_us: u64,
    pid: u64,
    process_name: Mutex<Option<String>>,
    events: Mutex<Vec<TraceEvent>>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        TraceCollector {
            t0: Instant::now(),
            epoch_us: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0),
            pid: u64::from(std::process::id()),
            process_name: Mutex::new(None),
            events: Mutex::new(Vec::new()),
        }
    }
}

impl TraceCollector {
    /// Creates a collector ready for [`crate::set_subscriber`].
    pub fn new() -> std::sync::Arc<TraceCollector> {
        std::sync::Arc::new(TraceCollector::default())
    }

    /// Sets the process name emitted as a `process_name` metadata event,
    /// labeling this process's track in Perfetto (e.g. `"fdc primary"`).
    pub fn set_process_name(&self, name: &str) {
        *self.process_name.lock().unwrap() = Some(name.to_string());
    }

    /// Number of events buffered so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// True when no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the buffered events as a Chrome `trace_event` JSON
    /// document (`{"traceEvents":[...]}`).
    pub fn to_json(&self) -> String {
        let events = self.events.lock().unwrap();
        let mut out = String::with_capacity(64 + events.len() * 128);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        if let Some(name) = self.process_name.lock().unwrap().as_deref() {
            out.push_str(&format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":",
                self.pid
            ));
            push_json_str(&mut out, name);
            out.push_str("}}");
            first = false;
        }
        for e in events.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            push_json_str(&mut out, &e.name);
            out.push_str(&format!(
                ",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"depth\":{}",
                e.ts_us, e.dur_us, self.pid, e.tid, e.depth
            ));
            if let Some(t) = &e.trace {
                out.push_str(&format!(
                    ",\"trace_id\":\"{:032x}\",\"span_id\":\"{:016x}\",\"parent_span_id\":\"{:016x}\"",
                    t.trace_id, t.span_id, t.parent_span_id
                ));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Writes the JSON document to `path` (Perfetto-loadable).
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Writes atomically: the document lands under a temporary name in
    /// the same directory, then renames over `path`. A reader (or a
    /// merge) never observes a torn file — the property the crash
    /// harness relies on, since it SIGKILLs the exporting process.
    pub fn write_to_atomic(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    fn record(&self, path: &str, depth: usize, elapsed: Duration, trace: Option<&SpanTrace>) {
        let close_us = self.epoch_us + self.t0.elapsed().as_micros() as u64;
        let dur_us = elapsed.as_micros() as u64;
        let event = TraceEvent {
            name: path.to_string(),
            ts_us: close_us.saturating_sub(dur_us),
            dur_us,
            tid: current_tid(),
            depth,
            trace: trace.copied(),
        };
        self.events.lock().unwrap().push(event);
    }
}

/// JSON string escaping (span paths are code-controlled, but a correct
/// encoder costs nothing).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl SpanSubscriber for TraceCollector {
    fn on_close(&self, path: &str, depth: usize, elapsed: Duration) {
        self.record(path, depth, elapsed, None);
    }

    fn on_close_traced(
        &self,
        path: &str,
        depth: usize,
        elapsed: Duration,
        trace: Option<&SpanTrace>,
    ) {
        self.record(path, depth, elapsed, trace);
    }
}

/// Splices several Chrome-trace documents into one by concatenating
/// their `traceEvents` arrays. Purely textual — both inputs and output
/// are the exact shape [`TraceCollector::to_json`] produces
/// (`{"traceEvents":[...]}`), so no JSON parser is needed. Documents
/// that do not match that shape are skipped.
pub fn merge_trace_documents<S: AsRef<str>>(docs: &[S]) -> String {
    const PREFIX: &str = "{\"traceEvents\":[";
    const SUFFIX: &str = "]}";
    let mut out = String::from(PREFIX);
    let mut first = true;
    for doc in docs {
        let doc = doc.as_ref().trim();
        let Some(rest) = doc.strip_prefix(PREFIX) else {
            continue;
        };
        let Some(inner) = rest.strip_suffix(SUFFIX) else {
            continue;
        };
        if inner.is_empty() {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(inner);
    }
    out.push_str(SUFFIX);
    out
}

/// Reads each input trace file, merges them with
/// [`merge_trace_documents`], and writes the result to `out`.
pub fn merge_trace_files(inputs: &[&Path], out: &Path) -> std::io::Result<()> {
    let mut docs = Vec::with_capacity(inputs.len());
    for p in inputs {
        docs.push(std::fs::read_to_string(p)?);
    }
    std::fs::write(out, merge_trace_documents(&docs))
}

/// Installs a [`TraceCollector`] as the global subscriber when the
/// `FDC_TRACE_OUT` environment variable names an output path, and
/// spawns a background thread that rewrites the file atomically every
/// ~100 ms. `FDC_TRACE_NAME` (optional) labels the process track.
///
/// The periodic rewrite is what makes the export crash-tolerant: a
/// process killed mid-run (the primary-kill harness does exactly that)
/// still leaves a complete, loadable trace no older than one flush
/// interval. Returns the collector when installed.
pub fn install_env_exporter() -> Option<std::sync::Arc<TraceCollector>> {
    let out = std::env::var("FDC_TRACE_OUT")
        .ok()
        .filter(|p| !p.is_empty())?;
    let collector = TraceCollector::new();
    if let Ok(name) = std::env::var("FDC_TRACE_NAME") {
        if !name.is_empty() {
            collector.set_process_name(&name);
        }
    }
    crate::span::set_subscriber(collector.clone());
    let flusher = std::sync::Arc::clone(&collector);
    let path = std::path::PathBuf::from(out);
    std::thread::Builder::new()
        .name("fdc-trace-export".to_string())
        .spawn(move || {
            let mut last_len = usize::MAX;
            loop {
                std::thread::sleep(Duration::from_millis(100));
                let len = flusher.len();
                if len != last_len {
                    let _ = flusher.write_to_atomic(&path);
                    last_len = len;
                }
            }
        })
        .ok();
    Some(collector)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_complete_events_with_reconstructed_start() {
        let c = TraceCollector::default();
        std::thread::sleep(Duration::from_millis(2));
        c.on_close("advisor.run/step", 1, Duration::from_millis(1));
        c.on_close("advisor.run", 0, Duration::from_millis(2));
        assert_eq!(c.len(), 2);
        let json = c.to_json();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.ends_with("]}"), "{json}");
        assert!(json.contains("\"name\":\"advisor.run/step\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":1000"));
        assert!(json.contains("\"args\":{\"depth\":1}"));
        assert!(json.contains(&format!("\"pid\":{}", std::process::id())));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn threads_get_distinct_tids() {
        let c = std::sync::Arc::new(TraceCollector::default());
        let c2 = std::sync::Arc::clone(&c);
        c.on_close("main_thread", 0, Duration::from_micros(10));
        std::thread::spawn(move || {
            c2.on_close("other_thread", 0, Duration::from_micros(10));
        })
        .join()
        .unwrap();
        let events = c.events.lock().unwrap();
        assert_eq!(events.len(), 2);
        assert_ne!(events[0].tid, events[1].tid);
    }

    #[test]
    fn write_to_produces_loadable_file() {
        let c = TraceCollector::default();
        c.on_close("x", 0, Duration::from_micros(5));
        let path = std::env::temp_dir().join(format!(
            "fdc_trace_test_{}_{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        c.write_to(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"traceEvents\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn traced_close_embeds_ids_in_args() {
        let c = TraceCollector::default();
        let t = SpanTrace {
            trace_id: 0xabcd,
            span_id: 0x1234,
            parent_span_id: 0x5678,
        };
        c.on_close_traced("serve.request", 0, Duration::from_micros(50), Some(&t));
        let json = c.to_json();
        assert!(
            json.contains("\"trace_id\":\"0000000000000000000000000000abcd\""),
            "{json}"
        );
        assert!(json.contains("\"span_id\":\"0000000000001234\""), "{json}");
        assert!(
            json.contains("\"parent_span_id\":\"0000000000005678\""),
            "{json}"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn process_name_metadata_event_labels_the_track() {
        let c = TraceCollector::default();
        c.set_process_name("fdc follower");
        c.on_close("x", 0, Duration::from_micros(5));
        let json = c.to_json();
        assert!(json.contains("\"name\":\"process_name\""), "{json}");
        assert!(json.contains("\"ph\":\"M\""), "{json}");
        assert!(json.contains("\"name\":\"fdc follower\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn merge_splices_trace_events_arrays() {
        let a = TraceCollector::default();
        a.set_process_name("primary");
        a.on_close("a_span", 0, Duration::from_micros(10));
        let b = TraceCollector::default();
        b.set_process_name("follower");
        b.on_close("b_span", 0, Duration::from_micros(10));
        let merged = merge_trace_documents(&[a.to_json(), b.to_json()]);
        assert!(merged.starts_with("{\"traceEvents\":["), "{merged}");
        assert!(merged.ends_with("]}"), "{merged}");
        assert!(merged.contains("a_span"), "{merged}");
        assert!(merged.contains("b_span"), "{merged}");
        assert!(merged.contains("primary") && merged.contains("follower"));
        assert_eq!(merged.matches('{').count(), merged.matches('}').count());
        // Garbage and empty documents are skipped without corrupting it.
        let with_junk = merge_trace_documents(&[
            a.to_json(),
            "not json".to_string(),
            "{\"traceEvents\":[]}".to_string(),
        ]);
        assert!(with_junk.contains("a_span"));
        assert!(!with_junk.contains("not json"));
        assert_eq!(
            with_junk.matches('{').count(),
            with_junk.matches('}').count()
        );
    }

    #[test]
    fn timestamps_are_unix_anchored() {
        let c = TraceCollector::default();
        c.on_close("anchored", 0, Duration::from_micros(1));
        let events = c.events.lock().unwrap();
        // 2020-01-01 in unix µs — any sane wall clock is far past this.
        assert!(
            events[0].ts_us > 1_577_836_800_000_000,
            "{}",
            events[0].ts_us
        );
    }
}
