//! Chrome `trace_event` span export.
//!
//! [`TraceCollector`] is a [`SpanSubscriber`] that records every span
//! close as a complete ("X") trace event. The resulting JSON document
//! (`{"traceEvents":[...]}`) loads directly into Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`, giving a real
//! timeline view of advisor runs and F²DB maintenance.
//!
//! Spans only report their *close* time and elapsed duration, so the
//! start timestamp is reconstructed as `close − elapsed` relative to the
//! collector's creation instant. Timestamps and durations are in
//! microseconds, as the format requires. Each OS thread gets a stable
//! small `tid` from a thread-local counter, so nested spans of one
//! thread stack correctly in the viewer.

use crate::span::SpanSubscriber;
use std::cell::Cell;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One recorded complete event.
#[derive(Debug, Clone)]
struct TraceEvent {
    name: String,
    /// Start timestamp in µs since the collector's creation.
    ts_us: u64,
    /// Duration in µs.
    dur_us: u64,
    tid: u64,
    depth: usize,
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stable per-thread id, assigned on first span close of the thread.
    static TRACE_TID: Cell<u64> = const { Cell::new(0) };
}

fn current_tid() -> u64 {
    TRACE_TID.with(|tid| {
        if tid.get() == 0 {
            tid.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        tid.get()
    })
}

/// A [`SpanSubscriber`] that buffers spans as Chrome trace events.
/// Install with `fdc_obs::set_subscriber(TraceCollector::new())`, run
/// the workload, then [`TraceCollector::write_to`] a `.json` file.
#[derive(Debug)]
pub struct TraceCollector {
    t0: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        TraceCollector {
            t0: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }
}

impl TraceCollector {
    /// Creates a collector ready for [`crate::set_subscriber`].
    pub fn new() -> std::sync::Arc<TraceCollector> {
        std::sync::Arc::new(TraceCollector::default())
    }

    /// Number of events buffered so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// True when no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the buffered events as a Chrome `trace_event` JSON
    /// document (`{"traceEvents":[...]}`).
    pub fn to_json(&self) -> String {
        let events = self.events.lock().unwrap();
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_str(&mut out, &e.name);
            out.push_str(&format!(
                ",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"depth\":{}}}}}",
                e.ts_us, e.dur_us, e.tid, e.depth
            ));
        }
        out.push_str("]}");
        out
    }

    /// Writes the JSON document to `path` (Perfetto-loadable).
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// JSON string escaping (span paths are code-controlled, but a correct
/// encoder costs nothing).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl SpanSubscriber for TraceCollector {
    fn on_close(&self, path: &str, depth: usize, elapsed: Duration) {
        let close_us = self.t0.elapsed().as_micros() as u64;
        let dur_us = elapsed.as_micros() as u64;
        let event = TraceEvent {
            name: path.to_string(),
            ts_us: close_us.saturating_sub(dur_us),
            dur_us,
            tid: current_tid(),
            depth,
        };
        self.events.lock().unwrap().push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_complete_events_with_reconstructed_start() {
        let c = TraceCollector::default();
        std::thread::sleep(Duration::from_millis(2));
        c.on_close("advisor.run/step", 1, Duration::from_millis(1));
        c.on_close("advisor.run", 0, Duration::from_millis(2));
        assert_eq!(c.len(), 2);
        let json = c.to_json();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.ends_with("]}"), "{json}");
        assert!(json.contains("\"name\":\"advisor.run/step\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":1000"));
        assert!(json.contains("\"args\":{\"depth\":1}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn threads_get_distinct_tids() {
        let c = std::sync::Arc::new(TraceCollector::default());
        let c2 = std::sync::Arc::clone(&c);
        c.on_close("main_thread", 0, Duration::from_micros(10));
        std::thread::spawn(move || {
            c2.on_close("other_thread", 0, Duration::from_micros(10));
        })
        .join()
        .unwrap();
        let events = c.events.lock().unwrap();
        assert_eq!(events.len(), 2);
        assert_ne!(events[0].tid, events[1].tid);
    }

    #[test]
    fn write_to_produces_loadable_file() {
        let c = TraceCollector::default();
        c.on_close("x", 0, Duration::from_micros(5));
        let path = std::env::temp_dir().join(format!(
            "fdc_trace_test_{}_{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        c.write_to(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"traceEvents\""));
        std::fs::remove_file(&path).ok();
    }
}
