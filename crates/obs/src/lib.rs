//! # fdc-obs — observability for the data-cube advisor and F²DB
//!
//! The paper's whole value proposition is a cost/accuracy trade-off: the
//! advisor spends model-creation time to buy SMAPE, and F²DB answers
//! forecast queries under latency constraints. This crate is the
//! measurement layer that makes those costs visible:
//!
//! * a process-global, thread-safe **metrics registry** — atomic
//!   [`Counter`]s, [`Gauge`]s, and log-bucketed [`Histogram`]s whose
//!   p50/p95/p99/p999 snapshots come from an embedded t-digest
//!   ([`Snapshot`] renders as text or JSON);
//! * lightweight hierarchical **tracing spans** — `let _g =
//!   span!("advisor.step");` RAII guards that aggregate wall-clock time
//!   per dotted path, with an optional [`SpanSubscriber`] such as
//!   [`FlameCollector`] that renders a flame-style summary.
//!
//! Everything is `std`-only and safe to leave enabled in release
//! builds: counters are single atomic adds, histograms are one atomic
//! add into a power-of-two bucket, and spans cost two `Instant::now()`
//! calls plus one histogram record. Span collection can be switched off
//! globally with [`set_spans_enabled`].
//!
//! Metric names are dotted paths (`f2db.query.ns`); by convention a
//! name ending in `.ns` holds nanoseconds and is rendered as a humanized
//! duration by [`Snapshot`]'s `Display`. The canonical names used by the
//! workspace live in [`names`].
//!
//! On top of the registry sit the drift/export layers:
//!
//! * **labeled series** — `counter_with("hits", &[("node", "3")])`
//!   interns `hits{node="3"}` with canonical label order and a bounded
//!   per-family cardinality ([`labels`]);
//! * **mergeable sketches** — [`TDigest`] (accurate tail quantiles in
//!   constant space; backs every histogram's p50/p95/p99/p999) and
//!   [`MomentSummary`] (exactly mergeable moments), both with versioned
//!   byte codecs so per-shard sketches can cross process boundaries
//!   ([`sketch`]);
//! * **rolling accuracy** — [`RollingAccuracy`] tracks per-key error
//!   moments on [`MomentSummary`] ring slots and raises edge-triggered
//!   [`DriftAlert`]s (SMAPE threshold or variance-aware);
//! * **event journal** — [`journal`] is a bounded ring of typed
//!   [`Event`]s with an optional JSONL sink;
//! * **export plane** — [`encode_prometheus`] (text exposition),
//!   [`ObsServer`] (std-only HTTP `/metrics`, `/healthz`, `/events`,
//!   `/snapshot`), and [`TraceCollector`] (Chrome `trace_event` JSON
//!   for Perfetto).

pub mod accuracy;
pub mod events;
pub mod export;
pub mod labels;
pub mod metrics;
pub mod names;
pub mod sketch;
pub mod span;
pub mod trace;
pub mod wire;

pub use accuracy::{AccuracyOptions, DriftAlert, DriftTrigger, KeyAccuracy, RollingAccuracy};
pub use events::{journal, Event, Journal, TimedEvent};
pub use export::http::ObsServer;
pub use export::httpcore;
pub use export::prom::encode_prometheus;
pub use export::trace::{
    install_env_exporter, merge_trace_documents, merge_trace_files, TraceCollector,
};
pub use labels::{prometheus_name, series_key, split_series, MAX_SERIES_PER_FAMILY};
pub use metrics::{
    registry, Counter, Exemplar, FloatGauge, Gauge, Histogram, HistogramSnapshot, Registry,
    Snapshot, EXEMPLAR_WINDOW,
};
pub use sketch::{MomentSummary, SketchDecodeError, TDigest};
pub use span::{
    set_spans_enabled, set_subscriber, spans_enabled, take_subscriber, FlameCollector, SpanGuard,
    SpanSubscriber, SpanTrace,
};
pub use trace::{TraceContext, TRACEPARENT_HEADER};
pub use wire::SketchBundle;

use std::sync::Arc;

/// Returns (interning on first use) the counter registered under `name`.
pub fn counter(name: &str) -> Arc<Counter> {
    registry().counter(name)
}

/// Returns (interning on first use) the gauge registered under `name`.
pub fn gauge(name: &str) -> Arc<Gauge> {
    registry().gauge(name)
}

/// Returns (interning on first use) the float gauge registered under
/// `name`.
pub fn float_gauge(name: &str) -> Arc<FloatGauge> {
    registry().float_gauge(name)
}

/// Returns (interning on first use) the histogram registered under
/// `name`. Suffix the name with `.ns` when recording nanoseconds.
pub fn histogram(name: &str) -> Arc<Histogram> {
    registry().histogram(name)
}

/// Returns the labeled counter series `name{labels}` (canonical label
/// order; per-family cardinality bounded by [`MAX_SERIES_PER_FAMILY`]).
pub fn counter_with(name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
    registry().counter_with(name, labels)
}

/// Returns the labeled gauge series `name{labels}`.
pub fn gauge_with(name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
    registry().gauge_with(name, labels)
}

/// Returns the labeled float-gauge series `name{labels}`.
pub fn float_gauge_with(name: &str, labels: &[(&str, &str)]) -> Arc<FloatGauge> {
    registry().float_gauge_with(name, labels)
}

/// Returns the labeled histogram series `name{labels}`.
pub fn histogram_with(name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
    registry().histogram_with(name, labels)
}

/// Takes a consistent snapshot of the global registry.
pub fn snapshot() -> Snapshot {
    registry().snapshot()
}

/// Opens a span; prefer the [`span!`] macro.
pub fn enter_span(name: &str) -> SpanGuard {
    SpanGuard::enter(name)
}

/// Opens a hierarchical tracing span that closes when the returned
/// guard is dropped:
///
/// ```
/// let _g = fdc_obs::span!("advisor.step");
/// // ... timed work ...
/// ```
///
/// Nested spans build dotted paths (`advisor.step/select`); each close
/// records into the `span.<path>.ns` histogram and notifies the global
/// subscriber, if any. The guard must be bound to a named variable
/// (`let _g = ...`) — `let _ = ...` drops it immediately.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exercises the global enable flag and the macro in one sequential
    /// test: other tests in this binary use spans concurrently, so the
    /// flag must only ever be toggled here.
    #[test]
    fn span_macro_records_into_registry() {
        set_spans_enabled(false);
        {
            let _g = crate::span!("obs_lib_test.disabled");
        }
        set_spans_enabled(true);
        assert!(
            !crate::snapshot()
                .histograms
                .iter()
                .any(|(n, _)| n == "span.obs_lib_test.disabled.ns"),
            "disabled span leaked into registry"
        );
        {
            let _g = crate::span!("obs_lib_test.outer");
            let _h = crate::span!("inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = crate::snapshot();
        let outer = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "span.obs_lib_test.outer.ns")
            .expect("outer span histogram");
        assert!(outer.1.count >= 1);
        assert!(
            snap.histograms
                .iter()
                .any(|(n, _)| n == "span.obs_lib_test.outer/inner.ns"),
            "nested span path missing: {:?}",
            snap.histograms.iter().map(|(n, _)| n).collect::<Vec<_>>()
        );
    }
}
