//! # fdc-obs — observability for the data-cube advisor and F²DB
//!
//! The paper's whole value proposition is a cost/accuracy trade-off: the
//! advisor spends model-creation time to buy SMAPE, and F²DB answers
//! forecast queries under latency constraints. This crate is the
//! measurement layer that makes those costs visible:
//!
//! * a process-global, thread-safe **metrics registry** — atomic
//!   [`Counter`]s, [`Gauge`]s, and log-bucketed [`Histogram`]s with
//!   p50/p95/p99 snapshots ([`Snapshot`] renders as text or JSON);
//! * lightweight hierarchical **tracing spans** — `let _g =
//!   span!("advisor.step");` RAII guards that aggregate wall-clock time
//!   per dotted path, with an optional [`SpanSubscriber`] such as
//!   [`FlameCollector`] that renders a flame-style summary.
//!
//! Everything is `std`-only and safe to leave enabled in release
//! builds: counters are single atomic adds, histograms are one atomic
//! add into a power-of-two bucket, and spans cost two `Instant::now()`
//! calls plus one histogram record. Span collection can be switched off
//! globally with [`set_spans_enabled`].
//!
//! Metric names are dotted paths (`f2db.query.ns`); by convention a
//! name ending in `.ns` holds nanoseconds and is rendered as a humanized
//! duration by [`Snapshot`]'s `Display`.

pub mod metrics;
pub mod span;

pub use metrics::{registry, Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot};
pub use span::{
    set_spans_enabled, set_subscriber, spans_enabled, take_subscriber, FlameCollector, SpanGuard,
    SpanSubscriber,
};

use std::sync::Arc;

/// Returns (interning on first use) the counter registered under `name`.
pub fn counter(name: &str) -> Arc<Counter> {
    registry().counter(name)
}

/// Returns (interning on first use) the gauge registered under `name`.
pub fn gauge(name: &str) -> Arc<Gauge> {
    registry().gauge(name)
}

/// Returns (interning on first use) the histogram registered under
/// `name`. Suffix the name with `.ns` when recording nanoseconds.
pub fn histogram(name: &str) -> Arc<Histogram> {
    registry().histogram(name)
}

/// Takes a consistent snapshot of the global registry.
pub fn snapshot() -> Snapshot {
    registry().snapshot()
}

/// Opens a span; prefer the [`span!`] macro.
pub fn enter_span(name: &str) -> SpanGuard {
    SpanGuard::enter(name)
}

/// Opens a hierarchical tracing span that closes when the returned
/// guard is dropped:
///
/// ```
/// let _g = fdc_obs::span!("advisor.step");
/// // ... timed work ...
/// ```
///
/// Nested spans build dotted paths (`advisor.step/select`); each close
/// records into the `span.<path>.ns` histogram and notifies the global
/// subscriber, if any. The guard must be bound to a named variable
/// (`let _g = ...`) — `let _ = ...` drops it immediately.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exercises the global enable flag and the macro in one sequential
    /// test: other tests in this binary use spans concurrently, so the
    /// flag must only ever be toggled here.
    #[test]
    fn span_macro_records_into_registry() {
        set_spans_enabled(false);
        {
            let _g = crate::span!("obs_lib_test.disabled");
        }
        set_spans_enabled(true);
        assert!(
            !crate::snapshot()
                .histograms
                .iter()
                .any(|(n, _)| n == "span.obs_lib_test.disabled.ns"),
            "disabled span leaked into registry"
        );
        {
            let _g = crate::span!("obs_lib_test.outer");
            let _h = crate::span!("inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = crate::snapshot();
        let outer = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "span.obs_lib_test.outer.ns")
            .expect("outer span histogram");
        assert!(outer.1.count >= 1);
        assert!(
            snap.histograms
                .iter()
                .any(|(n, _)| n == "span.obs_lib_test.outer/inner.ns"),
            "nested span path missing: {:?}",
            snap.histograms.iter().map(|(n, _)| n).collect::<Vec<_>>()
        );
    }
}
