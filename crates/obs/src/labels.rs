//! Labeled metric series.
//!
//! A labeled series is interned in the registry under one canonical
//! string key: the family name followed by its labels in Prometheus
//! text syntax, `name{k1="v1",k2="v2"}`. Canonicalization makes equal
//! label sets hit the same series no matter the argument order:
//!
//! * labels are sorted by key (duplicate keys keep the last value),
//! * label values are escaped Prometheus-style (`\\`, `\"`, `\n`),
//! * the empty label set is just the bare family name.
//!
//! Because the key *is* the Prometheus series syntax, the text
//! exporter never parses labels back out — it splits a series at the
//! first `{` to find its family and emits the rest verbatim. Metric
//! family names must therefore never contain `{` (the `names` module
//! enforces this for the workspace's own names).
//!
//! ## Cardinality
//!
//! Per-family cardinality is bounded by [`MAX_SERIES_PER_FAMILY`]: the
//! first `MAX_SERIES_PER_FAMILY` distinct label sets of a family get
//! their own series; later ones are redirected to the family's shared
//! `{overflow="true"}` series and counted in `obs.series.dropped`. This
//! keeps an unbounded key space (node ids of a huge cube, user-supplied
//! dimension values) from growing the registry without bound while
//! still accounting every sample.

/// Maximum number of distinct label sets kept per metric family.
pub const MAX_SERIES_PER_FAMILY: usize = 128;

/// The canonical series key of the overflow series of a family.
pub(crate) fn overflow_series(name: &str) -> String {
    format!("{name}{{overflow=\"true\"}}")
}

/// Appends a label value with Prometheus text-format escaping
/// (backslash, double quote, newline).
fn push_escaped(out: &mut String, value: &str) {
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Builds the canonical series key for `name` with `labels`.
///
/// Labels are sorted by key; duplicate keys keep the value given last.
/// An empty label set yields the bare name.
pub fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    // Stable sort, then keep the last occurrence of each key.
    sorted.sort_by_key(|(k, _)| *k);
    let mut dedup: Vec<(&str, &str)> = Vec::with_capacity(sorted.len());
    for (k, v) in sorted {
        match dedup.last_mut() {
            Some((lk, lv)) if *lk == k => *lv = v,
            _ => dedup.push((k, v)),
        }
    }
    let mut out = String::with_capacity(name.len() + 16 * dedup.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in dedup.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        push_escaped(&mut out, v);
        out.push('"');
    }
    out.push('}');
    out
}

/// Splits a canonical series key into its family name and raw label
/// body (the text between the braces, without them). Series without
/// labels return an empty body.
pub fn split_series(series: &str) -> (&str, &str) {
    match series.find('{') {
        Some(i) => (&series[..i], &series[i + 1..series.len() - 1]),
        None => (series, ""),
    }
}

/// Sanitizes a dotted metric name into the Prometheus name charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`.
pub fn prometheus_name(family: &str) -> String {
    let mut out: String = family
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::registry;

    #[test]
    fn series_key_is_canonical() {
        assert_eq!(series_key("m", &[]), "m");
        assert_eq!(
            series_key("m", &[("b", "2"), ("a", "1")]),
            "m{a=\"1\",b=\"2\"}"
        );
        // Argument order does not matter.
        assert_eq!(
            series_key("m", &[("a", "1"), ("b", "2")]),
            series_key("m", &[("b", "2"), ("a", "1")])
        );
        // Duplicate keys keep the last value.
        assert_eq!(series_key("m", &[("a", "1"), ("a", "2")]), "m{a=\"2\"}");
    }

    #[test]
    fn label_values_are_escaped() {
        let key = series_key("m", &[("path", "a\"b\\c\nd")]);
        assert_eq!(key, "m{path=\"a\\\"b\\\\c\\nd\"}");
        let (family, body) = split_series(&key);
        assert_eq!(family, "m");
        assert_eq!(body, "path=\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn split_series_handles_unlabeled() {
        assert_eq!(split_series("plain.name"), ("plain.name", ""));
        assert_eq!(split_series("n{a=\"x\"}"), ("n", "a=\"x\""));
        // A `{` inside a label value does not confuse the family split:
        // the family is everything before the FIRST `{`.
        let key = series_key("m", &[("v", "{weird}")]);
        assert_eq!(split_series(&key).0, "m");
    }

    #[test]
    fn prometheus_name_sanitizes() {
        assert_eq!(prometheus_name("f2db.query.ns"), "f2db_query_ns");
        assert_eq!(prometheus_name("a-b c"), "a_b_c");
        assert_eq!(prometheus_name("2fast"), "_2fast");
    }

    #[test]
    fn cardinality_bound_redirects_to_overflow() {
        let r = registry();
        let family = "labels_test.cardinality";
        for i in 0..MAX_SERIES_PER_FAMILY {
            r.counter_with(family, &[("i", &i.to_string())]).incr();
        }
        let dropped_before = r.counter(crate::names::OBS_SERIES_DROPPED).get();
        // One past the bound: lands in the overflow series.
        r.counter_with(family, &[("i", "next")]).add(7);
        r.counter_with(family, &[("i", "next2")]).add(5);
        assert!(r.counter(crate::names::OBS_SERIES_DROPPED).get() >= dropped_before + 2);
        assert_eq!(r.counter(&overflow_series(family)).get(), 12);
        // Existing series keep resolving even when the family is full.
        r.counter_with(family, &[("i", "3")]).incr();
        assert_eq!(r.counter(&series_key(family, &[("i", "3")])).get(), 2);
    }
}
