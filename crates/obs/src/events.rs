//! The structured event journal — the audit trail of the maintenance
//! loop.
//!
//! Metrics answer "how much"; the journal answers "what happened, in
//! what order": every invalidation-driven re-estimation, drift alert,
//! batched time advance and catalog save lands here as one typed
//! [`Event`] with a process-wide sequence number and a wall-clock
//! timestamp. The journal is a fixed-capacity ring (oldest events are
//! dropped once [`Journal::capacity`] is exceeded — a bounded audit
//! trail that can never exhaust memory), with an optional JSONL file
//! sink that persists every event as it is published.
//!
//! Pushes take one short mutex; events are structural (per time
//! advance or re-fit, not per insert or query), so this is far from any
//! hot path. The global journal is process-wide ([`journal`]), matching
//! the metrics registry.

use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Default ring capacity of the global journal.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

/// A typed observability event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A model's forecast error crossed a drift condition (windowed
    /// SMAPE over its threshold, or MAE beyond the baseline by
    /// k·stddev).
    DriftAlert {
        /// Catalog node of the drifting model.
        node: u64,
        /// Windowed SMAPE at the crossing.
        smape: f64,
        /// Windowed MAE at the crossing.
        mae: f64,
        /// The configured SMAPE threshold.
        threshold: f64,
        /// Which condition fired: `"smape_threshold"` or `"variance"`
        /// (see `DriftTrigger::as_str`).
        trigger: &'static str,
    },
    /// A lazy (or sweep-driven) parameter re-estimation resolved.
    ReEstimation {
        /// Catalog node of the model.
        node: u64,
        /// The model's invalidation epoch after the call.
        epoch: u64,
        /// How the single-flight call was satisfied: `"refit"`,
        /// `"waited"` or `"already_valid"`.
        outcome: &'static str,
    },
    /// A batched insert completed a time stamp and the graph advanced.
    BatchAdvance {
        /// Index of the newly appended time stamp.
        time_index: u64,
        /// Incremental model state updates performed.
        model_updates: u64,
        /// Models newly marked invalid by the policy.
        invalidations: u64,
        /// Drift alerts raised during this advance.
        drift_alerts: u64,
    },
    /// The catalog was persisted to disk.
    CatalogSave {
        /// Encoded size in bytes.
        bytes: u64,
    },
    /// A catalog was restored from disk.
    CatalogLoad {
        /// Decoded size in bytes.
        bytes: u64,
    },
    /// The HTTP exporter started serving.
    ServeStart {
        /// The bound address, e.g. `127.0.0.1:9100`.
        addr: String,
    },
    /// A checkpoint recorded the durable WAL position and truncated
    /// fully-covered segments.
    WalCheckpoint {
        /// Highest record sequence number the checkpoint covers.
        checkpoint_seq: u64,
        /// Highest sequence number appended to the log so far.
        last_seq: u64,
        /// Segment files deleted by the truncation.
        truncated_segments: u64,
    },
    /// A write-ahead log was opened and replayed.
    WalRecovery {
        /// Records replayed (past the checkpoint watermark).
        replayed_records: u64,
        /// Torn-tail bytes discarded from the last segment.
        truncated_bytes: u64,
        /// Highest sequence number found in the log.
        last_seq: u64,
        /// The checkpoint watermark the replay started from.
        checkpoint_seq: u64,
    },
    /// A network server completed its graceful drain: it stopped
    /// accepting, answered every queued request, flushed buffered
    /// insert rows into the engine and persisted its state.
    ServeShutdown {
        /// The address the server was bound to.
        addr: String,
        /// Queued requests answered during the drain.
        drained_requests: u64,
        /// Buffered insert rows flushed into the engine.
        flushed_rows: u64,
    },
    /// A follower replica began pulling WAL frames from a primary.
    ReplicaStart {
        /// The primary's address, e.g. `127.0.0.1:9200`.
        primary: String,
        /// The follower's applied watermark at start.
        applied_seq: u64,
    },
    /// A labeled-series family hit its cardinality bound for the first
    /// time in this process — subsequent samples of novel label sets
    /// land in the family's shared overflow series (warning: label
    /// values are likely unbounded, e.g. a raw node id).
    SeriesOverflow {
        /// The metric family that overflowed.
        family: String,
    },
    /// The routing tier started serving in front of a shard fleet.
    RouterStart {
        /// The router's bound address.
        addr: String,
        /// Shards in the topology it loaded.
        shards: u64,
        /// Version of that topology.
        topology_version: u64,
    },
    /// The router marked a shard endpoint unreachable (connect error,
    /// timeout or 5xx); reads fail over to the shard's replica until
    /// [`Event::ShardRecovered`].
    ShardDown {
        /// Topology id of the shard.
        shard: String,
        /// The endpoint that failed, e.g. `127.0.0.1:7001`.
        addr: String,
        /// Short description of the failure.
        error: String,
    },
    /// A previously-down shard endpoint answered a health probe again.
    ShardRecovered {
        /// Topology id of the shard.
        shard: String,
        /// The endpoint that recovered.
        addr: String,
    },
    /// A follower replica was promoted to a writable primary.
    ReplicaPromoted {
        /// The applied watermark when replication sealed.
        applied_seq: u64,
        /// Records replayed from the dead primary's surviving log tail
        /// during promotion (0 when no tail was available).
        tail_records: u64,
        /// Highest sequence number in the promoted engine's log.
        last_seq: u64,
        /// Wall-clock promotion time in nanoseconds.
        promotion_ns: u64,
    },
}

impl Event {
    /// The event's type tag as rendered in JSON.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::DriftAlert { .. } => "DriftAlert",
            Event::ReEstimation { .. } => "ReEstimation",
            Event::BatchAdvance { .. } => "BatchAdvance",
            Event::CatalogSave { .. } => "CatalogSave",
            Event::CatalogLoad { .. } => "CatalogLoad",
            Event::WalCheckpoint { .. } => "WalCheckpoint",
            Event::WalRecovery { .. } => "WalRecovery",
            Event::ServeStart { .. } => "ServeStart",
            Event::ServeShutdown { .. } => "ServeShutdown",
            Event::ReplicaStart { .. } => "ReplicaStart",
            Event::SeriesOverflow { .. } => "SeriesOverflow",
            Event::RouterStart { .. } => "RouterStart",
            Event::ShardDown { .. } => "ShardDown",
            Event::ShardRecovered { .. } => "ShardRecovered",
            Event::ReplicaPromoted { .. } => "ReplicaPromoted",
        }
    }

    /// Serializes the payload fields (without the envelope) as the
    /// inside of a JSON object, e.g. `"node":3,"smape":0.61`.
    fn payload_json(&self) -> String {
        fn f(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        }
        match self {
            Event::DriftAlert {
                node,
                smape,
                mae,
                threshold,
                trigger,
            } => format!(
                "\"node\":{node},\"smape\":{},\"mae\":{},\"threshold\":{},\"trigger\":\"{trigger}\"",
                f(*smape),
                f(*mae),
                f(*threshold)
            ),
            Event::ReEstimation {
                node,
                epoch,
                outcome,
            } => format!("\"node\":{node},\"epoch\":{epoch},\"outcome\":\"{outcome}\""),
            Event::BatchAdvance {
                time_index,
                model_updates,
                invalidations,
                drift_alerts,
            } => format!(
                "\"time_index\":{time_index},\"model_updates\":{model_updates},\"invalidations\":{invalidations},\"drift_alerts\":{drift_alerts}"
            ),
            Event::CatalogSave { bytes } => format!("\"bytes\":{bytes}"),
            Event::CatalogLoad { bytes } => format!("\"bytes\":{bytes}"),
            Event::WalCheckpoint {
                checkpoint_seq,
                last_seq,
                truncated_segments,
            } => format!(
                "\"checkpoint_seq\":{checkpoint_seq},\"last_seq\":{last_seq},\"truncated_segments\":{truncated_segments}"
            ),
            Event::WalRecovery {
                replayed_records,
                truncated_bytes,
                last_seq,
                checkpoint_seq,
            } => format!(
                "\"replayed_records\":{replayed_records},\"truncated_bytes\":{truncated_bytes},\"last_seq\":{last_seq},\"checkpoint_seq\":{checkpoint_seq}"
            ),
            Event::ServeStart { addr } => {
                // Addresses contain no characters needing JSON escapes.
                format!("\"addr\":\"{addr}\"")
            }
            Event::ServeShutdown {
                addr,
                drained_requests,
                flushed_rows,
            } => format!(
                "\"addr\":\"{addr}\",\"drained_requests\":{drained_requests},\"flushed_rows\":{flushed_rows}"
            ),
            Event::ReplicaStart {
                primary,
                applied_seq,
            } => format!("\"primary\":\"{primary}\",\"applied_seq\":{applied_seq}"),
            Event::SeriesOverflow { family } => {
                // Family names are code-controlled dotted paths — no
                // characters needing JSON escapes.
                format!("\"family\":\"{family}\"")
            }
            Event::RouterStart {
                addr,
                shards,
                topology_version,
            } => format!(
                "\"addr\":\"{addr}\",\"shards\":{shards},\"topology_version\":{topology_version}"
            ),
            Event::ShardDown { shard, addr, error } => {
                // Error text comes from arbitrary io errors — escape it.
                let escaped: String = error
                    .chars()
                    .flat_map(|c| match c {
                        '"' => "\\\"".chars().collect::<Vec<_>>(),
                        '\\' => "\\\\".chars().collect(),
                        '\n' => "\\n".chars().collect(),
                        '\r' => "\\r".chars().collect(),
                        '\t' => "\\t".chars().collect(),
                        c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                        c => vec![c],
                    })
                    .collect();
                format!("\"shard\":\"{shard}\",\"addr\":\"{addr}\",\"error\":\"{escaped}\"")
            }
            Event::ShardRecovered { shard, addr } => {
                format!("\"shard\":\"{shard}\",\"addr\":\"{addr}\"")
            }
            Event::ReplicaPromoted {
                applied_seq,
                tail_records,
                last_seq,
                promotion_ns,
            } => format!(
                "\"applied_seq\":{applied_seq},\"tail_records\":{tail_records},\"last_seq\":{last_seq},\"promotion_ns\":{promotion_ns}"
            ),
        }
    }
}

/// An [`Event`] with its journal envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Monotonic sequence number (process-wide, starts at 1).
    pub seq: u64,
    /// Wall-clock publication time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Trace id of the sampled span active when the event was
    /// published, if any — makes `/events` entries joinable against the
    /// distributed-trace exports.
    pub trace_id: Option<u128>,
    /// Span id of that active span.
    pub span_id: Option<u64>,
    /// The event itself.
    pub event: Event,
}

impl TimedEvent {
    /// One JSON object per event — the JSONL line format.
    pub fn to_json(&self) -> String {
        let trace = match (self.trace_id, self.span_id) {
            (Some(t), Some(s)) => {
                format!("\"trace_id\":\"{t:032x}\",\"span_id\":\"{s:016x}\",")
            }
            _ => String::new(),
        };
        format!(
            "{{\"seq\":{},\"unix_ms\":{},{trace}\"type\":\"{}\",{}}}",
            self.seq,
            self.unix_ms,
            self.event.kind(),
            self.event.payload_json()
        )
    }
}

impl fmt::Display for TimedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_json())
    }
}

#[derive(Default)]
struct JournalInner {
    ring: VecDeque<TimedEvent>,
    sink: Option<BufWriter<File>>,
}

/// The bounded event ring with an optional JSONL sink.
pub struct Journal {
    capacity: usize,
    seq: AtomicU64,
    total: AtomicU64,
    inner: Mutex<JournalInner>,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("capacity", &self.capacity)
            .field("total", &self.total())
            .finish()
    }
}

fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl Journal {
    /// Creates a journal holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Journal {
        Journal {
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            total: AtomicU64::new(0),
            inner: Mutex::new(JournalInner::default()),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Publishes an event: assigns seq + timestamp, appends to the ring
    /// (dropping the oldest event when full) and writes one JSONL line
    /// to the sink, if any. Returns the assigned sequence number.
    pub fn publish(&self, event: Event) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.total.fetch_add(1, Ordering::Relaxed);
        crate::counter(crate::names::OBS_JOURNAL_EVENTS).incr();
        let trace = crate::trace::current_sampled_pair();
        let timed = TimedEvent {
            seq,
            unix_ms: now_unix_ms(),
            trace_id: trace.map(|(t, _)| t),
            span_id: trace.map(|(_, s)| s),
            event,
        };
        let mut inner = self.inner.lock().unwrap();
        if let Some(sink) = inner.sink.as_mut() {
            // Line-buffered-ish: write + flush per event so a crash (or
            // an abrupt test-process exit) loses nothing. Events are
            // structural, so the syscall rate is negligible.
            let _ = writeln!(sink, "{}", timed.to_json());
            let _ = sink.flush();
        }
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(timed);
        seq
    }

    /// The most recent `n` events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<TimedEvent> {
        let inner = self.inner.lock().unwrap();
        let skip = inner.ring.len().saturating_sub(n);
        inner.ring.iter().skip(skip).cloned().collect()
    }

    /// Total events ever published (including ones the ring dropped).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Attaches a JSONL file sink (truncating `path`); every subsequent
    /// publish appends one line. Replaces any previous sink.
    pub fn set_jsonl_sink(&self, path: &Path) -> std::io::Result<()> {
        let file = File::create(path)?;
        self.inner.lock().unwrap().sink = Some(BufWriter::new(file));
        Ok(())
    }

    /// Detaches the JSONL sink, flushing buffered lines.
    pub fn close_sink(&self) {
        if let Some(mut sink) = self.inner.lock().unwrap().sink.take() {
            let _ = sink.flush();
        }
    }

    /// Renders the most recent `n` events as a JSON array (oldest
    /// first) — the `/events` response body.
    pub fn recent_json(&self, n: usize) -> String {
        let events = self.recent(n);
        let mut out = String::from("[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push(']');
        out
    }
}

/// The process-global journal (capacity
/// [`DEFAULT_JOURNAL_CAPACITY`]).
pub fn journal() -> &'static Journal {
    static JOURNAL: OnceLock<Journal> = OnceLock::new();
    JOURNAL.get_or_init(|| Journal::with_capacity(DEFAULT_JOURNAL_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_assigns_increasing_seq() {
        let j = Journal::with_capacity(8);
        let a = j.publish(Event::CatalogSave { bytes: 10 });
        let b = j.publish(Event::CatalogLoad { bytes: 10 });
        assert!(b > a);
        let recent = j.recent(10);
        assert_eq!(recent.len(), 2);
        assert!(recent[0].seq < recent[1].seq);
        assert_eq!(j.total(), 2);
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let j = Journal::with_capacity(3);
        for i in 0..5 {
            j.publish(Event::CatalogSave { bytes: i });
        }
        let recent = j.recent(10);
        assert_eq!(recent.len(), 3);
        assert_eq!(
            recent
                .iter()
                .map(|e| match e.event {
                    Event::CatalogSave { bytes } => bytes,
                    _ => unreachable!(),
                })
                .collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(j.total(), 5);
    }

    #[test]
    fn event_json_is_well_formed() {
        let j = Journal::with_capacity(8);
        j.publish(Event::DriftAlert {
            node: 3,
            smape: 0.625,
            mae: 12.5,
            threshold: 0.5,
            trigger: "smape_threshold",
        });
        j.publish(Event::ReEstimation {
            node: 3,
            epoch: 2,
            outcome: "refit",
        });
        j.publish(Event::BatchAdvance {
            time_index: 33,
            model_updates: 7,
            invalidations: 1,
            drift_alerts: 1,
        });
        let json = j.recent_json(10);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"type\":\"DriftAlert\""), "{json}");
        assert!(json.contains("\"smape\":0.625"), "{json}");
        assert!(json.contains("\"trigger\":\"smape_threshold\""), "{json}");
        assert!(json.contains("\"outcome\":\"refit\""), "{json}");
        assert!(json.contains("\"time_index\":33"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn jsonl_sink_persists_every_event() {
        let j = Journal::with_capacity(2);
        let path = std::env::temp_dir().join(format!(
            "fdc_journal_test_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        j.set_jsonl_sink(&path).unwrap();
        for i in 0..4 {
            j.publish(Event::CatalogSave { bytes: i });
        }
        j.close_sink();
        let content = std::fs::read_to_string(&path).unwrap();
        // The ring kept 2 events, the sink all 4.
        assert_eq!(content.lines().count(), 4);
        for line in content.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"type\":\"CatalogSave\""));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn events_inside_a_sampled_span_carry_trace_ids() {
        let j = Journal::with_capacity(8);
        j.publish(Event::CatalogSave { bytes: 1 });
        let ctx = crate::trace::TraceContext::root(true);
        {
            let _g = crate::trace::activate(ctx);
            j.publish(Event::BatchAdvance {
                time_index: 7,
                model_updates: 1,
                invalidations: 0,
                drift_alerts: 0,
            });
        }
        let recent = j.recent(2);
        assert_eq!(recent[0].trace_id, None);
        assert_eq!(recent[0].span_id, None);
        assert!(!recent[0].to_json().contains("trace_id"));
        assert_eq!(recent[1].trace_id, Some(ctx.trace_id));
        assert_eq!(recent[1].span_id, Some(ctx.span_id));
        let json = recent[1].to_json();
        assert!(
            json.contains(&format!("\"trace_id\":\"{:032x}\"", ctx.trace_id)),
            "{json}"
        );
        assert!(
            json.contains(&format!("\"span_id\":\"{:016x}\"", ctx.span_id)),
            "{json}"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn unsampled_span_events_stay_bare() {
        let j = Journal::with_capacity(8);
        let _g = crate::trace::activate(crate::trace::TraceContext::root(false));
        j.publish(Event::CatalogSave { bytes: 2 });
        assert_eq!(j.recent(1)[0].trace_id, None);
    }

    #[test]
    fn series_overflow_event_renders_family() {
        let j = Journal::with_capacity(8);
        j.publish(Event::SeriesOverflow {
            family: "f2db.node.smape".to_string(),
        });
        let json = j.recent_json(1);
        assert!(json.contains("\"type\":\"SeriesOverflow\""), "{json}");
        assert!(json.contains("\"family\":\"f2db.node.smape\""), "{json}");
    }

    #[test]
    fn recent_handles_small_n() {
        let j = Journal::with_capacity(8);
        for i in 0..5 {
            j.publish(Event::CatalogSave { bytes: i });
        }
        let last_two = j.recent(2);
        assert_eq!(last_two.len(), 2);
        assert_eq!(last_two[1].seq, 5);
    }
}
