//! Coverage-vs-latency advice: pilot-measure the per-cell forecast cost
//! on this hardware, then plan which nodes must answer from a stratified
//! sample to stay inside a query-latency budget.
//!
//! The advisor's classical trade-off is model coverage against
//! maintenance cost (§IV). High-cardinality cubes add a latency axis: an
//! aggregate over 10⁶ base cells cannot sum a million per-cell forecasts
//! inside an interactive budget no matter how good the configuration is.
//! This module bridges the advisor and the sampling plane — it fits a
//! small pilot of real base cells to observe the per-cell cost on the
//! machine at hand (mirroring how [`crate::control`] calibrates phase
//! budgets from observed timings) and feeds that measurement into
//! [`fdc_approx::plan_coverage`].

use fdc_approx::{CoverageOptions, CoveragePlan};
use fdc_cube::Dataset;
use fdc_forecast::{FitOptions, ModelSpec};
use std::time::Instant;

/// Inputs of the latency advisor.
#[derive(Debug, Clone)]
pub struct LatencyBudget {
    /// Per-query latency budget in seconds.
    pub query_budget_secs: f64,
    /// Base cells fitted to measure the per-cell forecast cost.
    pub pilot_cells: usize,
    /// Forecast steps evaluated per pilot cell.
    pub pilot_horizon: usize,
    /// Strata the sampling plane will use.
    pub strata: usize,
    /// Hard per-stratum reservoir cap.
    pub max_per_stratum: usize,
    /// Nodes below this population always answer exactly.
    pub min_population: usize,
}

impl Default for LatencyBudget {
    fn default() -> Self {
        LatencyBudget {
            query_budget_secs: 0.010,
            pilot_cells: 32,
            pilot_horizon: 4,
            strata: 8,
            max_per_stratum: 64,
            min_population: 256,
        }
    }
}

/// Measures the mean cost of forecasting one base cell, in seconds, by
/// fitting and evaluating a pilot of evenly spaced base series. The
/// measurement includes the model *evaluation* only — fits are amortized
/// over the plane's lifetime, so the query path pays forecasts alone.
/// Returns a small positive floor when the pilot is degenerate.
pub fn pilot_forecast_cost(dataset: &Dataset, budget: &LatencyBudget) -> f64 {
    const FLOOR_SECS: f64 = 1e-8;
    let bases = dataset.graph().base_nodes();
    if bases.is_empty() || budget.pilot_cells == 0 {
        return FLOOR_SECS;
    }
    let stride = (bases.len() / budget.pilot_cells.min(bases.len())).max(1);
    let period = dataset.series(bases[0]).granularity().seasonal_period();
    let spec = ModelSpec::default_for_period(period);
    let fit = FitOptions::default();
    let mut models = Vec::new();
    for &b in bases.iter().step_by(stride).take(budget.pilot_cells) {
        let series = dataset.series(b);
        let spec = if series.len() >= spec.min_observations() {
            spec.clone()
        } else {
            ModelSpec::Ses
        };
        if let Ok(m) = spec.fit(series, &fit) {
            models.push(m);
        }
    }
    if models.is_empty() {
        return FLOOR_SECS;
    }
    let horizon = budget.pilot_horizon.max(1);
    let start = Instant::now();
    let mut sink = 0.0_f64;
    for m in &models {
        for v in m.forecast(horizon) {
            sink += v;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    // Keep `sink` observable so the measurement loop is not elided.
    let jitter = if sink.is_nan() { FLOOR_SECS } else { 0.0 };
    (elapsed / models.len() as f64).max(FLOOR_SECS) + jitter
}

/// Pilot-measures the per-cell forecast cost and plans node coverage
/// against `budget`: nodes whose exact aggregation would exceed the
/// query budget are marked for the sampling plane, everything else stays
/// exact. Feed the returned plan to `F2db::with_approx_plan`.
pub fn advise_coverage(dataset: &Dataset, budget: &LatencyBudget) -> CoveragePlan {
    let cost = pilot_forecast_cost(dataset, budget);
    fdc_approx::plan_coverage(
        dataset,
        &CoverageOptions {
            query_budget_secs: budget.query_budget_secs,
            forecast_cost_secs: cost,
            strata: budget.strata,
            max_per_stratum: budget.max_per_stratum,
            min_population: budget.min_population,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_datagen::{generate_highcard, HighCardSpec};

    fn cube() -> Dataset {
        generate_highcard(&HighCardSpec {
            base_cells: 400,
            groups: 20,
            length: 16,
            ..HighCardSpec::new(400, 7)
        })
        .dataset
    }

    #[test]
    fn pilot_cost_is_positive_and_finite() {
        let ds = cube();
        let cost = pilot_forecast_cost(&ds, &LatencyBudget::default());
        assert!(cost.is_finite() && cost > 0.0, "cost = {cost}");
        // A per-cell forecast is fast; anything near a millisecond means
        // the pilot measured fitting, not forecasting.
        assert!(cost < 1e-3, "cost = {cost}");
    }

    #[test]
    fn tight_budgets_sample_loose_budgets_stay_exact() {
        let ds = cube();
        let tight = advise_coverage(
            &ds,
            &LatencyBudget {
                query_budget_secs: 1e-9,
                min_population: 50,
                ..LatencyBudget::default()
            },
        );
        assert!(tight.sampled_count() > 0);
        let loose = advise_coverage(
            &ds,
            &LatencyBudget {
                query_budget_secs: 3600.0,
                min_population: 50,
                ..LatencyBudget::default()
            },
        );
        assert_eq!(loose.sampled_count(), 0);
        assert!(loose.exact_count() >= tight.exact_count());
    }
}
