//! Human-readable configuration reports — the output phase's view of a
//! configuration (§IV-D: the advisor "continuously outputs the forecast
//! error as well as the model costs of the current best configuration").

use fdc_cube::{derive::classify_scheme, Configuration, Dataset, SchemeKind};
use std::fmt::Write as _;
use std::time::Duration;

/// A structured summary of a model configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigurationReport {
    /// Overall error (mean node SMAPE).
    pub error: f64,
    /// Number of stored models.
    pub model_count: usize,
    /// Total nodes in the graph.
    pub node_count: usize,
    /// Total model cost.
    pub total_cost: Duration,
    /// Models per aggregation level, index = level.
    pub models_per_level: Vec<usize>,
    /// Nodes served per scheme kind: (direct, aggregation,
    /// disaggregation, general, unserved).
    pub scheme_counts: SchemeCounts,
    /// The worst-served nodes: `(label, error)`, highest error first.
    pub worst_nodes: Vec<(String, f64)>,
}

/// Node counts per derivation scheme kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchemeCounts {
    /// Nodes using their own model.
    pub direct: usize,
    /// Nodes aggregating a full hyperedge of child models.
    pub aggregation: usize,
    /// Nodes disaggregating an ancestor model.
    pub disaggregation: usize,
    /// Nodes using any other source combination.
    pub general: usize,
    /// Nodes without any derivation scheme.
    pub unserved: usize,
}

/// Builds the report for a configuration over its data set. `top_k`
/// bounds the worst-nodes list.
pub fn summarize(
    dataset: &Dataset,
    configuration: &Configuration,
    top_k: usize,
) -> ConfigurationReport {
    let g = dataset.graph();
    let mut models_per_level = vec![0usize; g.max_level() + 1];
    for (v, _) in configuration.models() {
        models_per_level[g.level(v)] += 1;
    }
    let mut counts = SchemeCounts::default();
    let mut errors: Vec<(usize, f64)> = Vec::with_capacity(g.node_count());
    for v in 0..g.node_count() {
        let est = configuration.estimate(v);
        errors.push((v, est.error));
        match &est.scheme {
            None => counts.unserved += 1,
            Some(s) => match classify_scheme(dataset, &s.sources, v) {
                SchemeKind::Direct => counts.direct += 1,
                SchemeKind::Aggregation => counts.aggregation += 1,
                SchemeKind::Disaggregation => counts.disaggregation += 1,
                SchemeKind::General => counts.general += 1,
            },
        }
    }
    errors.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let worst_nodes = errors
        .into_iter()
        .take(top_k)
        .map(|(v, e)| (g.coord(v).display(g.schema()), e))
        .collect();
    ConfigurationReport {
        error: configuration.overall_error(),
        model_count: configuration.model_count(),
        node_count: g.node_count(),
        total_cost: configuration.total_cost(),
        models_per_level,
        scheme_counts: counts,
        worst_nodes,
    }
}

impl std::fmt::Display for ConfigurationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Configuration: error {:.4}, {} models over {} nodes, cost {:?}",
            self.error, self.model_count, self.node_count, self.total_cost
        )?;
        let mut levels = String::new();
        for (l, n) in self.models_per_level.iter().enumerate() {
            if *n > 0 {
                let _ = write!(levels, " L{l}:{n}");
            }
        }
        writeln!(f, "  models per level:{levels}")?;
        let c = &self.scheme_counts;
        writeln!(
            f,
            "  schemes: {} direct, {} aggregation, {} disaggregation, {} general, {} unserved",
            c.direct, c.aggregation, c.disaggregation, c.general, c.unserved
        )?;
        if !self.worst_nodes.is_empty() {
            writeln!(f, "  worst-served nodes:")?;
            for (label, err) in &self.worst_nodes {
                writeln!(f, "    {label:<24} {err:.4}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advisor::{Advisor, AdvisorOptions};
    use fdc_datagen::tourism_proxy;

    #[test]
    fn summary_counts_are_consistent() {
        let ds = tourism_proxy(1);
        let outcome = Advisor::new(&ds, AdvisorOptions::default()).unwrap().run();
        let report = summarize(&ds, &outcome.configuration, 3);
        assert_eq!(report.node_count, ds.node_count());
        assert_eq!(report.model_count, outcome.model_count);
        assert!((report.error - outcome.error).abs() < 1e-12);
        let c = &report.scheme_counts;
        assert_eq!(
            c.direct + c.aggregation + c.disaggregation + c.general + c.unserved,
            ds.node_count()
        );
        assert_eq!(
            report.models_per_level.iter().sum::<usize>(),
            outcome.model_count
        );
        assert_eq!(report.worst_nodes.len(), 3);
        // Worst list sorted descending.
        assert!(report.worst_nodes[0].1 >= report.worst_nodes[2].1);
    }

    #[test]
    fn display_renders_all_sections() {
        let ds = tourism_proxy(2);
        let outcome = Advisor::new(&ds, AdvisorOptions::default()).unwrap().run();
        let text = summarize(&ds, &outcome.configuration, 2).to_string();
        assert!(text.contains("Configuration: error"));
        assert!(text.contains("models per level"));
        assert!(text.contains("schemes:"));
        assert!(text.contains("worst-served"));
    }

    #[test]
    fn empty_configuration_reports_unserved_nodes() {
        let ds = tourism_proxy(3);
        let cfg = fdc_cube::Configuration::new(ds.node_count());
        let report = summarize(&ds, &cfg, 1);
        assert_eq!(report.scheme_counts.unserved, ds.node_count());
        assert_eq!(report.model_count, 0);
    }
}
