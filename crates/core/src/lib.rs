//! # fdc-core — the model configuration advisor
//!
//! The primary contribution of the paper (§III–IV): an offline advisor
//! that, given a multi-dimensional time series data set, iteratively
//! determines the best set of forecast models — a *model configuration* —
//! trading forecast accuracy against model costs.
//!
//! The advisor runs an iterative four-phase process:
//!
//! 1. **Candidate selection** ([`candidate`]) — cheap heuristic
//!    *indicators* ([`indicator`]) rank nodes that would benefit from a
//!    model (`V_A`) and models that might be deleted (`V_R`);
//! 2. **Evaluation** ([`evaluation`]) — models are actually created for
//!    the top-n positive candidates (in parallel), their real effect on
//!    the cube is measured, and an acceptance criterion weighting error
//!    against cost (Eq. 8) decides admission; deletion candidates are
//!    handled symmetrically;
//! 3. **Control** ([`control`]) — the advisor's parameters (indicator
//!    size `|I|`, candidate threshold `γ`, acceptance weight `α`) are
//!    regulated from data characteristics, observed phase timings and
//!    the hardware;
//! 4. **Output** ([`advisor`]) — per-iteration statistics stream out and
//!    stop criteria (error-, cost- or schedule-based) decide termination,
//!    so a valid configuration is available at *any* time.
//!
//! The optional asynchronous [`multisource`] component searches
//! derivation schemes with several source nodes (§IV-C.2).

//! ## Example
//!
//! ```
//! use fdc_core::{Advisor, AdvisorOptions};
//! use fdc_datagen::{generate_cube, GenSpec};
//!
//! let cube = generate_cube(&GenSpec::new(12, 40, 1));
//! let outcome = Advisor::new(&cube.dataset, AdvisorOptions::default()).unwrap().run();
//! assert!(outcome.model_count >= 1);
//! assert!(outcome.error < 1.0);
//! // The configuration serves every node with a derivation scheme.
//! for v in 0..cube.dataset.node_count() {
//!     assert!(outcome.configuration.estimate(v).scheme.is_some());
//! }
//! ```

pub mod advisor;
pub mod candidate;
pub mod control;
pub mod coverage;
pub mod evaluation;
pub mod indicator;
pub mod multisource;
pub mod report;

pub use advisor::{
    Advisor, AdvisorOptions, AdvisorOutcome, IterationStats, StopCriteria, StopReason,
};
pub use candidate::{CandidateSet, RankedCandidate};
pub use control::ControlState;
pub use coverage::{advise_coverage, pilot_forecast_cost, LatencyBudget};
pub use evaluation::AcceptanceCriterion;
pub use indicator::{IndicatorOptions, IndicatorStore, LocalIndicator};
pub use multisource::MultiSourceSearch;
pub use report::{summarize, ConfigurationReport, SchemeCounts};
