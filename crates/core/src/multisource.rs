//! Asynchronous multi-source scheme search (§IV-C.2).
//!
//! The indicators only consider derivation schemes with a *single*
//! source. Schemes with several sources can further improve accuracy, so
//! an additional component "iteratively selects a target node and a
//! random number of source nodes from the time series graph, where the
//! possibility of selecting a source node decreases with increasing
//! distance from the target node", evaluates the scheme and applies it if
//! the configuration improves.
//!
//! Two modes are provided:
//!
//! * [`MultiSourceSearch::step`] — synchronous: one propose/evaluate/adopt
//!   round, used by the advisor loop (deterministic and easy to test);
//! * [`spawn_proposer`] — a background thread streaming proposals through
//!   a bounded `std::sync::mpsc` channel, matching the paper's
//!   asynchronous design; the consumer evaluates and applies them at its
//!   own pace.

use fdc_cube::{Configuration, CubeSplit, Dataset, NodeId};
use fdc_rng::Rng;
use std::sync::mpsc::{sync_channel, Receiver};

/// A proposed derivation scheme: derive `target` from `sources`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proposal {
    /// The node whose forecast would be derived.
    pub target: NodeId,
    /// The proposed source nodes (all carry models at proposal time).
    pub sources: Vec<NodeId>,
}

/// Distance-decaying sampling weight: `1 / (1 + d)²`.
fn source_weight(distance: usize) -> f64 {
    let d = distance as f64;
    1.0 / ((1.0 + d) * (1.0 + d))
}

/// Samples one proposal: a uniform random target plus 1..=`max_sources`
/// model nodes drawn without replacement, weighted by proximity to the
/// target. Returns `None` when no model node exists.
fn sample_proposal(
    rng: &mut Rng,
    node_count: usize,
    distance: impl Fn(NodeId, NodeId) -> usize,
    model_nodes: &[NodeId],
    max_sources: usize,
) -> Option<Proposal> {
    if model_nodes.is_empty() || node_count == 0 {
        return None;
    }
    let target = rng.usize_below(node_count);
    let m = (1 + rng.usize_below(max_sources.max(1))).min(model_nodes.len());
    // Weighted sampling without replacement (sequential roulette).
    let mut pool: Vec<NodeId> = model_nodes.to_vec();
    let mut weights: Vec<f64> = pool
        .iter()
        .map(|&s| source_weight(distance(target, s)))
        .collect();
    let mut sources = Vec::with_capacity(m);
    for _ in 0..m {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            break;
        }
        let mut pick = rng.f64_range(0.0, total);
        let mut idx = 0;
        for (i, &w) in weights.iter().enumerate() {
            if pick < w {
                idx = i;
                break;
            }
            pick -= w;
            idx = i;
        }
        sources.push(pool.swap_remove(idx));
        weights.swap_remove(idx);
    }
    if sources.is_empty() {
        return None;
    }
    sources.sort_unstable();
    Some(Proposal { target, sources })
}

/// Synchronous multi-source searcher owned by the advisor.
#[derive(Debug)]
pub struct MultiSourceSearch {
    rng: Rng,
    /// Maximum number of sources per proposal.
    pub max_sources: usize,
}

impl MultiSourceSearch {
    /// Creates a searcher with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        MultiSourceSearch {
            rng: Rng::seed_from_u64(seed),
            max_sources: 3,
        }
    }

    /// One propose/evaluate/adopt round. Returns `true` when a proposal
    /// improved the configuration.
    pub fn step(
        &mut self,
        dataset: &Dataset,
        split: &CubeSplit,
        configuration: &mut Configuration,
    ) -> bool {
        let model_nodes = configuration.model_nodes();
        let g = dataset.graph();
        let Some(p) = sample_proposal(
            &mut self.rng,
            dataset.node_count(),
            |a, b| g.distance(a, b),
            &model_nodes,
            self.max_sources,
        ) else {
            return false;
        };
        configuration.adopt_if_better(dataset, split, &p.sources, p.target)
    }
}

/// Spawns a background proposer thread that streams `count` proposals
/// through a bounded channel. `coords` are the graph coordinates (value
/// vectors) used for the distance decay; `model_nodes` is the frozen set
/// of nodes carrying models at spawn time.
pub fn spawn_proposer(
    coords: Vec<Vec<u32>>,
    model_nodes: Vec<NodeId>,
    count: usize,
    max_sources: usize,
    seed: u64,
) -> Receiver<Proposal> {
    let (tx, rx) = sync_channel(64);
    std::thread::spawn(move || {
        let mut rng = Rng::seed_from_u64(seed);
        let n = coords.len();
        let distance = |a: NodeId, b: NodeId| -> usize {
            coords[a]
                .iter()
                .zip(&coords[b])
                .filter(|(x, y)| x != y)
                .count()
        };
        for _ in 0..count {
            match sample_proposal(&mut rng, n, distance, &model_nodes, max_sources) {
                Some(p) => {
                    if tx.send(p).is_err() {
                        break; // consumer hung up
                    }
                }
                None => break,
            }
        }
    });
    rx
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_cube::ConfiguredModel;
    use fdc_datagen::tourism_proxy;
    use fdc_forecast::{FitOptions, ModelSpec};

    fn with_models(ds: &Dataset, split: &CubeSplit, nodes: &[NodeId]) -> Configuration {
        let mut cfg = Configuration::new(ds.node_count());
        for &v in nodes {
            let m = ConfiguredModel::fit(
                split,
                v,
                &ModelSpec::default_for_period(4),
                &FitOptions::default(),
            )
            .unwrap();
            cfg.insert_model(v, m);
        }
        cfg
    }

    #[test]
    fn sampling_respects_source_pool_and_count() {
        let mut rng = Rng::seed_from_u64(1);
        let models = vec![2usize, 5, 7];
        for _ in 0..50 {
            let p = sample_proposal(&mut rng, 20, |_, _| 1, &models, 3).unwrap();
            assert!(!p.sources.is_empty() && p.sources.len() <= 3);
            assert!(p.sources.iter().all(|s| models.contains(s)));
            // No duplicates.
            let mut sorted = p.sources.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), p.sources.len());
            assert!(p.target < 20);
        }
    }

    #[test]
    fn sampling_prefers_close_sources() {
        // Node 0 is distance 0 from target; node 1 is distance 5. With
        // many samples, node 0 must be drawn far more often in size-1
        // proposals.
        let mut rng = Rng::seed_from_u64(2);
        let models = vec![0usize, 1];
        let mut near = 0;
        let mut far = 0;
        for _ in 0..400 {
            let p = sample_proposal(
                &mut rng,
                1, // force target 0
                |_, s| if s == 0 { 0 } else { 5 },
                &models,
                1,
            )
            .unwrap();
            match p.sources[0] {
                0 => near += 1,
                _ => far += 1,
            }
        }
        assert!(near > far * 5, "near {near}, far {far}");
    }

    #[test]
    fn empty_model_set_yields_no_proposal() {
        let mut rng = Rng::seed_from_u64(3);
        assert!(sample_proposal(&mut rng, 10, |_, _| 0, &[], 3).is_none());
    }

    #[test]
    fn step_can_improve_configuration() {
        let ds = tourism_proxy(1);
        let split = CubeSplit::new(&ds, 0.8);
        // Give models to two base nodes; many nodes start unserved, so
        // *some* proposal must eventually stick.
        let nodes: Vec<NodeId> = ds.graph().base_nodes()[..2].to_vec();
        let mut cfg = with_models(&ds, &split, &nodes);
        let before = cfg.overall_error();
        let mut search = MultiSourceSearch::new(7);
        let mut improved = false;
        for _ in 0..200 {
            improved |= search.step(&ds, &split, &mut cfg);
        }
        assert!(improved);
        assert!(cfg.overall_error() < before);
    }

    #[test]
    fn background_proposer_streams_requested_count() {
        let ds = tourism_proxy(1);
        let coords: Vec<Vec<u32>> = (0..ds.node_count())
            .map(|v| ds.graph().coord(v).values().to_vec())
            .collect();
        let rx = spawn_proposer(coords, vec![0, 1, 2], 25, 3, 11);
        let proposals: Vec<Proposal> = rx.iter().collect();
        assert_eq!(proposals.len(), 25);
        for p in &proposals {
            assert!(p.target < ds.node_count());
            assert!(!p.sources.is_empty());
        }
    }

    #[test]
    fn background_proposer_stops_when_receiver_dropped() {
        let rx = spawn_proposer(vec![vec![0]; 4], vec![0, 1], 1_000_000, 2, 13);
        let first = rx.recv().unwrap();
        assert!(first.target < 4);
        drop(rx); // thread must exit; the test passing at all proves no hang
    }
}
