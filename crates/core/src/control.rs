//! Control phase (§IV-C.1): regulation of the advisor parameters.
//!
//! Three parameters are regulated:
//!
//! * **`|I|` (indicator size)** — sized so all indicator arrays fit in a
//!   memory budget: each installed or cached local indicator costs
//!   roughly `|I| · 16` bytes (target id + value), and in the worst case
//!   one array exists per node.
//! * **`γ` (candidate threshold)** — initialized, assuming normally
//!   distributed indicator values, so the expected number of positive
//!   candidates roughly equals the number of processors; afterwards
//!   adapted each iteration by comparing the time spent in candidate
//!   selection with the time spent in evaluation. Candidate selection
//!   "should not be more expensive than the evaluation phase, otherwise
//!   we could just invest the time to directly create forecast models".
//! * **`α` (acceptance weight)** — starts low (only high-benefit models
//!   are accepted) and is increased when (1) a number of rejects
//!   occurred, (2) the per-α iteration cap is reached, or (3) the error
//!   improvement became too small; the advisor stops when α exceeds its
//!   limit.

use std::time::Duration;

/// Mutable control state carried across advisor iterations.
#[derive(Debug, Clone)]
pub struct ControlState {
    /// Current candidate threshold multiplier γ (Eq. 5).
    pub gamma: f64,
    /// Current acceptance weight α (Eq. 8).
    pub alpha: f64,
    /// α schedule: increment applied on each trigger.
    pub alpha_step: f64,
    /// α value past which the advisor terminates.
    pub alpha_limit: f64,
    /// Whether γ adapts to phase timings.
    pub adaptive_gamma: bool,
    /// Rejects since the last α increase.
    rejects: usize,
    /// Iterations since the last α increase.
    iterations: usize,
    /// Rejects that trigger an α increase.
    pub reject_threshold: usize,
    /// Iteration cap per α level.
    pub iteration_threshold: usize,
    /// Minimal per-iteration error improvement; below it α increases.
    pub min_improvement: f64,
}

impl ControlState {
    /// Creates the control state with the paper's defaults: α starts at
    /// 0.1 and is continuously increased until it exceeds `alpha_limit`.
    pub fn new(initial_alpha: f64, alpha_limit: f64, adaptive_gamma: bool) -> Self {
        ControlState {
            gamma: 0.0,
            alpha: initial_alpha,
            alpha_step: 0.1,
            alpha_limit,
            adaptive_gamma,
            rejects: 0,
            iterations: 0,
            reject_threshold: 4,
            iteration_threshold: 10,
            min_improvement: 1e-6,
        }
    }

    /// Initializes γ so that, under a normal approximation of the global
    /// indicator distribution, the expected number of positive candidates
    /// equals `target_candidates` out of `node_count` nodes:
    /// `P(I > μ + γσ) = target/n  ⇒  γ = Φ⁻¹(1 − target/n)`.
    pub fn init_gamma(&mut self, target_candidates: usize, node_count: usize) {
        let n = node_count.max(1) as f64;
        let p = (target_candidates.max(1) as f64 / n).clamp(1e-6, 0.5);
        self.gamma = inverse_normal_cdf(1.0 - p).clamp(-2.0, 4.0);
    }

    /// Adapts γ from the observed phase timings: if candidate selection
    /// got more expensive than evaluation, raise γ (fewer candidates);
    /// if evaluation dominates, lower γ so more candidates are examined
    /// by the cheap indicators before the expensive model builds.
    pub fn adapt_gamma(&mut self, selection: Duration, evaluation: Duration) {
        if !self.adaptive_gamma {
            return;
        }
        if selection > evaluation {
            self.gamma = (self.gamma + 0.1).min(4.0);
        } else {
            self.gamma = (self.gamma - 0.1).max(-2.0);
        }
    }

    /// Records the outcome of one iteration; returns `true` when the α
    /// schedule advanced.
    pub fn record_iteration(&mut self, rejects_this_iter: usize, error_improvement: f64) -> bool {
        self.rejects += rejects_this_iter;
        self.iterations += 1;
        let trigger = self.rejects >= self.reject_threshold
            || self.iterations >= self.iteration_threshold
            || error_improvement < self.min_improvement;
        if trigger {
            self.alpha += self.alpha_step;
            self.rejects = 0;
            self.iterations = 0;
        }
        trigger
    }

    /// Whether the α schedule is exhausted (advisor should stop if no
    /// other criterion fired earlier).
    pub fn schedule_exhausted(&self) -> bool {
        self.alpha > self.alpha_limit
    }

    /// The α used for acceptance, capped at 1 (α beyond 1 only signals
    /// schedule exhaustion).
    pub fn effective_alpha(&self) -> f64 {
        self.alpha.min(1.0)
    }
}

/// Chooses the indicator size `|I|` so that one local array per node fits
/// into the memory budget (16 bytes per entry), clamped to
/// `[min_size, node_count]`.
pub fn indicator_size_for_budget(
    node_count: usize,
    memory_budget_bytes: usize,
    min_size: usize,
) -> usize {
    let per_entry = 16usize;
    let per_node = memory_budget_bytes / node_count.max(1) / per_entry;
    per_node.clamp(min_size.min(node_count.max(1)), node_count.max(1))
}

/// Acklam's rational approximation of the inverse standard normal CDF
/// (absolute error < 1.15e-9 — far more precision than γ needs).
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_normal_known_quantiles() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.8413447) - 1.0).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-4);
        assert_eq!(inverse_normal_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inverse_normal_cdf(1.0), f64::INFINITY);
    }

    #[test]
    fn init_gamma_targets_candidate_count() {
        let mut c = ControlState::new(0.1, 1.0, true);
        // 12 candidates out of 10_000 → a high γ (small tail).
        c.init_gamma(12, 10_000);
        assert!(c.gamma > 2.0, "γ = {}", c.gamma);
        // 12 out of 24 → γ ≈ 0 (half the nodes).
        c.init_gamma(12, 24);
        assert!(c.gamma.abs() < 0.1, "γ = {}", c.gamma);
    }

    #[test]
    fn adapt_gamma_follows_timings() {
        let mut c = ControlState::new(0.1, 1.0, true);
        c.gamma = 1.0;
        c.adapt_gamma(Duration::from_millis(10), Duration::from_millis(100));
        assert!(c.gamma < 1.0, "evaluation-heavy → more candidates");
        let g = c.gamma;
        c.adapt_gamma(Duration::from_millis(100), Duration::from_millis(10));
        assert!(c.gamma > g, "selection-heavy → fewer candidates");
    }

    #[test]
    fn adapt_gamma_noop_when_disabled() {
        let mut c = ControlState::new(0.1, 1.0, false);
        let g = c.gamma;
        c.adapt_gamma(Duration::from_millis(100), Duration::from_millis(1));
        assert_eq!(c.gamma, g);
    }

    #[test]
    fn alpha_increases_on_rejects() {
        let mut c = ControlState::new(0.1, 1.0, true);
        let a0 = c.alpha;
        for i in 1..c.reject_threshold {
            assert!(!c.record_iteration(1, 1.0), "advanced after {i} rejects");
        }
        assert!(c.record_iteration(1, 1.0), "threshold rejects accumulated");
        assert!(c.alpha > a0);
    }

    #[test]
    fn alpha_increases_on_small_improvement() {
        let mut c = ControlState::new(0.1, 1.0, true);
        assert!(c.record_iteration(0, 0.0));
    }

    #[test]
    fn alpha_increases_on_iteration_cap() {
        let mut c = ControlState::new(0.1, 1.0, true);
        let mut advanced = false;
        for _ in 0..c.iteration_threshold {
            advanced = c.record_iteration(0, 1.0);
        }
        assert!(advanced);
    }

    #[test]
    fn schedule_exhausts_past_limit() {
        let mut c = ControlState::new(0.95, 1.0, true);
        assert!(!c.schedule_exhausted());
        c.record_iteration(0, 0.0); // 0.95 → 1.10
        assert!(c.schedule_exhausted());
        assert!((c.effective_alpha() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn indicator_size_respects_budget_and_bounds() {
        // 1000 nodes, 1.6 MB → 100 entries per node.
        assert_eq!(indicator_size_for_budget(1_000, 1_600_000, 16), 100);
        // Huge budget → clamped to node count.
        assert_eq!(indicator_size_for_budget(100, usize::MAX / 32, 16), 100);
        // Tiny budget → clamped to the minimum.
        assert_eq!(indicator_size_for_budget(1_000_000, 1024, 16), 16);
        // min_size larger than node count degrades gracefully.
        assert_eq!(indicator_size_for_budget(8, 0, 16), 8);
    }
}
