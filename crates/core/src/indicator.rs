//! Indicators (§III-B): cheap heuristics for the expected benefit of a
//! model, computed *without* building the model.
//!
//! Two ingredients are combined into one value per derivation scheme
//! `s → t`:
//!
//! * **historical error** — assume perfect accuracy at the source and use
//!   its real history as "forecasts"; derive the target with the weight
//!   `k_{s→t}` and score against the target's real history;
//! * **similarity** — the variance of the per-time-point derivation
//!   weights: constant weights indicate a consistent relationship,
//!   fluctuating weights an unstable scheme.
//!
//! A *local indicator array* for source `s` holds the combined value for
//! the `|I|` nodes closest to `s` in the graph; the *global indicator* is
//! the element-wise minimum over all local arrays, i.e. the best expected
//! derivation error currently available for each node. Low values mean
//! the node is already well served; high values flag candidates.

use fdc_cube::{derive, Dataset, NodeId};
use fdc_forecast::accuracy::AccuracyMeasure;

/// Indicator value assigned to nodes not covered by any local indicator:
/// the maximum SMAPE, so uncovered nodes surface as candidates.
pub const UNCOVERED: f64 = 1.0;

/// Options controlling indicator computation.
#[derive(Debug, Clone)]
pub struct IndicatorOptions {
    /// Maximum entries per local indicator (`|I|`).
    pub size: usize,
    /// Weight λ of the similarity ingredient in the combined value.
    pub lambda: f64,
    /// Accuracy measure for the historical error.
    pub measure: AccuracyMeasure,
    /// History prefix used for the indicator computation (the training
    /// length, so indicators never see test data).
    pub history_len: usize,
}

impl IndicatorOptions {
    /// Defaults: full graph coverage, λ = 1, SMAPE over the whole history.
    pub fn new(size: usize, history_len: usize) -> Self {
        IndicatorOptions {
            size,
            lambda: 1.0,
            measure: AccuracyMeasure::Smape,
            history_len,
        }
    }
}

/// The combined indicator value of the scheme `s → t` — low is good.
///
/// The historical error is already scale-free in `[0, 1]` (SMAPE); the
/// weight variance is normalized by the squared mean weight (a squared
/// coefficient of variation) and capped at 1 so both ingredients share a
/// scale before λ-weighting.
pub fn scheme_indicator(
    dataset: &Dataset,
    source: NodeId,
    target: NodeId,
    options: &IndicatorOptions,
) -> f64 {
    if source == target {
        return 0.0;
    }
    let hist_err = derive::historical_error_over(
        dataset,
        &[source],
        target,
        options.measure,
        options.history_len,
    );
    let w = derive::weight_series(dataset, &[source], target);
    let take = options.history_len.min(w.len());
    let w = &w[..take];
    let similarity = if w.len() < 2 {
        0.0
    } else {
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        if mean.abs() < 1e-12 {
            1.0
        } else {
            let var = w.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / w.len() as f64;
            (var / (mean * mean)).min(1.0)
        }
    };
    (hist_err + options.lambda * similarity) / (1.0 + options.lambda)
}

/// A local indicator array for a source node: expected derivation error
/// for the `|I|` nodes closest to the source.
#[derive(Debug, Clone)]
pub struct LocalIndicator {
    /// The source node the array belongs to.
    pub source: NodeId,
    /// Covered target nodes (the source itself first).
    pub targets: Vec<NodeId>,
    /// Combined indicator value per target (aligned with `targets`).
    pub values: Vec<f64>,
}

impl LocalIndicator {
    /// Computes the local indicator of `source`.
    ///
    /// The neighborhood is chosen as the `|I|` closest nodes by graph
    /// distance ("our current strategy … constructed by including those
    /// nodes which are closest to s in the time series graph", §IV-C.1),
    /// with ties broken by node id for determinism.
    pub fn compute(dataset: &Dataset, source: NodeId, options: &IndicatorOptions) -> Self {
        let g = dataset.graph();
        let n = g.node_count();
        let mut by_distance: Vec<NodeId> = (0..n).collect();
        by_distance.sort_by_key(|&v| (g.distance(source, v), v));
        by_distance.truncate(options.size.max(1));
        let values = by_distance
            .iter()
            .map(|&t| scheme_indicator(dataset, source, t, options))
            .collect();
        LocalIndicator {
            source,
            targets: by_distance,
            values,
        }
    }

    /// The indicator value for `target`, if covered.
    pub fn value_for(&self, target: NodeId) -> Option<f64> {
        self.targets
            .iter()
            .position(|&t| t == target)
            .map(|i| self.values[i])
    }
}

/// The set of local indicators of the current configuration plus the
/// derived global indicator.
#[derive(Debug, Clone, Default)]
pub struct IndicatorStore {
    locals: Vec<LocalIndicator>,
    global: Vec<f64>,
}

impl IndicatorStore {
    /// An empty store over `node_count` nodes (global = all uncovered).
    pub fn new(node_count: usize) -> Self {
        IndicatorStore {
            locals: Vec::new(),
            global: vec![UNCOVERED; node_count],
        }
    }

    /// The local indicators currently installed.
    pub fn locals(&self) -> &[LocalIndicator] {
        &self.locals
    }

    /// The global indicator: per node, the minimum expected derivation
    /// error over all installed local indicators.
    pub fn global(&self) -> &[f64] {
        &self.global
    }

    /// Whether a local indicator for `source` is installed.
    pub fn has_local(&self, source: NodeId) -> bool {
        self.locals.iter().any(|l| l.source == source)
    }

    /// Installs a local indicator and folds it into the global array.
    pub fn insert(&mut self, local: LocalIndicator) {
        for (&t, &v) in local.targets.iter().zip(&local.values) {
            if v < self.global[t] {
                self.global[t] = v;
            }
        }
        // Replace an existing local for the same source, if any.
        if let Some(pos) = self.locals.iter().position(|l| l.source == local.source) {
            self.locals[pos] = local;
            self.rebuild_global();
        } else {
            self.locals.push(local);
        }
    }

    /// Removes the local indicator of `source` and rebuilds the global
    /// array.
    pub fn remove(&mut self, source: NodeId) -> Option<LocalIndicator> {
        let pos = self.locals.iter().position(|l| l.source == source)?;
        let removed = self.locals.swap_remove(pos);
        self.rebuild_global();
        Some(removed)
    }

    /// Mean of the global indicator.
    pub fn global_mean(&self) -> f64 {
        if self.global.is_empty() {
            return 0.0;
        }
        self.global.iter().sum::<f64>() / self.global.len() as f64
    }

    /// Standard deviation of the global indicator.
    pub fn global_std(&self) -> f64 {
        let n = self.global.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.global_mean();
        (self
            .global
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n as f64)
            .sqrt()
    }

    /// Mean of the global indicator if `local` were additionally
    /// installed — the ranking score for positive candidates (§IV-A.2):
    /// lower hypothetical mean = higher benefit.
    pub fn mean_with(&self, local: &LocalIndicator) -> f64 {
        if self.global.is_empty() {
            return 0.0;
        }
        let mut sum: f64 = self.global.iter().sum();
        for (&t, &v) in local.targets.iter().zip(&local.values) {
            if v < self.global[t] {
                sum += v - self.global[t];
            }
        }
        sum / self.global.len() as f64
    }

    /// Mean of the global indicator if the local indicator of `source`
    /// were removed — the ranking score for negative candidates: the
    /// smaller the increase, the lower the benefit of keeping the model.
    pub fn mean_without(&self, source: NodeId) -> f64 {
        if self.global.is_empty() {
            return 0.0;
        }
        let mut global = vec![UNCOVERED; self.global.len()];
        for l in self.locals.iter().filter(|l| l.source != source) {
            for (&t, &v) in l.targets.iter().zip(&l.values) {
                if v < global[t] {
                    global[t] = v;
                }
            }
        }
        global.iter().sum::<f64>() / global.len() as f64
    }

    fn rebuild_global(&mut self) {
        for v in &mut self.global {
            *v = UNCOVERED;
        }
        for l in &self.locals {
            for (&t, &v) in l.targets.iter().zip(&l.values) {
                if v < self.global[t] {
                    self.global[t] = v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_datagen::{generate_cube, tourism_proxy, GenSpec};

    fn options(ds: &Dataset) -> IndicatorOptions {
        IndicatorOptions::new(ds.node_count(), ds.series_len() * 8 / 10)
    }

    #[test]
    fn self_indicator_is_zero() {
        let ds = tourism_proxy(1);
        let opts = options(&ds);
        assert_eq!(scheme_indicator(&ds, 3, 3, &opts), 0.0);
    }

    #[test]
    fn correlated_nodes_have_lower_indicator_than_unrelated() {
        let ds = tourism_proxy(1);
        let opts = options(&ds);
        let g = ds.graph();
        let top = g.top_node();
        let base = g.base_nodes()[0];
        // Deriving a base series from the total (correlated proxies) should
        // look better than deriving it from an unrelated tiny series.
        let from_top = scheme_indicator(&ds, top, base, &opts);
        assert!(from_top < 0.5, "indicator {from_top}");
        assert!((0.0..=1.0).contains(&from_top));
    }

    #[test]
    fn local_indicator_covers_closest_nodes_first() {
        let ds = tourism_proxy(1);
        let opts = IndicatorOptions::new(5, ds.series_len() * 8 / 10);
        let base = ds.graph().base_nodes()[0];
        let local = LocalIndicator::compute(&ds, base, &opts);
        assert_eq!(local.targets.len(), 5);
        assert_eq!(local.targets[0], base);
        assert_eq!(local.values[0], 0.0);
        // Distances are non-decreasing along the neighborhood.
        let g = ds.graph();
        for w in local.targets.windows(2) {
            assert!(g.distance(base, w[0]) <= g.distance(base, w[1]));
        }
    }

    #[test]
    fn store_global_is_min_over_locals() {
        let ds = tourism_proxy(1);
        let opts = options(&ds);
        let g = ds.graph();
        let mut store = IndicatorStore::new(ds.node_count());
        assert_eq!(store.global_mean(), UNCOVERED);

        let top_local = LocalIndicator::compute(&ds, g.top_node(), &opts);
        store.insert(top_local.clone());
        for (&t, &v) in top_local.targets.iter().zip(&top_local.values) {
            assert_eq!(store.global()[t], v.min(UNCOVERED));
        }
        let base_local = LocalIndicator::compute(&ds, g.base_nodes()[0], &opts);
        store.insert(base_local.clone());
        for (i, &gv) in store.global().iter().enumerate() {
            let expect = top_local
                .value_for(i)
                .unwrap_or(UNCOVERED)
                .min(base_local.value_for(i).unwrap_or(UNCOVERED));
            assert!((gv - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn insert_replaces_same_source() {
        let ds = tourism_proxy(2);
        let opts = options(&ds);
        let mut store = IndicatorStore::new(ds.node_count());
        let local = LocalIndicator::compute(&ds, 0, &opts);
        store.insert(local.clone());
        store.insert(local);
        assert_eq!(store.locals().len(), 1);
    }

    #[test]
    fn remove_rebuilds_global() {
        let ds = tourism_proxy(1);
        let opts = options(&ds);
        let g = ds.graph();
        let mut store = IndicatorStore::new(ds.node_count());
        store.insert(LocalIndicator::compute(&ds, g.top_node(), &opts));
        let mean_before = store.global_mean();
        store.insert(LocalIndicator::compute(&ds, g.base_nodes()[0], &opts));
        store.remove(g.base_nodes()[0]);
        assert!((store.global_mean() - mean_before).abs() < 1e-12);
        assert!(store.remove(9999).is_none());
    }

    #[test]
    fn mean_with_and_without_are_consistent() {
        let ds = tourism_proxy(1);
        let opts = options(&ds);
        let g = ds.graph();
        let mut store = IndicatorStore::new(ds.node_count());
        let top_local = LocalIndicator::compute(&ds, g.top_node(), &opts);
        store.insert(top_local);

        let candidate = LocalIndicator::compute(&ds, g.base_nodes()[0], &opts);
        let predicted = store.mean_with(&candidate);
        store.insert(candidate);
        assert!((store.global_mean() - predicted).abs() < 1e-12);

        let without = store.mean_without(g.base_nodes()[0]);
        store.remove(g.base_nodes()[0]);
        assert!((store.global_mean() - without).abs() < 1e-12);
    }

    #[test]
    fn indicator_size_limits_coverage() {
        let cube = generate_cube(&GenSpec::new(32, 40, 3));
        let ds = &cube.dataset;
        let small = IndicatorOptions::new(4, 32);
        let local = LocalIndicator::compute(ds, ds.graph().top_node(), &small);
        assert_eq!(local.targets.len(), 4);
    }

    #[test]
    fn global_std_is_zero_for_uniform() {
        let store = IndicatorStore::new(10);
        assert_eq!(store.global_std(), 0.0);
    }
}
