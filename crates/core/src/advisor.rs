//! The model configuration advisor driver (§III–IV).
//!
//! [`Advisor`] wires the four phases into the iterative process of
//! Fig. 5: candidate selection → evaluation → control → output. Each
//! iteration adds (and possibly removes) models; the advisor can be
//! stopped at any time and always holds a valid configuration, its error
//! and its costs — "allowing the user to retrieve a valid configuration
//! at any time, trading forecast accuracy and model costs".

use crate::candidate::select_candidates;
use crate::control::{indicator_size_for_budget, ControlState};
use crate::evaluation::{
    build_models_parallel, commit_model, measure_model_effect, AcceptanceCriterion,
};
use crate::indicator::{IndicatorOptions, IndicatorStore, LocalIndicator};
use crate::multisource::MultiSourceSearch;
use fdc_cube::{Configuration, ConfiguredModel, CubeSplit, Dataset, NodeId};
use fdc_forecast::{FitOptions, ModelSpec};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// User-settable stop criteria (§IV-D): error-based (absolute or relative
/// to the initial configuration) or cost-based (absolute or relative), in
/// addition to the always-active α schedule.
#[derive(Debug, Clone, Default)]
pub struct StopCriteria {
    /// Stop once the overall error falls to or below this value.
    pub absolute_error: Option<f64>,
    /// Stop once the error falls to or below `fraction × initial error`.
    pub relative_error: Option<f64>,
    /// Stop once the total model cost reaches this duration.
    pub absolute_cost: Option<Duration>,
    /// Stop once this many models are stored.
    pub max_models: Option<usize>,
    /// Stop once `fraction × node count` models are stored.
    pub relative_models: Option<f64>,
    /// Hard iteration cap.
    pub max_iterations: Option<usize>,
    /// Hard wall-clock cap.
    pub max_wall_time: Option<Duration>,
}

/// Why the advisor terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The α schedule passed its limit (default termination).
    ScheduleExhausted,
    /// An error-based stop criterion fired.
    ErrorReached,
    /// A cost-based stop criterion fired.
    CostReached,
    /// The iteration cap fired.
    IterationLimit,
    /// The wall-clock cap fired.
    TimeLimit,
}

/// Options of the advisor. "Ideally no further parameterization input
/// should be needed when running the advisor" (§III-A) — every field has
/// a sensible default.
#[derive(Debug, Clone)]
pub struct AdvisorOptions {
    /// Training fraction of each series (paper: ≈ 0.8).
    pub train_frac: f64,
    /// Model specification; `None` = default for the data's seasonality.
    pub spec: Option<ModelSpec>,
    /// Fitting options.
    pub fit: FitOptions,
    /// Models built per iteration; `None` = available parallelism.
    pub parallelism: Option<usize>,
    /// Fixed indicator size `|I|`; `None` = memory-budget rule.
    pub indicator_size: Option<usize>,
    /// Memory budget for indicator arrays (default 256 MB).
    pub memory_budget_bytes: usize,
    /// Weight λ of the similarity ingredient in the combined indicator.
    pub lambda: f64,
    /// Initial α of the acceptance schedule (paper: 0.1).
    pub initial_alpha: f64,
    /// α value past which the schedule terminates (1.0 reproduces the
    /// paper's default; 0.5 reproduces the Fig. 9 configuration).
    pub alpha_limit: f64,
    /// Whether γ adapts to phase timings.
    pub adaptive_gamma: bool,
    /// Multi-source search rounds per iteration (0 disables §IV-C.2).
    pub multisource_steps: usize,
    /// Seed a model at the top node so every node is immediately
    /// derivable (the initialization of the running example, Fig. 4).
    pub seed_top_model: bool,
    /// RNG seed (multi-source sampling, stochastic optimizers).
    pub seed: u64,
    /// Stop criteria.
    pub stop: StopCriteria,
}

impl Default for AdvisorOptions {
    fn default() -> Self {
        AdvisorOptions {
            train_frac: 0.8,
            spec: None,
            fit: FitOptions::default(),
            parallelism: None,
            indicator_size: None,
            memory_budget_bytes: 256 << 20,
            lambda: 1.0,
            initial_alpha: 0.1,
            alpha_limit: 1.0,
            adaptive_gamma: true,
            multisource_steps: 8,
            seed_top_model: true,
            seed: 0xadff,
            stop: StopCriteria::default(),
        }
    }
}

/// Per-iteration statistics, streamed out for the output phase and kept
/// as the advisor's history.
#[derive(Debug, Clone)]
pub struct IterationStats {
    /// Iteration number (1-based).
    pub iteration: usize,
    /// α in effect during the iteration.
    pub alpha: f64,
    /// γ in effect during the iteration.
    pub gamma: f64,
    /// Overall configuration error after the iteration.
    pub error: f64,
    /// Models stored after the iteration.
    pub model_count: usize,
    /// Total model cost after the iteration.
    pub cost: Duration,
    /// Positive candidates selected.
    pub candidates: usize,
    /// Models actually built.
    pub models_built: usize,
    /// Models accepted.
    pub accepted: usize,
    /// Models rejected.
    pub rejected: usize,
    /// Models deleted.
    pub deleted: usize,
    /// Wall time of the candidate selection phase.
    pub selection_time: Duration,
    /// Wall time of the evaluation phase.
    pub evaluation_time: Duration,
}

/// Final outcome of an advisor run.
#[derive(Debug)]
pub struct AdvisorOutcome {
    /// The final configuration.
    pub configuration: Configuration,
    /// Per-iteration history.
    pub history: Vec<IterationStats>,
    /// Final overall error.
    pub error: f64,
    /// Final model count.
    pub model_count: usize,
    /// Final total model cost.
    pub total_cost: Duration,
    /// Total wall time of the run.
    pub wall_time: Duration,
    /// Why the run stopped.
    pub stop_reason: StopReason,
}

/// The model configuration advisor.
pub struct Advisor<'a> {
    dataset: &'a Dataset,
    split: CubeSplit,
    configuration: Configuration,
    store: IndicatorStore,
    control: ControlState,
    criterion: AcceptanceCriterion,
    rejected: HashSet<NodeId>,
    local_cache: HashMap<NodeId, LocalIndicator>,
    /// Models already built this run. Fitting is deterministic for a
    /// fixed split, so a candidate that is re-examined at a later α level
    /// reuses its earlier fit instead of paying the creation cost again —
    /// this keeps the advisor's total model-creation work bounded by the
    /// number of *distinct* candidates, the behaviour behind the paper's
    /// Fig. 8(c) ("the model configuration advisor only shows a slight
    /// increase in runtime").
    built_cache: HashMap<NodeId, ConfiguredModel>,
    multisource: MultiSourceSearch,
    history: Vec<IterationStats>,
    iteration: usize,
    started: Instant,
    initial_error: f64,
    indicator_options: IndicatorOptions,
    spec: ModelSpec,
    parallelism: usize,
    multisource_steps: usize,
    fit: FitOptions,
    stop: StopCriteria,
}

impl<'a> Advisor<'a> {
    /// Creates an advisor over `dataset`.
    pub fn new(dataset: &'a Dataset, options: AdvisorOptions) -> fdc_cube::Result<Self> {
        if dataset.node_count() == 0 {
            return Err(fdc_cube::CubeError::InvalidData("empty data set".into()));
        }
        let split = CubeSplit::new(dataset, options.train_frac);
        let spec = options.spec.clone().unwrap_or_else(|| {
            ModelSpec::default_for_history(
                dataset.series(0).granularity().seasonal_period(),
                split.train_len(),
            )
        });
        let parallelism = options.parallelism.unwrap_or_else(|| {
            // Tie the evaluation batch to the processor count (§IV-B.1) but
            // keep a floor of 4 so small machines still explore enough
            // candidates per iteration.
            std::thread::available_parallelism()
                .map(|p| p.get().max(4))
                .unwrap_or(4)
        });
        let indicator_size = options.indicator_size.unwrap_or_else(|| {
            indicator_size_for_budget(dataset.node_count(), options.memory_budget_bytes, 16)
        });
        let mut indicator_options = IndicatorOptions::new(indicator_size, split.train_len());
        indicator_options.lambda = options.lambda;

        let mut control = ControlState::new(
            options.initial_alpha,
            options.alpha_limit,
            options.adaptive_gamma,
        );
        control.init_gamma(parallelism, dataset.node_count());
        let criterion =
            AcceptanceCriterion::new(options.initial_alpha.min(1.0), dataset.node_count());

        let mut advisor = Advisor {
            dataset,
            split,
            configuration: Configuration::new(dataset.node_count()),
            store: IndicatorStore::new(dataset.node_count()),
            control,
            criterion,
            rejected: HashSet::new(),
            local_cache: HashMap::new(),
            built_cache: HashMap::new(),
            multisource: MultiSourceSearch::new(options.seed),
            history: Vec::new(),
            iteration: 0,
            started: Instant::now(),
            initial_error: 1.0,
            indicator_options,
            spec,
            parallelism: parallelism.max(1),
            multisource_steps: options.multisource_steps,
            fit: options.fit.clone(),
            stop: options.stop.clone(),
        };

        if options.seed_top_model {
            advisor.seed_top();
        }
        advisor.initial_error = advisor.configuration.overall_error();
        advisor.criterion.set_error_scale(advisor.initial_error);
        Ok(advisor)
    }

    /// Creates an advisor that resumes from an existing configuration —
    /// e.g. one produced by an earlier run before new data arrived, or by
    /// a baseline whose configuration should be refined. Local indicators
    /// are rebuilt for every model node, node estimates are recomputed on
    /// the (new) split, and the iterative process continues from there.
    pub fn with_configuration(
        dataset: &'a Dataset,
        options: AdvisorOptions,
        configuration: &Configuration,
    ) -> fdc_cube::Result<Self> {
        if configuration.node_count() != dataset.node_count() {
            return Err(fdc_cube::CubeError::InvalidData(format!(
                "configuration covers {} nodes, data set has {}",
                configuration.node_count(),
                dataset.node_count()
            )));
        }
        let mut advisor = Advisor::new(
            dataset,
            AdvisorOptions {
                seed_top_model: false,
                ..options
            },
        )?;
        // Re-fit each configured model spec on the new training split so
        // the resumed search evaluates against current data.
        for (node, cm) in configuration.models() {
            let Ok(model) = ConfiguredModel::fit(&advisor.split, node, &cm.spec, &advisor.fit)
            else {
                continue; // series now too short for this spec — drop it
            };
            advisor.criterion.observe_creation(model.creation_time);
            advisor.built_cache.insert(node, model.clone());
            advisor.configuration.insert_model(node, model);
            let local = LocalIndicator::compute(dataset, node, &advisor.indicator_options);
            advisor.local_cache.insert(node, local.clone());
            advisor.store.insert(local);
        }
        let all: Vec<NodeId> = (0..dataset.node_count()).collect();
        advisor
            .configuration
            .recompute_nodes(dataset, &advisor.split, &all);
        advisor.initial_error = advisor.configuration.overall_error();
        advisor.criterion.set_error_scale(advisor.initial_error);
        Ok(advisor)
    }

    /// Installs the initial model at the top node (Fig. 4a) so every node
    /// is derivable by disaggregation from the start.
    fn seed_top(&mut self) {
        let top = self.dataset.graph().top_node();
        let Ok(model) = ConfiguredModel::fit(&self.split, top, &self.spec, &self.fit) else {
            return; // series too short for the spec — start empty
        };
        self.criterion.observe_creation(model.creation_time);
        self.configuration.insert_model(top, model);
        for t in 0..self.dataset.node_count() {
            self.configuration
                .adopt_if_better(self.dataset, &self.split, &[top], t);
        }
        let local = LocalIndicator::compute(self.dataset, top, &self.indicator_options);
        self.local_cache.insert(top, local.clone());
        self.store.insert(local);
    }

    /// The data split used for evaluation.
    pub fn split(&self) -> &CubeSplit {
        &self.split
    }

    /// The current configuration (valid at any time).
    pub fn configuration(&self) -> &Configuration {
        &self.configuration
    }

    /// The current global indicator store.
    pub fn indicator_store(&self) -> &IndicatorStore {
        &self.store
    }

    /// The iteration history so far.
    pub fn history(&self) -> &[IterationStats] {
        &self.history
    }

    /// Runs one full iteration (all four phases) and returns its
    /// statistics.
    pub fn step(&mut self) -> IterationStats {
        let _step_span = fdc_obs::span!("advisor.step");
        self.iteration += 1;
        fdc_obs::counter(fdc_obs::names::ADVISOR_ITERATIONS).incr();
        let err_before = self.configuration.overall_error();
        self.criterion.alpha = self.control.effective_alpha();

        // ---- Candidate selection phase -----------------------------------
        let selection_start = Instant::now();
        let candidates = {
            let _span = fdc_obs::span!("select");
            select_candidates(
                self.dataset,
                &self.configuration,
                &self.store,
                &self.indicator_options,
                self.control.gamma,
                self.parallelism,
                &self.rejected,
                &mut self.local_cache,
            )
        };
        let selection_time = selection_start.elapsed();
        fdc_obs::counter(fdc_obs::names::ADVISOR_CANDIDATES).add(candidates.positive.len() as u64);

        // ---- Evaluation phase --------------------------------------------
        let evaluation_start = Instant::now();
        let evaluation_span = fdc_obs::span!("evaluate");
        // Indicator-based pre-filter: skip building candidates whose
        // acceptance is hopeless even under an optimistic (2×) reading of
        // their indicator-predicted benefit. At low α this avoids paying
        // creation cost for marginal models; as α grows the bar drops and
        // the candidates return (they are not marked rejected).
        let err_now = self.configuration.overall_error();
        let cost_now = self.configuration.total_cost();
        let global_mean_now = self.store.global_mean();
        let picked: Vec<NodeId> = candidates
            .positive
            .iter()
            .enumerate()
            .filter(|(rank, c)| {
                // The best-ranked candidate is always examined so the
                // search cannot starve itself; cached builds are free.
                if *rank == 0 || self.built_cache.contains_key(&c.node) {
                    return true;
                }
                let predicted_gain = (global_mean_now - c.score).max(0.0);
                let optimistic_err = (err_now - 2.0 * predicted_gain).max(0.0);
                self.criterion.accepts(
                    err_now,
                    cost_now,
                    optimistic_err,
                    cost_now + self.criterion.avg_creation_time,
                )
            })
            .map(|(_, c)| c.node)
            .collect();
        let misses: Vec<NodeId> = picked
            .iter()
            .copied()
            .filter(|v| !self.built_cache.contains_key(v))
            .collect();
        let models_built = misses.len();
        for (node, model) in build_models_parallel(
            &self.split,
            &misses,
            &self.spec,
            &self.fit,
            self.parallelism,
        ) {
            match model {
                Some(m) => {
                    self.criterion.observe_creation(m.creation_time);
                    self.built_cache.insert(node, m);
                }
                None => {
                    // Unfittable (series too short): never try again.
                    self.rejected.insert(node);
                }
            }
        }
        let built: Vec<(NodeId, Option<ConfiguredModel>)> = picked
            .iter()
            .map(|&v| (v, self.built_cache.get(&v).cloned()))
            .collect();

        let mut accepted = 0usize;
        let mut rejected_now = 0usize;
        for (node, model) in built {
            let Some(model) = model else {
                continue; // marked rejected above
            };
            let neighborhood: Vec<NodeId> = self
                .local_cache
                .get(&node)
                .map(|l| l.targets.clone())
                .unwrap_or_default();
            let effect = measure_model_effect(
                self.dataset,
                &self.split,
                &self.configuration,
                &model,
                node,
                &neighborhood,
            );
            let err_old = self.configuration.overall_error();
            let cost_old = self.configuration.total_cost();
            let cost_new = cost_old + model.creation_time;
            if self
                .criterion
                .accepts(err_old, cost_old, effect.err_new, cost_new)
            {
                commit_model(
                    self.dataset,
                    &self.split,
                    &mut self.configuration,
                    model,
                    &effect,
                );
                let local = self.local_cache.get(&node).cloned().unwrap_or_else(|| {
                    LocalIndicator::compute(self.dataset, node, &self.indicator_options)
                });
                self.store.insert(local);
                accepted += 1;
            } else {
                rejected_now += 1;
                if effect.err_new >= err_old {
                    // No error improvement either: never reconsider
                    // (§IV-B.2).
                    self.rejected.insert(node);
                }
            }
        }

        // Deletion: examine the top negative candidate (§IV-B.2).
        let mut deleted = 0usize;
        if let Some(victim) = candidates.negative.first() {
            if self.configuration.model_count() > 1 {
                deleted += self.try_delete(victim.node) as usize;
            }
        }
        drop(evaluation_span);
        let evaluation_time = evaluation_start.elapsed();
        fdc_obs::counter(fdc_obs::names::ADVISOR_MODELS_BUILT).add(models_built as u64);
        fdc_obs::counter(fdc_obs::names::ADVISOR_ACCEPTED).add(accepted as u64);
        fdc_obs::counter(fdc_obs::names::ADVISOR_REJECTED).add(rejected_now as u64);
        fdc_obs::counter(fdc_obs::names::ADVISOR_DELETED).add(deleted as u64);
        fdc_obs::histogram(fdc_obs::names::ADVISOR_SELECTION_NS).record_duration(selection_time);
        fdc_obs::histogram(fdc_obs::names::ADVISOR_EVALUATION_NS).record_duration(evaluation_time);

        // ---- Asynchronous multi-source optimization ------------------------
        {
            let _span = fdc_obs::span!("multisource");
            for _ in 0..self.multisource_steps {
                self.multisource
                    .step(self.dataset, &self.split, &mut self.configuration);
            }
        }

        // ---- Control phase --------------------------------------------------
        if models_built == 0 && !candidates.positive.is_empty() {
            // The evaluation phase did no real work (all candidates were
            // filtered or cached): widen the candidate pool instead of
            // letting the timing rule squeeze it further.
            self.control
                .adapt_gamma(Duration::ZERO, Duration::from_secs(1));
        } else {
            self.control.adapt_gamma(selection_time, evaluation_time);
        }
        let err_after = self.configuration.overall_error();
        self.control
            .record_iteration(rejected_now, (err_before - err_after).max(0.0));

        let stats = IterationStats {
            iteration: self.iteration,
            alpha: self.criterion.alpha,
            gamma: self.control.gamma,
            error: err_after,
            model_count: self.configuration.model_count(),
            cost: self.configuration.total_cost(),
            candidates: candidates.positive.len(),
            models_built,
            accepted,
            rejected: rejected_now,
            deleted,
            selection_time,
            evaluation_time,
        };
        self.history.push(stats.clone());
        stats
    }

    /// Evaluates deleting the model at `victim` under Eq. (8); commits the
    /// deletion when it improves the weighted objective. Returns whether
    /// the model was removed.
    fn try_delete(&mut self, victim: NodeId) -> bool {
        let err_old = self.configuration.overall_error();
        let cost_old = self.configuration.total_cost();
        let Some(model) = self.configuration.model(victim) else {
            return false;
        };
        let model_cost = model.creation_time;

        let mut trial = self.configuration.clone();
        let removed = trial.remove_model(victim);
        debug_assert!(removed.is_some());
        let deps = self.configuration.dependents_of(victim);
        trial.recompute_nodes(self.dataset, &self.split, &deps);
        let err_new = trial.overall_error();
        let cost_new = cost_old.saturating_sub(model_cost);

        if self.criterion.accepts(err_old, cost_old, err_new, cost_new) {
            self.configuration = trial;
            self.store.remove(victim);
            true
        } else {
            false
        }
    }

    /// Evaluates the stop criteria; `None` means keep going.
    fn stop_reason(&self) -> Option<StopReason> {
        let err = self.configuration.overall_error();
        if let Some(limit) = self.stop.absolute_error {
            if err <= limit {
                return Some(StopReason::ErrorReached);
            }
        }
        if let Some(frac) = self.stop.relative_error {
            if err <= frac * self.initial_error {
                return Some(StopReason::ErrorReached);
            }
        }
        if let Some(limit) = self.stop.absolute_cost {
            if self.configuration.total_cost() >= limit {
                return Some(StopReason::CostReached);
            }
        }
        if let Some(limit) = self.stop.max_models {
            if self.configuration.model_count() >= limit {
                return Some(StopReason::CostReached);
            }
        }
        if let Some(frac) = self.stop.relative_models {
            if self.configuration.model_count() as f64 >= frac * self.dataset.node_count() as f64 {
                return Some(StopReason::CostReached);
            }
        }
        if let Some(limit) = self.stop.max_iterations {
            if self.iteration >= limit {
                return Some(StopReason::IterationLimit);
            }
        }
        if let Some(limit) = self.stop.max_wall_time {
            if self.started.elapsed() >= limit {
                return Some(StopReason::TimeLimit);
            }
        }
        if self.control.schedule_exhausted() {
            return Some(StopReason::ScheduleExhausted);
        }
        None
    }

    /// Runs iterations until a stop criterion fires and returns the final
    /// outcome.
    pub fn run(&mut self) -> AdvisorOutcome {
        let _span = fdc_obs::span!("advisor.run");
        self.started = Instant::now();
        let stop_reason = loop {
            if let Some(reason) = self.stop_reason() {
                break reason;
            }
            self.step();
        };
        let outcome = AdvisorOutcome {
            configuration: self.configuration.clone(),
            history: self.history.clone(),
            error: self.configuration.overall_error(),
            model_count: self.configuration.model_count(),
            total_cost: self.configuration.total_cost(),
            wall_time: self.started.elapsed(),
            stop_reason,
        };
        fdc_obs::gauge(fdc_obs::names::ADVISOR_MODEL_COUNT).set(outcome.model_count as i64);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_datagen::{generate_cube, tourism_proxy, GenSpec};

    fn quick_options() -> AdvisorOptions {
        AdvisorOptions {
            parallelism: Some(2),
            multisource_steps: 4,
            ..AdvisorOptions::default()
        }
    }

    #[test]
    fn advisor_improves_over_seed_configuration() {
        let ds = tourism_proxy(1);
        let mut advisor = Advisor::new(&ds, quick_options()).unwrap();
        let initial = advisor.configuration().overall_error();
        let outcome = advisor.run();
        assert!(outcome.error <= initial, "{} vs {initial}", outcome.error);
        assert!(outcome.model_count >= 1);
        assert_eq!(outcome.stop_reason, StopReason::ScheduleExhausted);
        assert!(!outcome.history.is_empty());
    }

    #[test]
    fn advisor_keeps_fewer_models_than_direct() {
        let ds = tourism_proxy(1);
        let outcome = Advisor::new(&ds, quick_options()).unwrap().run();
        assert!(
            outcome.model_count < ds.node_count(),
            "advisor kept {} of {} possible models",
            outcome.model_count,
            ds.node_count()
        );
    }

    #[test]
    fn every_node_is_served_after_run() {
        let ds = tourism_proxy(2);
        let outcome = Advisor::new(&ds, quick_options()).unwrap().run();
        for v in 0..ds.node_count() {
            let est = outcome.configuration.estimate(v);
            assert!(est.scheme.is_some(), "node {v} has no derivation scheme");
            assert!(est.error < 1.0);
        }
    }

    #[test]
    fn schemes_only_reference_model_nodes() {
        let ds = tourism_proxy(3);
        let outcome = Advisor::new(&ds, quick_options()).unwrap().run();
        for v in 0..ds.node_count() {
            if let Some(s) = &outcome.configuration.estimate(v).scheme {
                for src in &s.sources {
                    assert!(outcome.configuration.has_model(*src));
                }
            }
        }
    }

    #[test]
    fn stop_on_max_models() {
        let ds = tourism_proxy(1);
        let options = AdvisorOptions {
            stop: StopCriteria {
                max_models: Some(2),
                ..StopCriteria::default()
            },
            ..quick_options()
        };
        let outcome = Advisor::new(&ds, options).unwrap().run();
        // The seed model plus at most one accepted batch beyond the limit.
        assert!(outcome.stop_reason == StopReason::CostReached);
        assert!(outcome.model_count >= 2);
    }

    #[test]
    fn stop_on_iteration_limit() {
        let ds = tourism_proxy(1);
        let options = AdvisorOptions {
            stop: StopCriteria {
                max_iterations: Some(1),
                ..StopCriteria::default()
            },
            ..quick_options()
        };
        let outcome = Advisor::new(&ds, options).unwrap().run();
        assert_eq!(outcome.stop_reason, StopReason::IterationLimit);
        assert_eq!(outcome.history.len(), 1);
    }

    #[test]
    fn stop_on_error_threshold() {
        let ds = tourism_proxy(1);
        let options = AdvisorOptions {
            stop: StopCriteria {
                absolute_error: Some(1.0), // trivially satisfied at start
                ..StopCriteria::default()
            },
            ..quick_options()
        };
        let outcome = Advisor::new(&ds, options).unwrap().run();
        assert_eq!(outcome.stop_reason, StopReason::ErrorReached);
        assert!(outcome.history.is_empty(), "stopped before iterating");
    }

    #[test]
    fn alpha_limit_produces_cheaper_configuration() {
        // The acceptance objective weighs *measured* model-creation time,
        // so a scheduler hiccup during one run can distort the kept model
        // set. A deterministic 500 µs cost floor per fit keeps the jitter
        // small relative to every model's cost, making the comparison
        // stable without changing what it asserts.
        let options = || AdvisorOptions {
            fit: FitOptions {
                artificial_cost_us: 500,
                ..FitOptions::default()
            },
            ..quick_options()
        };
        let ds = tourism_proxy(4);
        let full = Advisor::new(&ds, options()).unwrap().run();
        let half = Advisor::new(
            &ds,
            AdvisorOptions {
                alpha_limit: 0.4,
                ..options()
            },
        )
        .unwrap()
        .run();
        assert!(
            half.model_count <= full.model_count,
            "α≤0.4 kept {} models, α≤1.0 kept {}",
            half.model_count,
            full.model_count
        );
    }

    #[test]
    fn history_alpha_is_nondecreasing() {
        let ds = tourism_proxy(1);
        let outcome = Advisor::new(&ds, quick_options()).unwrap().run();
        for w in outcome.history.windows(2) {
            assert!(w[0].alpha <= w[1].alpha + 1e-12);
        }
    }

    #[test]
    fn works_without_top_seed() {
        let ds = tourism_proxy(1);
        let options = AdvisorOptions {
            seed_top_model: false,
            ..quick_options()
        };
        let outcome = Advisor::new(&ds, options).unwrap().run();
        assert!(outcome.model_count >= 1);
        assert!(outcome.error < 1.0);
    }

    #[test]
    fn works_on_uncorrelated_synthetic_cube() {
        let cube = generate_cube(&GenSpec::new(24, 48, 7));
        let outcome = Advisor::new(&cube.dataset, quick_options()).unwrap().run();
        assert!(outcome.error < 0.5, "error {}", outcome.error);
        assert!(outcome.model_count < cube.dataset.node_count());
    }

    #[test]
    fn build_cache_prevents_refitting_candidates() {
        let ds = tourism_proxy(5);
        let mut advisor = Advisor::new(&ds, quick_options()).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut total_built = 0usize;
        for _ in 0..12 {
            let stats = advisor.step();
            total_built += stats.models_built;
            for (v, _) in advisor.configuration().models() {
                seen.insert(v);
            }
        }
        // Every build is a distinct node: total builds never exceed the
        // node count even across many iterations.
        assert!(
            total_built <= ds.node_count(),
            "built {total_built} models for {} nodes",
            ds.node_count()
        );
    }

    #[test]
    fn expensive_models_do_not_explode_runtime() {
        use fdc_forecast::FitOptions;
        let ds = fdc_datagen::sales_proxy(2);
        let cheap = AdvisorOptions {
            fit: FitOptions::default(),
            ..quick_options()
        };
        let costly = AdvisorOptions {
            fit: FitOptions {
                artificial_cost_us: 2_000,
                ..FitOptions::default()
            },
            ..quick_options()
        };
        let built_cheap: usize = Advisor::new(&ds, cheap)
            .unwrap()
            .run()
            .history
            .iter()
            .map(|s| s.models_built)
            .sum();
        let built_costly: usize = Advisor::new(&ds, costly)
            .unwrap()
            .run()
            .history
            .iter()
            .map(|s| s.models_built)
            .sum();
        // The pre-filter and cache keep the build count bounded by the
        // node count in both regimes.
        assert!(built_cheap <= ds.node_count());
        assert!(built_costly <= ds.node_count());
    }

    #[test]
    fn single_series_cube_is_handled() {
        use fdc_cube::{Coord, Dimension, Schema};
        use fdc_forecast::{Granularity, TimeSeries};
        let schema = Schema::flat(vec![Dimension::new("only", vec!["a".into()])]).unwrap();
        let values: Vec<f64> = (0..30).map(|t| 10.0 + t as f64).collect();
        let ds = fdc_cube::Dataset::from_base(
            schema,
            vec![(
                Coord::new(vec![0]),
                TimeSeries::new(values, Granularity::Monthly),
            )],
        )
        .unwrap();
        // Graph: the base node + the top; the advisor must terminate with
        // a sane configuration.
        let outcome = Advisor::new(&ds, quick_options()).unwrap().run();
        assert!(outcome.model_count >= 1);
        assert!(
            outcome.error < 0.2,
            "trend series is easy: {}",
            outcome.error
        );
    }

    #[test]
    fn all_zero_cube_is_handled() {
        use fdc_cube::{Coord, Dimension, Schema};
        use fdc_forecast::{Granularity, TimeSeries};
        let schema = Schema::flat(vec![Dimension::new("d", vec!["a".into(), "b".into()])]).unwrap();
        let ds = fdc_cube::Dataset::from_base(
            schema,
            vec![
                (
                    Coord::new(vec![0]),
                    TimeSeries::new(vec![0.0; 24], Granularity::Monthly),
                ),
                (
                    Coord::new(vec![1]),
                    TimeSeries::new(vec![0.0; 24], Granularity::Monthly),
                ),
            ],
        )
        .unwrap();
        // SMAPE of zero forecasts on zero data is zero: the seed model
        // already achieves perfect error and the advisor stops quickly.
        let outcome = Advisor::new(&ds, quick_options()).unwrap().run();
        assert!(outcome.error <= 1e-12, "error {}", outcome.error);
        assert!(outcome
            .configuration
            .forecast_node(ds.graph().top_node(), 3)
            .is_some());
    }

    #[test]
    fn warm_start_resumes_from_configuration() {
        let ds = tourism_proxy(6);
        // First run with a tight budget.
        let first = Advisor::new(
            &ds,
            AdvisorOptions {
                stop: StopCriteria {
                    max_models: Some(3),
                    ..StopCriteria::default()
                },
                ..quick_options()
            },
        )
        .unwrap()
        .run();
        assert!(first.model_count >= 3);

        // Resume without the budget: the warm-started advisor keeps the
        // old models and only improves from there.
        let mut resumed =
            Advisor::with_configuration(&ds, quick_options(), &first.configuration).unwrap();
        let start_models = resumed.configuration().model_count();
        assert_eq!(start_models, first.model_count);
        let outcome = resumed.run();
        assert!(outcome.error <= first.error + 1e-9);
        assert!(outcome.model_count >= 1);
    }

    #[test]
    fn warm_start_rejects_mismatched_configuration() {
        let ds = tourism_proxy(1);
        let other = Configuration::new(3);
        assert!(Advisor::with_configuration(&ds, quick_options(), &other).is_err());
    }

    #[test]
    fn step_returns_live_statistics() {
        let ds = tourism_proxy(1);
        let mut advisor = Advisor::new(&ds, quick_options()).unwrap();
        let s1 = advisor.step();
        assert_eq!(s1.iteration, 1);
        assert!(s1.error <= 1.0);
        let s2 = advisor.step();
        assert_eq!(s2.iteration, 2);
        assert_eq!(advisor.history().len(), 2);
    }
}
