//! Candidate selection phase (§IV-A): preselection and ranking.
//!
//! **Preselection** (Eq. 5/6) splits nodes by the global indicator:
//! positive candidates `V_A` are nodes whose indicator exceeds
//! `E(I) + γ·σ(I)` (probably high error, might benefit from a model);
//! negative candidates `V_R` are nodes with an indicator of zero (they
//! carry a model whose removal might pay off).
//!
//! **Ranking** examines positive candidates more closely: a local
//! indicator is created for each (cached across iterations), a temporary
//! global indicator including it is computed, and candidates are ordered
//! by decreasing benefit — the drop in the mean global indicator.
//! Negative candidates are ranked by the *increase* the removal of their
//! local indicator would cause, ascending (lowest benefit first).

use crate::indicator::{IndicatorOptions, IndicatorStore, LocalIndicator};
use fdc_cube::{Configuration, Dataset, NodeId};
use std::collections::{HashMap, HashSet};

/// A ranked positive candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedCandidate {
    /// The candidate node.
    pub node: NodeId,
    /// Hypothetical mean of the global indicator if this node's local
    /// indicator were installed (lower = better).
    pub score: f64,
}

/// Outcome of the candidate selection phase.
#[derive(Debug, Clone, Default)]
pub struct CandidateSet {
    /// Positive candidates, best first.
    pub positive: Vec<RankedCandidate>,
    /// Negative candidates (deletion), lowest benefit first.
    pub negative: Vec<RankedCandidate>,
}

/// Runs preselection + ranking.
///
/// `rejected` holds nodes marked after a failed acceptance that also did
/// not improve the error — they are never selected again (§IV-B.2).
/// Local indicators created during ranking are cached in `local_cache` so
/// repeated examinations of the same node are free.
#[allow(clippy::too_many_arguments)]
pub fn select_candidates(
    dataset: &Dataset,
    configuration: &Configuration,
    store: &IndicatorStore,
    indicator_options: &IndicatorOptions,
    gamma: f64,
    max_positive: usize,
    rejected: &HashSet<NodeId>,
    local_cache: &mut HashMap<NodeId, LocalIndicator>,
) -> CandidateSet {
    let global = store.global();
    let mean = store.global_mean();
    let std = store.global_std();
    let threshold = mean + gamma * std;

    // Preselection, Eq. 5: high-indicator nodes without a model. The
    // comparison is inclusive so a degenerate all-equal global indicator
    // (e.g. an empty configuration, σ = 0) still yields candidates.
    let mut positive_pre: Vec<NodeId> = (0..dataset.node_count())
        .filter(|&v| {
            global[v] >= threshold
                && global[v] > 0.0
                && !configuration.has_model(v)
                && !rejected.contains(&v)
        })
        .collect();
    // Deterministic processing order: worst indicator first.
    positive_pre.sort_by(|&a, &b| global[b].total_cmp(&global[a]).then(a.cmp(&b)));
    // Ranking is the expensive step (one local indicator per candidate);
    // bound the examined set generously relative to what evaluation can
    // absorb.
    positive_pre.truncate(max_positive.max(1) * 4);

    // Ranking: benefit = drop of the global mean with the candidate's
    // local indicator installed.
    let mut positive: Vec<RankedCandidate> = positive_pre
        .into_iter()
        .map(|v| {
            if local_cache.contains_key(&v) {
                fdc_obs::counter(fdc_obs::names::ADVISOR_INDICATOR_CACHE_HIT).incr();
            } else {
                fdc_obs::counter(fdc_obs::names::ADVISOR_INDICATOR_CACHE_MISS).incr();
            }
            let local = local_cache
                .entry(v)
                .or_insert_with(|| LocalIndicator::compute(dataset, v, indicator_options));
            RankedCandidate {
                node: v,
                score: store.mean_with(local),
            }
        })
        .collect();
    positive.sort_by(|a, b| a.score.total_cmp(&b.score).then(a.node.cmp(&b.node)));
    positive.truncate(max_positive.max(1));

    // Preselection, Eq. 6: zero-indicator nodes (model holders).
    let mut negative: Vec<RankedCandidate> = (0..dataset.node_count())
        .filter(|&v| global[v] <= f64::EPSILON && configuration.has_model(v))
        .map(|v| RankedCandidate {
            node: v,
            score: store.mean_without(v),
        })
        .collect();
    // Ascending: the smallest increase (lowest benefit of keeping) first.
    negative.sort_by(|a, b| a.score.total_cmp(&b.score).then(a.node.cmp(&b.node)));

    CandidateSet { positive, negative }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_cube::{ConfiguredModel, CubeSplit};
    use fdc_datagen::tourism_proxy;
    use fdc_forecast::{FitOptions, ModelSpec};

    struct Fixture {
        ds: Dataset,
        split: CubeSplit,
        cfg: Configuration,
        store: IndicatorStore,
        opts: IndicatorOptions,
    }

    fn fixture() -> Fixture {
        let ds = tourism_proxy(1);
        let split = CubeSplit::new(&ds, 0.8);
        let mut cfg = Configuration::new(ds.node_count());
        let opts = IndicatorOptions::new(ds.node_count(), split.train_len());
        let mut store = IndicatorStore::new(ds.node_count());
        let top = ds.graph().top_node();
        let model = ConfiguredModel::fit(
            &split,
            top,
            &ModelSpec::default_for_period(4),
            &FitOptions::default(),
        )
        .unwrap();
        cfg.insert_model(top, model);
        cfg.adopt_if_better(&ds, &split, &[top], top);
        store.insert(LocalIndicator::compute(&ds, top, &opts));
        Fixture {
            ds,
            split,
            cfg,
            store,
            opts,
        }
    }

    #[test]
    fn positive_candidates_lack_models_and_exceed_threshold() {
        let f = fixture();
        let mut cache = HashMap::new();
        let set = select_candidates(
            &f.ds,
            &f.cfg,
            &f.store,
            &f.opts,
            0.0,
            4,
            &HashSet::new(),
            &mut cache,
        );
        assert!(!set.positive.is_empty());
        assert!(set.positive.len() <= 4);
        let threshold = f.store.global_mean();
        for c in &set.positive {
            assert!(!f.cfg.has_model(c.node));
            assert!(f.store.global()[c.node] > threshold);
        }
        let _ = &f.split;
    }

    #[test]
    fn ranking_orders_by_benefit() {
        let f = fixture();
        let mut cache = HashMap::new();
        let set = select_candidates(
            &f.ds,
            &f.cfg,
            &f.store,
            &f.opts,
            0.0,
            8,
            &HashSet::new(),
            &mut cache,
        );
        for w in set.positive.windows(2) {
            assert!(w[0].score <= w[1].score);
        }
    }

    #[test]
    fn negative_candidates_are_model_holders_with_zero_indicator() {
        let f = fixture();
        let mut cache = HashMap::new();
        let set = select_candidates(
            &f.ds,
            &f.cfg,
            &f.store,
            &f.opts,
            0.0,
            4,
            &HashSet::new(),
            &mut cache,
        );
        let top = f.ds.graph().top_node();
        assert_eq!(set.negative.len(), 1);
        assert_eq!(set.negative[0].node, top);
    }

    #[test]
    fn rejected_nodes_are_excluded() {
        let f = fixture();
        let mut cache = HashMap::new();
        let all = select_candidates(
            &f.ds,
            &f.cfg,
            &f.store,
            &f.opts,
            0.0,
            50,
            &HashSet::new(),
            &mut cache,
        );
        let mut rejected = HashSet::new();
        for c in &all.positive {
            rejected.insert(c.node);
        }
        let none = select_candidates(
            &f.ds, &f.cfg, &f.store, &f.opts, 0.0, 50, &rejected, &mut cache,
        );
        assert!(none.positive.is_empty());
    }

    #[test]
    fn higher_gamma_selects_fewer_candidates() {
        let f = fixture();
        let mut cache = HashMap::new();
        let loose = select_candidates(
            &f.ds,
            &f.cfg,
            &f.store,
            &f.opts,
            -1.0,
            1_000,
            &HashSet::new(),
            &mut cache,
        );
        let tight = select_candidates(
            &f.ds,
            &f.cfg,
            &f.store,
            &f.opts,
            3.0,
            1_000,
            &HashSet::new(),
            &mut cache,
        );
        assert!(tight.positive.len() <= loose.positive.len());
    }

    #[test]
    fn cache_is_reused_across_calls() {
        let f = fixture();
        let mut cache = HashMap::new();
        let first = select_candidates(
            &f.ds,
            &f.cfg,
            &f.store,
            &f.opts,
            0.0,
            4,
            &HashSet::new(),
            &mut cache,
        );
        let cached = cache.len();
        assert!(cached >= first.positive.len());
        // Second call must not grow the cache for the same candidates.
        let _ = select_candidates(
            &f.ds,
            &f.cfg,
            &f.store,
            &f.opts,
            0.0,
            4,
            &HashSet::new(),
            &mut cache,
        );
        assert_eq!(cache.len(), cached);
    }
}
