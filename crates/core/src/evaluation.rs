//! Evaluation phase (§IV-B): model creation, acceptance and deletion.
//!
//! The top-n positive candidates get real models (created in parallel,
//! "the number of nodes n is restricted by the number of available
//! processors"), the real effect of each model on the cube is measured,
//! and the generalized acceptance criterion of Eq. (8)
//!
//! ```text
//! α·err_new + (1−α)·cost_new  <  α·err_old + (1−α)·cost_old
//! ```
//!
//! decides admission. Costs are normalized so error and cost are
//! comparable: a configuration's cost is expressed as its share of the
//! estimated cost of the *direct* approach (a model at every node), which
//! maps it into the same `[0, 1]` scale as SMAPE.

use fdc_cube::{Configuration, ConfiguredModel, CubeSplit, Dataset, NodeId};
use fdc_forecast::{FitOptions, ModelSpec};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// The generalized acceptance criterion (Eq. 8).
#[derive(Debug, Clone)]
pub struct AcceptanceCriterion {
    /// The error/cost trade-off weight α ∈ [0, 1]; α = 1 is error-only
    /// (Eq. 7).
    pub alpha: f64,
    /// Estimated average model creation time, used for cost
    /// normalization. Updated as models are built.
    pub avg_creation_time: Duration,
    /// Number of nodes in the graph (the direct approach would build this
    /// many models).
    pub node_count: usize,
    /// Error of the initial configuration, the scale of the error term.
    pub error_scale: f64,
}

impl AcceptanceCriterion {
    /// Creates a criterion for a graph of `node_count` nodes.
    pub fn new(alpha: f64, node_count: usize) -> Self {
        AcceptanceCriterion {
            alpha,
            avg_creation_time: Duration::from_millis(1),
            node_count: node_count.max(1),
            error_scale: 1.0,
        }
    }

    /// Sets the error normalization scale (the initial configuration
    /// error); clamped away from zero so a perfect seed cannot divide by
    /// zero.
    pub fn set_error_scale(&mut self, initial_error: f64) {
        self.error_scale = initial_error.max(1e-6);
    }

    /// Folds a newly observed creation time into the running average.
    pub fn observe_creation(&mut self, t: Duration) {
        // Exponential moving average with a light smoothing factor.
        let old = self.avg_creation_time.as_secs_f64();
        let new = 0.8 * old + 0.2 * t.as_secs_f64();
        self.avg_creation_time = Duration::from_secs_f64(new.max(1e-9));
    }

    /// Normalizes a total configuration cost into `[0, ~1]`: its share of
    /// the projected cost of building a model at every node.
    pub fn normalized_cost(&self, total: Duration) -> f64 {
        let direct = self.avg_creation_time.as_secs_f64() * self.node_count as f64;
        if direct <= 0.0 {
            0.0
        } else {
            total.as_secs_f64() / direct
        }
    }

    /// The weighted objective `α·(err/err₀) + (1−α)·cost_norm`.
    pub fn objective(&self, error: f64, total_cost: Duration) -> f64 {
        self.alpha * (error / self.error_scale)
            + (1.0 - self.alpha) * self.normalized_cost(total_cost)
    }

    /// Whether the transition old → new is an improvement under Eq. (8).
    pub fn accepts(
        &self,
        err_old: f64,
        cost_old: Duration,
        err_new: f64,
        cost_new: Duration,
    ) -> bool {
        self.objective(err_new, cost_new) < self.objective(err_old, cost_old)
    }
}

/// Runs `work` over every item on a bounded pool of at most `parallelism`
/// worker threads pulling from a shared index. Results come back in input
/// order, together with the peak number of workers observed inside `work`
/// simultaneously — the quantity the parallelism-limit test asserts on.
pub fn run_chunked<T, R, F>(items: &[T], parallelism: usize, work: F) -> (Vec<R>, usize)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = parallelism.max(1).min(items.len());
    if workers <= 1 {
        let results: Vec<R> = items.iter().map(&work).collect();
        return (results, usize::from(!items.is_empty()));
    }
    let next = AtomicUsize::new(0);
    let current = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        if i >= items.len() {
                            break;
                        }
                        let running = current.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(running, Ordering::SeqCst);
                        let r = work(&items[i]);
                        current.fetch_sub(1, Ordering::SeqCst);
                        done.push((i, r));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("worker thread panicked") {
                results[i] = Some(r);
            }
        }
    });
    let results = results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect();
    (results, peak.load(Ordering::SeqCst))
}

/// Builds models for the given candidate nodes in parallel on at most
/// `parallelism` worker threads ("the number of nodes n is restricted by
/// the number of available processors", §IV-B.1).
pub fn build_models_parallel(
    split: &CubeSplit,
    candidates: &[NodeId],
    spec: &ModelSpec,
    options: &FitOptions,
    parallelism: usize,
) -> Vec<(NodeId, Option<ConfiguredModel>)> {
    if candidates.len() <= 1 || parallelism <= 1 {
        return candidates
            .iter()
            .map(|&v| (v, ConfiguredModel::fit(split, v, spec, options).ok()))
            .collect();
    }
    let (models, _peak) = run_chunked(candidates, parallelism, |&v| {
        ConfiguredModel::fit(split, v, spec, options).ok()
    });
    candidates.iter().copied().zip(models).collect()
}

/// The measured effect of tentatively adding a model at `source`: the new
/// overall error if all improving adoptions were committed, plus the list
/// of `(target, error)` improvements.
#[derive(Debug, Clone)]
pub struct ModelEffect {
    /// Candidate source node.
    pub source: NodeId,
    /// Overall configuration error after adopting all improvements.
    pub err_new: f64,
    /// Improving targets with their new errors.
    pub improvements: Vec<(NodeId, f64)>,
}

/// Measures the effect of a candidate model on the cube without mutating
/// the configuration.
///
/// Targets examined: the candidate itself (direct scheme) plus
/// `neighborhood` (its indicator array targets), and full-hyperedge
/// aggregations at its parents ("computing the accuracy of the model at
/// its own node as well as in derivation schemes", §IV-B.1).
pub fn measure_model_effect(
    dataset: &Dataset,
    split: &CubeSplit,
    configuration: &Configuration,
    model: &ConfiguredModel,
    source: NodeId,
    neighborhood: &[NodeId],
) -> ModelEffect {
    // Evaluate single-source schemes from a scratch configuration holding
    // just the candidate model — scheme_error only needs source models.
    let mut probe = Configuration::new(configuration.node_count());
    probe.insert_model(source, model.clone());

    let mut improvements = Vec::new();
    let mut err_sum_delta = 0.0;
    let mut consider = |cfg_err: f64, target: NodeId, new_err: Option<f64>| {
        if let Some(e) = new_err {
            if e < cfg_err {
                improvements.push((target, e));
                err_sum_delta += e - cfg_err;
            }
        }
    };

    let mut targets: Vec<NodeId> = Vec::with_capacity(neighborhood.len() + 1);
    targets.push(source);
    targets.extend(neighborhood.iter().copied().filter(|&t| t != source));
    for &t in &targets {
        let e = probe.scheme_error(dataset, split, &[source], t);
        consider(configuration.estimate(t).error, t, e);
    }

    // Aggregations at parents whose hyperedge is now fully covered
    // (children models from the existing configuration + the candidate).
    for &(_, parent) in dataset.graph().parents(source) {
        for edge in dataset.graph().edges(parent) {
            if !edge.children.contains(&source) {
                continue;
            }
            if edge
                .children
                .iter()
                .all(|&c| c == source || configuration.has_model(c))
            {
                // Assemble a probe with all sibling models present.
                let mut agg_probe = Configuration::new(configuration.node_count());
                agg_probe.insert_model(source, model.clone());
                for &c in &edge.children {
                    if c != source {
                        if let Some(m) = configuration.model(c) {
                            agg_probe.insert_model(c, m.clone());
                        }
                    }
                }
                let e = agg_probe.scheme_error(dataset, split, &edge.children, parent);
                consider(configuration.estimate(parent).error, parent, e);
            }
        }
    }

    // Deduplicate improvements per target, keeping the best.
    improvements.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    improvements.dedup_by_key(|(t, _)| *t);
    let mut delta = 0.0;
    for &(t, e) in &improvements {
        delta += e - configuration.estimate(t).error;
    }

    let n = configuration.node_count() as f64;
    ModelEffect {
        source,
        err_new: configuration.overall_error() + delta / n,
        improvements,
    }
}

/// Commits an accepted model: inserts it and adopts its improving
/// schemes.
pub fn commit_model(
    dataset: &Dataset,
    split: &CubeSplit,
    configuration: &mut Configuration,
    model: ConfiguredModel,
    effect: &ModelEffect,
) {
    let source = effect.source;
    configuration.insert_model(source, model);
    for &(t, _) in &effect.improvements {
        // Re-adopt through the configuration so weights and error
        // bookkeeping stay consistent.
        configuration.adopt_if_better(dataset, split, &[source], t);
        // Aggregation improvements carry multi-source schemes; try those
        // too when the target is a parent of the source.
        let edges: Vec<Vec<NodeId>> = dataset
            .graph()
            .edges(t)
            .iter()
            .map(|e| e.children.clone())
            .collect();
        for children in edges {
            if children.contains(&source) && children.iter().all(|&c| configuration.has_model(c)) {
                configuration.adopt_if_better(dataset, split, &children, t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_datagen::tourism_proxy;

    fn spec() -> ModelSpec {
        ModelSpec::default_for_period(4)
    }

    #[test]
    fn criterion_alpha_one_is_error_only() {
        let c = AcceptanceCriterion::new(1.0, 100);
        assert!(c.accepts(0.5, Duration::ZERO, 0.4, Duration::from_secs(100)));
        assert!(!c.accepts(0.4, Duration::ZERO, 0.5, Duration::ZERO));
    }

    #[test]
    fn criterion_low_alpha_penalizes_cost() {
        let mut c = AcceptanceCriterion::new(0.1, 10);
        c.avg_creation_time = Duration::from_millis(10);
        // Tiny error improvement, large cost increase → reject.
        assert!(!c.accepts(0.50, Duration::ZERO, 0.499, Duration::from_millis(50),));
        // With a balanced α, a large error improvement justifies a modest
        // cost increase (one model ≈ 0.1 of the direct cost here).
        let balanced = AcceptanceCriterion {
            alpha: 0.5,
            ..c.clone()
        };
        assert!(balanced.accepts(0.50, Duration::ZERO, 0.10, Duration::from_millis(10)));
    }

    #[test]
    fn observe_creation_moves_average() {
        let mut c = AcceptanceCriterion::new(0.5, 10);
        let before = c.avg_creation_time;
        c.observe_creation(Duration::from_millis(100));
        assert!(c.avg_creation_time > before);
    }

    #[test]
    fn normalized_cost_is_share_of_direct() {
        let mut c = AcceptanceCriterion::new(0.5, 10);
        c.avg_creation_time = Duration::from_millis(10);
        // 5 models worth of average cost out of 10 nodes → 0.5.
        assert!((c.normalized_cost(Duration::from_millis(50)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn parallel_build_returns_all_candidates() {
        let ds = tourism_proxy(1);
        let split = CubeSplit::new(&ds, 0.8);
        let candidates: Vec<NodeId> = ds.graph().base_nodes()[..4].to_vec();
        let built = build_models_parallel(&split, &candidates, &spec(), &FitOptions::default(), 4);
        assert_eq!(built.len(), 4);
        for (v, m) in &built {
            assert!(candidates.contains(v));
            assert!(m.is_some());
        }
    }

    #[test]
    fn parallel_build_matches_serial_forecasts() {
        let ds = tourism_proxy(1);
        let split = CubeSplit::new(&ds, 0.8);
        let candidates: Vec<NodeId> = ds.graph().base_nodes()[..3].to_vec();
        let parallel =
            build_models_parallel(&split, &candidates, &spec(), &FitOptions::default(), 2);
        for (v, m) in parallel {
            let serial = ConfiguredModel::fit(&split, v, &spec(), &FitOptions::default()).unwrap();
            assert_eq!(m.unwrap().test_forecast, serial.test_forecast);
        }
    }

    #[test]
    fn chunked_worker_pool_respects_parallelism_limit() {
        // 16 slow tasks on a limit of 3: the observed peak concurrency
        // must never exceed the limit, and the slow tasks guarantee the
        // workers actually overlap (peak > 1).
        let items: Vec<usize> = (0..16).collect();
        let (results, peak) = run_chunked(&items, 3, |&i| {
            std::thread::sleep(Duration::from_millis(10));
            i * 2
        });
        assert_eq!(results, (0..16).map(|i| i * 2).collect::<Vec<_>>());
        assert!(peak <= 3, "peak {peak} exceeds the configured limit of 3");
        assert!(peak >= 2, "workers never overlapped (peak {peak})");

        // Degenerate limits behave: serial execution peaks at one worker.
        let (serial, peak1) = run_chunked(&items, 1, |&i| i);
        assert_eq!(serial, items);
        assert_eq!(peak1, 1);
        let (none, peak0) = run_chunked::<usize, usize, _>(&[], 4, |&i| i);
        assert!(none.is_empty());
        assert_eq!(peak0, 0);
    }

    #[test]
    fn parallel_build_with_slow_fits_stays_within_limit() {
        let ds = tourism_proxy(1);
        let split = CubeSplit::new(&ds, 0.8);
        let candidates: Vec<NodeId> = ds.graph().base_nodes()[..6].to_vec();
        let slow = FitOptions {
            artificial_cost_us: 5_000,
            ..FitOptions::default()
        };
        let (models, peak) = run_chunked(&candidates, 2, |&v| {
            ConfiguredModel::fit(&split, v, &spec(), &slow).ok()
        });
        assert!(models.iter().all(|m| m.is_some()));
        assert!(peak <= 2, "peak {peak} exceeds AdvisorOptions-style limit");
    }

    #[test]
    fn effect_measurement_matches_commit() {
        let ds = tourism_proxy(1);
        let split = CubeSplit::new(&ds, 0.8);
        let cfg = Configuration::new(ds.node_count());
        let top = ds.graph().top_node();
        let model = ConfiguredModel::fit(&split, top, &spec(), &FitOptions::default()).unwrap();
        let neighborhood: Vec<NodeId> = (0..ds.node_count()).collect();
        let effect = measure_model_effect(&ds, &split, &cfg, &model, top, &neighborhood);
        assert!(effect.err_new < cfg.overall_error());

        let mut committed = cfg.clone();
        commit_model(&ds, &split, &mut committed, model, &effect);
        assert!(
            (committed.overall_error() - effect.err_new).abs() < 1e-9,
            "measured {} vs committed {}",
            effect.err_new,
            committed.overall_error()
        );
    }

    #[test]
    fn effect_includes_parent_aggregation_when_siblings_have_models() {
        let ds = tourism_proxy(1);
        let split = CubeSplit::new(&ds, 0.8);
        let g = ds.graph();
        // Find a parent with exactly 4 children (purpose aggregation over
        // the 4 purposes for one state): give models to 3 children, then
        // measure the 4th — the parent should appear in the improvements.
        let state0 = g
            .node(&fdc_cube::Coord::new(vec![fdc_cube::STAR, 0]))
            .unwrap();
        let children = g.edges(state0)[0].children.clone();
        assert_eq!(children.len(), 4);
        let mut cfg = Configuration::new(ds.node_count());
        for &c in &children[..3] {
            let m = ConfiguredModel::fit(&split, c, &spec(), &FitOptions::default()).unwrap();
            cfg.insert_model(c, m);
        }
        let last = children[3];
        let model = ConfiguredModel::fit(&split, last, &spec(), &FitOptions::default()).unwrap();
        let effect = measure_model_effect(&ds, &split, &cfg, &model, last, &[]);
        assert!(
            effect.improvements.iter().any(|&(t, _)| t == state0),
            "parent not improved: {:?}",
            effect.improvements
        );
    }
}
