//! The headline statistical guarantee: empirical CI coverage.
//!
//! For many independently seeded cubes, build a plane, estimate the top
//! aggregate forecast, and check whether the *exact* answer (sum of
//! per-cell model forecasts over the full population — the quantity the
//! estimator is unbiased for) falls inside the reported interval. The
//! hit rate must reach the nominal confidence level minus a slack ε
//! accounting for the finite trial count and the normal approximation.
//!
//! The test is fully seeded — no flakiness: the same seeds produce the
//! same samples, estimates, and verdict on every run and platform.

use fdc_approx::{ApproxOptions, ApproxPlane, ApproxQuerySpec};
use fdc_cube::Dataset;
use fdc_datagen::{generate_highcard, HighCardSpec};
use fdc_forecast::{FitOptions, ModelSpec};

const HORIZON: usize = 3;
const CONFIDENCE: f64 = 0.90;
/// Slack below nominal: binomial noise at ~50 trials (σ ≈ 0.042 at
/// p = 0.9) plus the CLT approximation at ~100-cell samples.
const EPSILON: f64 = 0.10;

/// One trial: does the exact aggregate forecast fall inside the
/// reported CI on every horizon step?
fn trial(spec: &HighCardSpec, plane_seed: u64) -> bool {
    let ds = generate_highcard(spec).dataset;
    let plane = ApproxPlane::build(
        &ds,
        None,
        ApproxOptions {
            strata: 10,
            samples_per_stratum: 24,
            seed: plane_seed,
            confidence: CONFIDENCE,
            spec: Some(ModelSpec::Ses),
            min_population: spec.base_cells / 2,
            ..ApproxOptions::default()
        },
    )
    .unwrap();
    let top = ds.graph().top_node();
    let fc = plane
        .estimate(top, HORIZON, &ApproxQuerySpec::default())
        .unwrap();
    assert!(fc.sampled < fc.population, "trial is not actually sampling");
    let exact = exact_sum_forecast(&ds, HORIZON);
    fc.values
        .iter()
        .zip(&fc.ci_half)
        .zip(&exact)
        .all(|((est, half), truth)| (est - truth).abs() <= *half)
}

fn exact_sum_forecast(ds: &Dataset, horizon: usize) -> Vec<f64> {
    let mut out = vec![0.0; horizon];
    for &b in ds.graph().base_nodes() {
        let m = ModelSpec::Ses
            .fit(ds.series(b), &FitOptions::default())
            .unwrap();
        for (acc, v) in out.iter_mut().zip(m.forecast(horizon)) {
            *acc += v;
        }
    }
    out
}

#[test]
fn empirical_ci_coverage_meets_nominal_minus_epsilon() {
    // Two cube shapes: heavy-tailed (stratification carries the test)
    // and mild-tailed (closer to uniform scales).
    let shapes: Vec<HighCardSpec> = vec![
        HighCardSpec {
            base_cells: 600,
            groups: 30,
            length: 16,
            tail_index: 1.3,
            ..HighCardSpec::new(600, 0)
        },
        HighCardSpec {
            base_cells: 600,
            groups: 30,
            length: 16,
            tail_index: 3.0,
            seasonal_strength: 0.1,
            ..HighCardSpec::new(600, 0)
        },
    ];
    for (shape_idx, shape) in shapes.iter().enumerate() {
        let trials = 48;
        let mut hits = 0usize;
        for t in 0..trials {
            let spec = HighCardSpec {
                seed: 0xC0FE_E000 + t as u64,
                ..shape.clone()
            };
            if trial(&spec, P_SEED_BASE + t as u64) {
                hits += 1;
            }
        }
        let coverage = hits as f64 / trials as f64;
        eprintln!("shape {shape_idx}: empirical coverage {coverage:.3}");
        assert!(
            coverage >= CONFIDENCE - EPSILON,
            "shape {shape_idx}: empirical coverage {coverage:.3} below nominal {CONFIDENCE} - {EPSILON}"
        );
    }
}

const P_SEED_BASE: u64 = 0x51AB_0000;
