//! Behavioral guarantees of the approximate plane: exactness when fully
//! sampled, budget/target-CI semantics, insert stability, incremental
//! observation, cross-process reproducibility.

use fdc_approx::{ApproxOptions, ApproxPlane, ApproxQuerySpec};
use fdc_cube::Dataset;
use fdc_datagen::{generate_highcard, HighCardSpec};
use fdc_forecast::ModelSpec;

fn cube(cells: usize, seed: u64) -> Dataset {
    generate_highcard(&HighCardSpec {
        base_cells: cells,
        groups: (cells / 20).max(1),
        length: 16,
        ..HighCardSpec::new(cells, seed)
    })
    .dataset
}

fn options() -> ApproxOptions {
    ApproxOptions {
        strata: 4,
        samples_per_stratum: 16,
        min_population: 100,
        spec: Some(ModelSpec::Ses),
        ..ApproxOptions::default()
    }
}

#[test]
fn auto_registration_obeys_the_population_floor() {
    let ds = cube(400, 1);
    let plane = ApproxPlane::build(&ds, None, options()).unwrap();
    let top = ds.graph().top_node();
    // Top (400 cells) is registered; 20-cell groups are not.
    assert!(plane.is_registered(top));
    assert_eq!(plane.registered_nodes(), vec![top]);
    let info = plane.node_info(top).unwrap();
    assert_eq!(info.population, 400);
    assert!(info.sampled <= 4 * 16);
    assert!(info.sampled > 0);
}

#[test]
fn fully_sampled_node_is_exact_with_zero_ci() {
    let ds = cube(400, 2);
    // Reservoirs big enough to hold every cell: the HT expansion must
    // degenerate to the exact sum of per-cell forecasts, CI = 0.
    let plane = ApproxPlane::build(
        &ds,
        None,
        ApproxOptions {
            samples_per_stratum: 400,
            ..options()
        },
    )
    .unwrap();
    let top = ds.graph().top_node();
    let fc = plane.estimate(top, 3, &ApproxQuerySpec::default()).unwrap();
    assert_eq!(fc.sampled, 400);
    assert_eq!(fc.population, 400);
    assert!(fc.ci_half.iter().all(|&h| h == 0.0));

    // Oracle: sum of per-cell SES forecasts.
    let exact = exact_sum_forecast(&ds, 3);
    for (got, want) in fc.values.iter().zip(&exact) {
        assert!(
            (got - want).abs() <= 1e-6 * want.abs(),
            "fully sampled estimate {got} != exact {want}"
        );
    }
}

#[test]
fn budget_caps_evaluated_cells_and_widens_the_interval() {
    let ds = cube(600, 3);
    let plane = ApproxPlane::build(&ds, None, options()).unwrap();
    let top = ds.graph().top_node();
    let full = plane.estimate(top, 2, &ApproxQuerySpec::default()).unwrap();
    let capped = plane
        .estimate(
            top,
            2,
            &ApproxQuerySpec {
                budget: Some(16),
                ..ApproxQuerySpec::default()
            },
        )
        .unwrap();
    assert!(capped.sampled < full.sampled);
    assert!(capped.sampled >= 8, "budget allocation starved the strata");
    // Fewer cells → no tighter interval (same data, wider or equal CI on
    // the worst step).
    let worst = |fc: &fdc_approx::ApproxForecast| {
        fc.ci_half
            .iter()
            .zip(&fc.values)
            .map(|(h, v)| h / v.abs().max(1e-9))
            .fold(0.0_f64, f64::max)
    };
    assert!(worst(&capped) >= worst(&full) * 0.99);
}

#[test]
fn target_ci_grows_the_prefix_until_met() {
    let ds = cube(600, 4);
    let plane = ApproxPlane::build(
        &ds,
        None,
        ApproxOptions {
            samples_per_stratum: 64,
            ..options()
        },
    )
    .unwrap();
    let top = ds.graph().top_node();
    // A loose target is met with few cells; an unreachable target
    // exhausts the stored sample rather than looping forever.
    let loose = plane
        .estimate(
            top,
            2,
            &ApproxQuerySpec {
                target_ci: Some(10.0),
                ..ApproxQuerySpec::default()
            },
        )
        .unwrap();
    let strict = plane
        .estimate(
            top,
            2,
            &ApproxQuerySpec {
                target_ci: Some(1e-9),
                ..ApproxQuerySpec::default()
            },
        )
        .unwrap();
    assert!(loose.sampled <= strict.sampled);
    let full = plane.estimate(top, 2, &ApproxQuerySpec::default()).unwrap();
    assert_eq!(strict.sampled, full.sampled);
}

#[test]
fn two_processes_agree_bit_for_bit() {
    // Simulated cross-process run: independent generation + build from
    // the same seeds must answer identically down to the bits.
    let spec = ApproxQuerySpec::default();
    let run = || {
        let ds = cube(300, 5);
        let plane = ApproxPlane::build(&ds, None, options()).unwrap();
        let top = ds.graph().top_node();
        let fc = plane.estimate(top, 4, &spec).unwrap();
        (
            fc.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            fc.ci_half.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            fc.sampled,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn observe_updates_only_sampled_models() {
    let ds = cube(400, 6);
    let mut plane = ApproxPlane::build(&ds, None, options()).unwrap();
    let top = ds.graph().top_node();
    let before = plane.estimate(top, 1, &ApproxQuerySpec::default()).unwrap();
    // Push a big observation into every base cell (as the engine's
    // advance hook would); sampled models absorb it and the estimate
    // moves upward.
    for &b in ds.graph().base_nodes() {
        let last = *ds.series(b).values().last().unwrap();
        plane.observe(b, last * 3.0);
    }
    let after = plane.estimate(top, 1, &ApproxQuerySpec::default()).unwrap();
    assert!(
        after.values[0] > before.values[0] * 1.2,
        "observe had no effect: {} -> {}",
        before.values[0],
        after.values[0]
    );
}

#[test]
fn add_cell_keeps_the_sample_consistent() {
    let ds = cube(400, 7);
    let mut plane = ApproxPlane::build(&ds, None, options()).unwrap();
    let top = ds.graph().top_node();
    let pop_before = plane.node_info(top).unwrap().population;
    // Re-offer an existing base cell id as if freshly added (the plane
    // only sees ids and histories; population grows by one).
    let cell = ds.graph().base_nodes()[0];
    plane.add_cell(&ds, cell).unwrap();
    let info = plane.node_info(top).unwrap();
    assert_eq!(info.population, pop_before + 1);
    // Estimates still work and models stay ref-counted.
    assert!(plane
        .estimate(top, 2, &ApproxQuerySpec::default())
        .is_some());
    assert!(plane.sampled_cell_count() as u64 >= info.sampled.min(1));
    // Non-base nodes are rejected.
    assert!(plane.add_cell(&ds, top).is_err());
}

/// Exact oracle: fit the plane's model spec on every base cell and sum
/// the forecasts.
fn exact_sum_forecast(ds: &Dataset, horizon: usize) -> Vec<f64> {
    let mut out = vec![0.0; horizon];
    for &b in ds.graph().base_nodes() {
        let m = ModelSpec::Ses
            .fit(ds.series(b), &fdc_forecast::FitOptions::default())
            .unwrap();
        for (acc, v) in out.iter_mut().zip(m.forecast(horizon)) {
            *acc += v;
        }
    }
    out
}
