//! Deterministic stratified cell sampling.
//!
//! ## Stratification
//!
//! Cells are bucketed by *scale* — `abs_mean + stddev` of the cell's
//! history, summarized by a [`fdc_obs::MomentSummary`] — into
//! log-spaced strata. Heavy-tailed cubes put most of the aggregate's
//! mass into a few huge cells; putting same-scale cells together makes
//! the within-stratum variance (the only term in the estimator's
//! variance) small, which is where stratified sampling beats uniform
//! sampling by orders of magnitude.
//!
//! ## Seeded reservoir (bottom-k by hashed priority)
//!
//! Within a stratum the sample is the `k` cells with the smallest
//! `priority = mix(seed, cell coordinate)`. This is a reservoir sample
//! with three properties the plane needs:
//!
//! - **uniform**: the hash order is independent of the data, so any
//!   prefix of the priority-sorted members is a uniform sample — which
//!   also lets a query evaluate only a budgeted *prefix* of the stored
//!   sample;
//! - **insert-stable**: offering a new cell either displaces the
//!   current maximum or leaves the sample untouched — samples survive
//!   inserts without resampling;
//! - **process-reproducible**: priorities depend only on the seed and
//!   the cell's coordinate, never on iteration order or addresses, so
//!   two processes building over the same data agree bit-for-bit.

use fdc_cube::NodeId;

/// Deterministic per-cell priority: splitmix-style avalanche over the
/// seed and the cell's coordinate values. Stable across processes and
/// platforms (pure integer mixing, no addresses, no iteration order).
pub fn cell_priority(seed: u64, coord_values: &[u32]) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for &v in coord_values {
        h ^= u64::from(v).wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
    }
    h
}

/// Log-spaced scale boundaries partitioning cells into strata.
///
/// `bounds` holds the H−1 interior boundaries in ascending order;
/// stratum `h` covers scales in `[bounds[h-1], bounds[h])`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleStrata {
    bounds: Vec<f64>,
}

impl ScaleStrata {
    /// Builds `strata` log-spaced buckets covering `[lo, hi]`. Collapses
    /// to a single stratum when the range is degenerate.
    pub fn from_range(strata: usize, lo: f64, hi: f64) -> ScaleStrata {
        let strata = strata.max(1);
        let lo = lo.max(1e-12);
        let hi = hi.max(lo);
        if strata == 1 || hi / lo < 1.0 + 1e-9 {
            return ScaleStrata { bounds: Vec::new() };
        }
        let log_lo = lo.ln();
        let step = (hi.ln() - log_lo) / strata as f64;
        let bounds = (1..strata)
            .map(|i| (log_lo + step * i as f64).exp())
            .collect();
        ScaleStrata { bounds }
    }

    /// Rebuilds from persisted boundaries.
    pub fn from_bounds(bounds: Vec<f64>) -> ScaleStrata {
        ScaleStrata { bounds }
    }

    /// The persisted interior boundaries.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Number of strata.
    pub fn count(&self) -> usize {
        self.bounds.len() + 1
    }

    /// The stratum a scale falls into.
    pub fn stratum_of(&self, scale: f64) -> usize {
        self.bounds.partition_point(|&b| b <= scale)
    }
}

/// A bottom-k reservoir over one stratum of one aggregation node:
/// members are kept sorted ascending by priority, so any prefix is a
/// valid uniform sub-sample.
#[derive(Debug, Clone, PartialEq)]
pub struct StratumReservoir {
    cap: usize,
    /// Total cells ever offered (the stratum population N_h).
    population: u64,
    /// The k lowest-priority members, ascending by priority.
    members: Vec<(u64, NodeId)>,
}

impl StratumReservoir {
    /// An empty reservoir holding at most `cap` members.
    pub fn new(cap: usize) -> StratumReservoir {
        StratumReservoir {
            cap: cap.max(1),
            population: 0,
            members: Vec::new(),
        }
    }

    /// Rebuilds from persisted state. `members` must be ascending by
    /// priority.
    pub fn from_parts(cap: usize, population: u64, members: Vec<(u64, NodeId)>) -> Self {
        debug_assert!(members.windows(2).all(|w| w[0].0 <= w[1].0));
        StratumReservoir {
            cap: cap.max(1),
            population,
            members,
        }
    }

    /// Offers a cell; returns the cell it displaced (`None` when the
    /// sample is unchanged or still filling). Ties on priority break by
    /// node id so the sample stays a deterministic function of the set.
    pub fn offer(&mut self, priority: u64, cell: NodeId) -> Option<NodeId> {
        self.population += 1;
        let pos = self
            .members
            .partition_point(|&(p, c)| (p, c) < (priority, cell));
        if self.members.len() < self.cap {
            self.members.insert(pos, (priority, cell));
            return None;
        }
        if pos >= self.cap {
            return None;
        }
        let evicted = self.members.pop().map(|(_, c)| c);
        self.members.insert(pos, (priority, cell));
        evicted
    }

    /// Stratum population N_h.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Sampled members, ascending by priority.
    pub fn members(&self) -> &[(u64, NodeId)] {
        &self.members
    }

    /// Reservoir capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }
}

/// The stratified sample of one aggregation node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSample {
    strata: Vec<StratumReservoir>,
}

impl NodeSample {
    /// An empty sample over `strata` strata, each capped at `cap`.
    pub fn new(strata: usize, cap: usize) -> NodeSample {
        NodeSample {
            strata: (0..strata.max(1))
                .map(|_| StratumReservoir::new(cap))
                .collect(),
        }
    }

    /// Rebuilds from persisted reservoirs.
    pub fn from_strata(strata: Vec<StratumReservoir>) -> NodeSample {
        NodeSample { strata }
    }

    /// Offers a cell into its stratum; returns any displaced cell.
    pub fn offer(&mut self, stratum: usize, priority: u64, cell: NodeId) -> Option<NodeId> {
        let h = stratum.min(self.strata.len() - 1);
        self.strata[h].offer(priority, cell)
    }

    /// The per-stratum reservoirs.
    pub fn strata(&self) -> &[StratumReservoir] {
        &self.strata
    }

    /// Total population across strata (the node's base descendants).
    pub fn population(&self) -> u64 {
        self.strata.iter().map(|s| s.population()).sum()
    }

    /// Total sampled cells across strata.
    pub fn sampled(&self) -> u64 {
        self.strata.iter().map(|s| s.members().len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_are_stable_and_well_spread() {
        let a = cell_priority(7, &[1, 2]);
        assert_eq!(a, cell_priority(7, &[1, 2]));
        assert_ne!(a, cell_priority(8, &[1, 2]));
        assert_ne!(a, cell_priority(7, &[2, 1]));
        // Spread: over 1000 cells, the bottom-100 by priority should
        // not cluster in cell-id order.
        let mut prio: Vec<(u64, u32)> = (0..1000).map(|v| (cell_priority(3, &[v]), v)).collect();
        prio.sort();
        let mean_id: f64 = prio[..100].iter().map(|&(_, v)| v as f64).sum::<f64>() / 100.0;
        assert!(
            (mean_id - 500.0).abs() < 150.0,
            "bottom-k clustered: {mean_id}"
        );
    }

    #[test]
    fn reservoir_is_order_independent() {
        let cells: Vec<NodeId> = (0..500).collect();
        let mut fwd = StratumReservoir::new(16);
        for &c in &cells {
            fwd.offer(cell_priority(1, &[c as u32]), c);
        }
        let mut rev = StratumReservoir::new(16);
        for &c in cells.iter().rev() {
            rev.offer(cell_priority(1, &[c as u32]), c);
        }
        assert_eq!(fwd.members(), rev.members());
        assert_eq!(fwd.population(), rev.population());
    }

    #[test]
    fn reservoir_keeps_the_k_smallest_priorities() {
        let mut r = StratumReservoir::new(8);
        let mut all: Vec<(u64, NodeId)> = (0..200)
            .map(|c| (cell_priority(9, &[c as u32]), c as NodeId))
            .collect();
        for &(p, c) in &all {
            r.offer(p, c);
        }
        all.sort();
        assert_eq!(r.members(), &all[..8]);
    }

    #[test]
    fn insert_stability_new_cell_changes_at_most_one_member() {
        let mut r = StratumReservoir::new(8);
        for c in 0..100u32 {
            r.offer(cell_priority(2, &[c]), c as NodeId);
        }
        let before: Vec<NodeId> = r.members().iter().map(|&(_, c)| c).collect();
        r.offer(cell_priority(2, &[100]), 100);
        let after: Vec<NodeId> = r.members().iter().map(|&(_, c)| c).collect();
        let kept = after.iter().filter(|c| before.contains(c)).count();
        assert!(kept >= 7, "insert displaced more than one member");
    }

    #[test]
    fn log_strata_partition_scales() {
        let s = ScaleStrata::from_range(4, 1.0, 10_000.0);
        assert_eq!(s.count(), 4);
        assert_eq!(s.stratum_of(0.5), 0);
        assert_eq!(s.stratum_of(5.0), 0);
        assert_eq!(s.stratum_of(50.0), 1);
        assert_eq!(s.stratum_of(500.0), 2);
        assert_eq!(s.stratum_of(5_000.0), 3);
        assert_eq!(s.stratum_of(1e9), 3);
        // Degenerate range collapses to one stratum.
        assert_eq!(ScaleStrata::from_range(8, 3.0, 3.0).count(), 1);
    }

    #[test]
    fn node_sample_routes_to_strata_and_counts() {
        let mut ns = NodeSample::new(2, 4);
        for c in 0..10u32 {
            ns.offer((c % 2) as usize, cell_priority(5, &[c]), c as NodeId);
        }
        assert_eq!(ns.population(), 10);
        assert_eq!(ns.sampled(), 8);
        assert_eq!(ns.strata()[0].population(), 5);
    }
}
