//! Versioned binary codec for persisting an [`ApproxPlane`].
//!
//! The plane lives in a sidecar file next to the F²DB catalog (the
//! catalog bytes themselves never change when approximation is enabled
//! — exact results stay byte-identical). Same hand-rolled little-endian
//! style as the catalog codec: no serialization crates, explicit
//! layout, versioned magic header.
//!
//! Layout (v1):
//!
//! ```text
//! "FDCA" | version u16
//! options: strata, samples_per_stratum, seed, min_population, max_nodes (u64 each), confidence f64
//! spec: model-spec tag (+ spec fields)
//! strata bounds: len-prefixed f64s
//! nodes: count, then per node: id u64, strata count, then per stratum:
//!        cap, population, member count, (priority u64, cell u64)*
//! models: count, then per model: cell u64, model state
//!         (spec tag + fields, params, state, observations)
//! ```
//!
//! Fit options are *not* persisted: a restored plane refits (via
//! [`ApproxPlane::add_cell`]) with the caller's current options, which is
//! what a process restart wants anyway.

use crate::plane::{ApproxOptions, ApproxPlane};
use crate::sampler::{NodeSample, ScaleStrata, StratumReservoir};
use crate::{ApproxError, Result};
use fdc_cube::NodeId;
use fdc_forecast::model::restore_model;
use fdc_forecast::{ForecastModel, ModelSpec, ModelState, SeasonalKind};
use std::collections::HashMap;

/// Magic bytes identifying a plane file.
pub const MAGIC: &[u8; 4] = b"FDCA";
/// On-disk format version.
pub const VERSION: u16 = 1;

/// Serializes a plane.
pub fn encode_plane(plane: &ApproxPlane) -> Vec<u8> {
    let (options, spec, strata, nodes, models) = plane.parts();
    let mut buf = Vec::with_capacity(4096);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());

    put_u64(&mut buf, options.strata as u64);
    put_u64(&mut buf, options.samples_per_stratum as u64);
    put_u64(&mut buf, options.seed);
    put_u64(&mut buf, options.min_population as u64);
    put_u64(&mut buf, options.max_nodes as u64);
    put_f64(&mut buf, options.confidence);

    put_spec(&mut buf, spec);
    put_f64_slice(&mut buf, strata.bounds());

    // Deterministic node order so equal planes encode to equal bytes.
    let mut node_ids: Vec<NodeId> = nodes.keys().copied().collect();
    node_ids.sort_unstable();
    put_u64(&mut buf, node_ids.len() as u64);
    for id in node_ids {
        let ns = &nodes[&id];
        put_u64(&mut buf, id as u64);
        put_u64(&mut buf, ns.strata().len() as u64);
        for s in ns.strata() {
            put_u64(&mut buf, s.cap() as u64);
            put_u64(&mut buf, s.population());
            put_u64(&mut buf, s.members().len() as u64);
            for &(priority, cell) in s.members() {
                put_u64(&mut buf, priority);
                put_u64(&mut buf, cell as u64);
            }
        }
    }

    let mut cells: Vec<NodeId> = models.keys().copied().collect();
    cells.sort_unstable();
    put_u64(&mut buf, cells.len() as u64);
    for cell in cells {
        put_u64(&mut buf, cell as u64);
        put_model_state(&mut buf, &models[&cell].state());
    }
    buf
}

/// Restores a plane. The caller supplies the fit options the restored
/// plane should use for future refits (not persisted — see module docs).
pub fn decode_plane(bytes: &[u8], fit: fdc_forecast::FitOptions) -> Result<ApproxPlane> {
    let mut d = Cursor { buf: bytes };
    let magic = d.take(4)?;
    if magic != MAGIC {
        return Err(ApproxError::Codec("bad plane magic".into()));
    }
    let version = u16::from_le_bytes(d.take(2)?.try_into().unwrap());
    if version != VERSION {
        return Err(ApproxError::Codec(format!(
            "unsupported plane version {version} (this build reads {VERSION})"
        )));
    }

    let strata_opt = d.get_u64()? as usize;
    let samples_per_stratum = d.get_u64()? as usize;
    let seed = d.get_u64()?;
    let min_population = d.get_u64()? as usize;
    let max_nodes = d.get_u64()? as usize;
    let confidence = d.get_f64()?;

    let spec = get_spec(&mut d)?;
    let bounds = d.get_f64_vec()?;
    let strata = ScaleStrata::from_bounds(bounds);

    let node_count = d.get_len()?;
    let mut nodes = HashMap::with_capacity(node_count);
    for _ in 0..node_count {
        let id = d.get_u64()? as NodeId;
        let stratum_count = d.get_len()?;
        let mut reservoirs = Vec::with_capacity(stratum_count);
        for _ in 0..stratum_count {
            let cap = d.get_u64()? as usize;
            let population = d.get_u64()?;
            let member_count = d.get_len()?;
            let mut members = Vec::with_capacity(member_count);
            for _ in 0..member_count {
                let priority = d.get_u64()?;
                let cell = d.get_u64()? as NodeId;
                members.push((priority, cell));
            }
            if !members.windows(2).all(|w| w[0] <= w[1]) {
                return Err(ApproxError::Codec("reservoir members out of order".into()));
            }
            reservoirs.push(StratumReservoir::from_parts(cap, population, members));
        }
        nodes.insert(id, NodeSample::from_strata(reservoirs));
    }

    let model_count = d.get_len()?;
    let mut models: HashMap<NodeId, Box<dyn ForecastModel>> = HashMap::with_capacity(model_count);
    for _ in 0..model_count {
        let cell = d.get_u64()? as NodeId;
        let state = get_model_state(&mut d)?;
        let model =
            restore_model(&state).map_err(|e| ApproxError::Codec(format!("cell {cell}: {e}")))?;
        models.insert(cell, model);
    }

    let options = ApproxOptions {
        strata: strata_opt,
        samples_per_stratum,
        seed,
        confidence,
        spec: Some(spec.clone()),
        fit,
        min_population,
        max_nodes,
    };
    Ok(ApproxPlane::from_parts(
        options, spec, strata, nodes, models,
    ))
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64_slice(buf: &mut Vec<u8>, vs: &[f64]) {
    put_u64(buf, vs.len() as u64);
    for &v in vs {
        put_f64(buf, v);
    }
}

fn put_spec(buf: &mut Vec<u8>, spec: &ModelSpec) {
    match spec {
        ModelSpec::Ses => buf.push(0),
        ModelSpec::Holt => buf.push(1),
        ModelSpec::HoltWinters { period, seasonal } => {
            buf.push(2);
            put_u64(buf, *period as u64);
            buf.push(match seasonal {
                SeasonalKind::Additive => 0,
                SeasonalKind::Multiplicative => 1,
            });
        }
        ModelSpec::Arima { p, d, q } => {
            buf.push(3);
            put_u64(buf, *p as u64);
            put_u64(buf, *d as u64);
            put_u64(buf, *q as u64);
        }
        ModelSpec::Sarima {
            order,
            seasonal,
            period,
        } => {
            buf.push(4);
            put_u64(buf, order.0 as u64);
            put_u64(buf, order.1 as u64);
            put_u64(buf, order.2 as u64);
            put_u64(buf, seasonal.0 as u64);
            put_u64(buf, seasonal.1 as u64);
            put_u64(buf, seasonal.2 as u64);
            put_u64(buf, *period as u64);
        }
        ModelSpec::HoltDamped => buf.push(5),
    }
}

fn put_model_state(buf: &mut Vec<u8>, state: &ModelState) {
    put_spec(buf, &state.spec);
    put_f64_slice(buf, &state.params);
    put_f64_slice(buf, &state.state);
    put_u64(buf, state.observations as u64);
}

struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(ApproxError::Codec("truncated plane file".into()));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn get_len(&mut self) -> Result<usize> {
        let v = self.get_u64()?;
        if v > (1 << 40) {
            return Err(ApproxError::Codec(
                "implausible length in plane file".into(),
            ));
        }
        Ok(v as usize)
    }

    fn get_f64_vec(&mut self) -> Result<Vec<f64>> {
        let n = self.get_len()?;
        if self.buf.len() < n * 8 {
            return Err(ApproxError::Codec("truncated f64 vector".into()));
        }
        (0..n).map(|_| self.get_f64()).collect()
    }
}

fn get_spec(d: &mut Cursor<'_>) -> Result<ModelSpec> {
    let tag = d.take(1)?[0];
    Ok(match tag {
        0 => ModelSpec::Ses,
        1 => ModelSpec::Holt,
        5 => ModelSpec::HoltDamped,
        2 => {
            let period = d.get_u64()? as usize;
            let seasonal = match d.take(1)?[0] {
                0 => SeasonalKind::Additive,
                1 => SeasonalKind::Multiplicative,
                k => return Err(ApproxError::Codec(format!("bad seasonal kind {k}"))),
            };
            ModelSpec::HoltWinters { period, seasonal }
        }
        3 => ModelSpec::Arima {
            p: d.get_u64()? as usize,
            d: d.get_u64()? as usize,
            q: d.get_u64()? as usize,
        },
        4 => ModelSpec::Sarima {
            order: (
                d.get_u64()? as usize,
                d.get_u64()? as usize,
                d.get_u64()? as usize,
            ),
            seasonal: (
                d.get_u64()? as usize,
                d.get_u64()? as usize,
                d.get_u64()? as usize,
            ),
            period: d.get_u64()? as usize,
        },
        t => return Err(ApproxError::Codec(format!("bad model spec tag {t}"))),
    })
}

fn get_model_state(d: &mut Cursor<'_>) -> Result<ModelState> {
    let spec = get_spec(d)?;
    let params = d.get_f64_vec()?;
    let state = d.get_f64_vec()?;
    let observations = d.get_u64()? as usize;
    Ok(ModelState {
        spec,
        params,
        state,
        observations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::ApproxQuerySpec;
    use fdc_datagen::{generate_highcard, HighCardSpec};
    use fdc_forecast::FitOptions;

    fn plane() -> (fdc_cube::Dataset, ApproxPlane) {
        let ds = generate_highcard(&HighCardSpec {
            base_cells: 400,
            groups: 20,
            length: 16,
            ..HighCardSpec::new(400, 33)
        })
        .dataset;
        let plane = ApproxPlane::build(
            &ds,
            None,
            ApproxOptions {
                strata: 4,
                samples_per_stratum: 16,
                min_population: 100,
                ..ApproxOptions::default()
            },
        )
        .unwrap();
        (ds, plane)
    }

    #[test]
    fn round_trip_preserves_estimates_bit_for_bit() {
        let (ds, original) = plane();
        let bytes = encode_plane(&original);
        let restored = decode_plane(&bytes, FitOptions::default()).unwrap();

        assert_eq!(original.registered_nodes(), restored.registered_nodes());
        assert_eq!(original.sampled_cell_count(), restored.sampled_cell_count());
        assert_eq!(original.strata().bounds(), restored.strata().bounds());

        let top = ds.graph().top_node();
        let spec = ApproxQuerySpec::default();
        let a = original.estimate(top, 4, &spec).unwrap();
        let b = restored.estimate(top, 4, &spec).unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.values), bits(&b.values));
        assert_eq!(bits(&a.ci_half), bits(&b.ci_half));
        assert_eq!(a.sampled, b.sampled);
        assert_eq!(a.population, b.population);
    }

    #[test]
    fn encoding_is_deterministic() {
        let (_, a) = plane();
        let (_, b) = plane();
        assert_eq!(encode_plane(&a), encode_plane(&b));
    }

    #[test]
    fn corrupt_input_is_rejected_not_panicked() {
        let (_, p) = plane();
        let bytes = encode_plane(&p);
        assert!(decode_plane(b"nope", FitOptions::default()).is_err());
        assert!(decode_plane(&bytes[..bytes.len() / 2], FitOptions::default()).is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(decode_plane(&bad_magic, FitOptions::default()).is_err());
    }
}
