//! # fdc-approx — sampled approximate forecasting
//!
//! Exact aggregate forecasting answers `SUM(sales) … FORECAST h` by
//! aggregating a forecast from *every* base cell under the queried node
//! — linear in the node's population, which at 10⁵–10⁶ cells blows any
//! interactive latency budget. This crate trades a bounded, *reported*
//! amount of accuracy for orders-of-magnitude less work:
//!
//! 1. **Stratified cell sample** ([`sampler`]): cells are bucketed into
//!    log-spaced strata by scale (`abs_mean + stddev` of their history)
//!    and each stratum keeps a bottom-k-by-hashed-priority reservoir —
//!    deterministic in (seed, cell coordinate), order-independent,
//!    stable under inserts, and bit-reproducible across processes.
//! 2. **Models on sampled cells only** ([`plane`]): the
//!    [`ApproxPlane`] fits one forecast model per *sampled* cell and
//!    answers a node's aggregate forecast as a stratified
//!    Horvitz–Thompson scale-up `Σ_h N_h·ȳ_h` of the sampled forecasts,
//!    with a per-step confidence interval from the within-stratum sample
//!    variance (finite-population corrected).
//! 3. **Coverage-vs-latency planning** ([`coverage`]): given a measured
//!    per-cell forecast cost and a query latency budget, the planner
//!    decides per node whether to answer exactly or from the sample —
//!    the advisor surface for high-cardinality cubes.
//! 4. **Persistence** ([`codec`]): planes serialize to a versioned
//!    sidecar file; the F²DB catalog bytes never change, so exact-mode
//!    results stay byte-identical when approximation is enabled.
//!
//! Queries choose per request between a cell `budget` (hard cap on
//! evaluated cells) and a `target_ci` (relative half-width goal met by
//! growing the evaluated prefix of the stored sample) — see
//! [`ApproxQuerySpec`].

pub mod codec;
pub mod coverage;
pub mod plane;
pub mod sampler;

pub use codec::{decode_plane, encode_plane};
pub use coverage::{
    plan_coverage, CoverageChoice, CoverageDecision, CoverageOptions, CoveragePlan,
};
pub use plane::{ApproxForecast, ApproxNodeInfo, ApproxOptions, ApproxPlane, ApproxQuerySpec};
pub use sampler::{cell_priority, NodeSample, ScaleStrata, StratumReservoir};

/// Errors of the approximate plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApproxError {
    /// Plane construction / maintenance failed.
    Build(String),
    /// Fitting a sampled cell's model failed.
    Fit(String),
    /// Persisted plane bytes are invalid.
    Codec(String),
}

impl std::fmt::Display for ApproxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApproxError::Build(m) => write!(f, "approx build error: {m}"),
            ApproxError::Fit(m) => write!(f, "approx fit error: {m}"),
            ApproxError::Codec(m) => write!(f, "approx codec error: {m}"),
        }
    }
}

impl std::error::Error for ApproxError {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, ApproxError>;
