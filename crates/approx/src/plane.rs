//! The approximate-forecasting plane: per-node stratified samples plus
//! models fitted only on sampled cells.
//!
//! A plane is built once over a dataset (one pass over the base cells,
//! walking each cell's ancestor closure), answers aggregate forecasts
//! for its registered nodes in O(sample size) — independent of the
//! node's population — and survives inserts: value inserts update the
//! sampled models incrementally, new cells enter the reservoirs by
//! hashed priority without resampling.

use crate::sampler::{cell_priority, NodeSample, ScaleStrata};
use crate::{ApproxError, Result};
use fdc_cube::{Coord, Dataset, NodeId, TimeSeriesGraph, STAR};
use fdc_forecast::sampling::{stratified_estimate, StratumSample};
use fdc_forecast::{FitOptions, ForecastModel, ModelSpec};
use fdc_obs::MomentSummary;
use std::collections::HashMap;

/// Build-time options of an [`ApproxPlane`].
#[derive(Debug, Clone)]
pub struct ApproxOptions {
    /// Number of scale strata.
    pub strata: usize,
    /// Reservoir capacity per stratum — the *stored* sample; queries may
    /// evaluate a budgeted prefix of it.
    pub samples_per_stratum: usize,
    /// Seed of the priority hash. Two planes over the same data and
    /// seed sample identical cells, in any process.
    pub seed: u64,
    /// Nominal confidence level of reported intervals.
    pub confidence: f64,
    /// Model specification for sampled cells; `None` picks the default
    /// for the data's seasonality and history length.
    pub spec: Option<ModelSpec>,
    /// Fit options for sampled-cell models.
    pub fit: FitOptions,
    /// Auto-registration floor: nodes with fewer base descendants than
    /// this answer exactly and are not registered.
    pub min_population: usize,
    /// Cap on auto-registered nodes (largest populations win).
    pub max_nodes: usize,
}

impl Default for ApproxOptions {
    fn default() -> Self {
        ApproxOptions {
            strata: 8,
            samples_per_stratum: 64,
            seed: 0xA9B0,
            confidence: 0.95,
            spec: None,
            fit: FitOptions::default(),
            min_population: 256,
            max_nodes: 4096,
        }
    }
}

/// Per-query approximation controls (the `{ target_ci | budget }` of a
/// `QueryOptions::approx`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ApproxQuerySpec {
    /// Maximum sampled cells to evaluate (proportionally allocated over
    /// strata). `None` uses the full stored sample.
    pub budget: Option<usize>,
    /// Target *relative* CI half-width (half-width / |estimate|); the
    /// plane evaluates growing prefixes of the stored sample until the
    /// target is met or the sample is exhausted.
    pub target_ci: Option<f64>,
    /// Confidence level override (plane default when `None`).
    pub confidence: Option<f64>,
}

/// An approximate aggregate forecast with its uncertainty.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxForecast {
    /// Estimated aggregate per horizon step.
    pub values: Vec<f64>,
    /// CI half-width per horizon step (same order as `values`).
    pub ci_half: Vec<f64>,
    /// Cells actually evaluated.
    pub sampled: u64,
    /// The node's base-cell population.
    pub population: u64,
    /// Confidence level of `ci_half`.
    pub confidence: f64,
}

/// Static sampling facts about a registered node (for `EXPLAIN`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApproxNodeInfo {
    /// Base-cell population under the node.
    pub population: u64,
    /// Cells in the stored sample.
    pub sampled: u64,
    /// Strata count.
    pub strata: usize,
}

/// The sampling plane. See the module docs.
pub struct ApproxPlane {
    options: ApproxOptions,
    spec: ModelSpec,
    strata: ScaleStrata,
    nodes: HashMap<NodeId, NodeSample>,
    /// Fitted models of sampled cells, shared across registered nodes.
    models: HashMap<NodeId, Box<dyn ForecastModel>>,
    /// How many reservoirs reference each sampled cell — a displaced
    /// cell's model is dropped only when no reservoir holds it anymore.
    refs: HashMap<NodeId, u32>,
}

/// Borrowed view of a plane's encodable parts, in codec order.
pub(crate) type PlaneParts<'a> = (
    &'a ApproxOptions,
    &'a ModelSpec,
    &'a ScaleStrata,
    &'a HashMap<NodeId, NodeSample>,
    &'a HashMap<NodeId, Box<dyn ForecastModel>>,
);

impl ApproxPlane {
    /// Builds a plane over `dataset`. `targets` explicitly lists the
    /// nodes to register; `None` auto-registers every non-base node
    /// with at least `options.min_population` base descendants (largest
    /// first, capped at `options.max_nodes`).
    pub fn build(
        dataset: &Dataset,
        targets: Option<&[NodeId]>,
        options: ApproxOptions,
    ) -> Result<ApproxPlane> {
        let g = dataset.graph();
        let scales = cell_scales(dataset);
        let (lo, hi) = scale_range(&scales);
        let strata = ScaleStrata::from_range(options.strata, lo, hi);

        let targets: Vec<NodeId> = match targets {
            Some(t) => {
                for &n in t {
                    if g.level(n) == 0 {
                        return Err(ApproxError::Build(format!(
                            "node {n} is a base cell; only aggregation nodes can be sampled"
                        )));
                    }
                }
                t.to_vec()
            }
            None => auto_targets(g, &options),
        };

        let mut nodes: HashMap<NodeId, NodeSample> = targets
            .iter()
            .map(|&n| {
                (
                    n,
                    NodeSample::new(strata.count(), options.samples_per_stratum),
                )
            })
            .collect();

        // One pass over the base cells: each cell walks its ancestor
        // closure and offers itself into every registered ancestor's
        // reservoir. Ancestor count per cell is bounded by the schema's
        // canonical subset count (small — FD chains collapse it), so
        // the build is O(base_count), never O(base_count × nodes).
        for &b in g.base_nodes() {
            let prio = cell_priority(options.seed, g.coord(b).values());
            let h = strata.stratum_of(scales[&b]);
            for anc in ancestors(g, b) {
                if let Some(ns) = nodes.get_mut(&anc) {
                    ns.offer(h, prio, b);
                }
            }
        }

        let spec = options.spec.clone().unwrap_or_else(|| {
            ModelSpec::default_for_history(
                dataset.series(0).granularity().seasonal_period(),
                dataset.series_len(),
            )
        });

        // Fit models once per distinct sampled cell.
        let mut refs: HashMap<NodeId, u32> = HashMap::new();
        for ns in nodes.values() {
            for s in ns.strata() {
                for &(_, cell) in s.members() {
                    *refs.entry(cell).or_insert(0) += 1;
                }
            }
        }
        let mut models = HashMap::with_capacity(refs.len());
        for &cell in refs.keys() {
            models.insert(cell, fit_cell(dataset, cell, &spec, &options.fit)?);
        }

        Ok(ApproxPlane {
            options,
            spec,
            strata,
            nodes,
            models,
            refs,
        })
    }

    /// The plane's options.
    pub fn options(&self) -> &ApproxOptions {
        &self.options
    }

    /// The resolved model spec sampled cells are fitted with.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The stratification boundaries.
    pub fn strata(&self) -> &ScaleStrata {
        &self.strata
    }

    /// Whether `node` answers approximately from this plane.
    pub fn is_registered(&self, node: NodeId) -> bool {
        self.nodes.contains_key(&node)
    }

    /// Registered nodes, ascending.
    pub fn registered_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.nodes.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Distinct cells with a fitted model.
    pub fn sampled_cell_count(&self) -> usize {
        self.models.len()
    }

    /// Sampling facts for a registered node.
    pub fn node_info(&self, node: NodeId) -> Option<ApproxNodeInfo> {
        self.nodes.get(&node).map(|ns| ApproxNodeInfo {
            population: ns.population(),
            sampled: ns.sampled(),
            strata: ns.strata().len(),
        })
    }

    /// Internal accessor for the codec.
    pub(crate) fn parts(&self) -> PlaneParts<'_> {
        (
            &self.options,
            &self.spec,
            &self.strata,
            &self.nodes,
            &self.models,
        )
    }

    /// Internal constructor for the codec.
    pub(crate) fn from_parts(
        options: ApproxOptions,
        spec: ModelSpec,
        strata: ScaleStrata,
        nodes: HashMap<NodeId, NodeSample>,
        models: HashMap<NodeId, Box<dyn ForecastModel>>,
    ) -> ApproxPlane {
        let mut refs: HashMap<NodeId, u32> = HashMap::new();
        for ns in nodes.values() {
            for s in ns.strata() {
                for &(_, cell) in s.members() {
                    *refs.entry(cell).or_insert(0) += 1;
                }
            }
        }
        ApproxPlane {
            options,
            spec,
            strata,
            nodes,
            models,
            refs,
        }
    }

    /// Feeds one committed observation of a base cell into its sampled
    /// model (no-op for unsampled cells). O(1) per call — this sits on
    /// the engine's advance path.
    pub fn observe(&mut self, cell: NodeId, value: f64) {
        if let Some(model) = self.models.get_mut(&cell) {
            model.update(value);
        }
    }

    /// Registers a freshly added base cell: it enters every registered
    /// ancestor's reservoir by priority (possibly displacing a member),
    /// and gets a model fitted on its history when sampled. The sample
    /// *survives* the insert — at most one member per affected stratum
    /// changes.
    pub fn add_cell(&mut self, dataset: &Dataset, cell: NodeId) -> Result<()> {
        let g = dataset.graph();
        if g.level(cell) != 0 {
            return Err(ApproxError::Build(format!(
                "node {cell} is not a base cell"
            )));
        }
        let mut summary = MomentSummary::new();
        for &v in dataset.series(cell).values() {
            summary.insert(v);
        }
        let scale = summary.abs_mean() + summary.stddev();
        let h = self.strata.stratum_of(scale);
        let prio = cell_priority(self.options.seed, g.coord(cell).values());
        let mut entered = false;
        let mut evicted: Vec<NodeId> = Vec::new();
        for anc in ancestors(g, cell) {
            if let Some(ns) = self.nodes.get_mut(&anc) {
                let before = ns.sampled();
                if let Some(out) = ns.offer(h, prio, cell) {
                    evicted.push(out);
                    entered = true;
                } else if ns.sampled() > before {
                    entered = true;
                }
            }
        }
        if entered && !self.models.contains_key(&cell) {
            let model = fit_cell(dataset, cell, &self.spec, &self.options.fit)?;
            self.models.insert(cell, model);
        }
        if entered {
            *self.refs.entry(cell).or_insert(0) += 1;
        }
        for out in evicted {
            if let Some(r) = self.refs.get_mut(&out) {
                *r = r.saturating_sub(1);
                if *r == 0 {
                    self.refs.remove(&out);
                    self.models.remove(&out);
                }
            }
        }
        Ok(())
    }

    /// Answers an aggregate forecast for a registered node: a stratified
    /// Horvitz–Thompson scale-up of the sampled cells' model forecasts,
    /// with a per-step confidence interval. Returns `None` for
    /// unregistered nodes (the caller answers exactly).
    pub fn estimate(
        &self,
        node: NodeId,
        horizon: usize,
        spec: &ApproxQuerySpec,
    ) -> Option<ApproxForecast> {
        let ns = self.nodes.get(&node)?;
        let confidence = spec.confidence.unwrap_or(self.options.confidence);
        let total_sampled: usize = ns.sampled() as usize;
        if total_sampled == 0 {
            return Some(ApproxForecast {
                values: vec![0.0; horizon],
                ci_half: vec![0.0; horizon],
                sampled: 0,
                population: ns.population(),
                confidence,
            });
        }

        // Per-member forecasts, computed once per stratum in priority
        // order; budgeted evaluations reuse prefixes.
        let forecasts: Vec<Vec<Vec<f64>>> = ns
            .strata()
            .iter()
            .map(|s| {
                s.members()
                    .iter()
                    .map(|&(_, cell)| {
                        self.models
                            .get(&cell)
                            .map(|m| m.forecast(horizon))
                            .unwrap_or_else(|| vec![0.0; horizon])
                    })
                    .collect()
            })
            .collect();

        let eval = |budget: usize| -> ApproxForecast {
            let counts = budget_allocation(ns, budget);
            let mut values = Vec::with_capacity(horizon);
            let mut ci_half = Vec::with_capacity(horizon);
            let mut sampled = 0u64;
            for t in 0..horizon {
                let strata: Vec<StratumSample> = ns
                    .strata()
                    .iter()
                    .enumerate()
                    .map(|(h, s)| {
                        let n = counts[h];
                        let vals: Vec<f64> = forecasts[h][..n].iter().map(|f| f[t]).collect();
                        StratumSample::from_values(s.population(), &vals)
                    })
                    .collect();
                let est = stratified_estimate(&strata);
                if t == 0 {
                    sampled = est.sampled;
                }
                values.push(est.total);
                ci_half.push(est.ci_half_width(confidence));
            }
            ApproxForecast {
                values,
                ci_half,
                sampled,
                population: ns.population(),
                confidence,
            }
        };

        match (spec.target_ci, spec.budget) {
            (Some(target), _) => {
                // Grow the evaluated prefix until the relative CI is
                // tight enough (or the stored sample is exhausted).
                let floor = spec.budget.unwrap_or(2 * ns.strata().len()).max(4);
                let mut budget = floor.min(total_sampled);
                loop {
                    let fc = eval(budget);
                    let worst = fc
                        .values
                        .iter()
                        .zip(&fc.ci_half)
                        .map(|(v, h)| if v.abs() > 1e-12 { h / v.abs() } else { 0.0 })
                        .fold(0.0_f64, f64::max);
                    if worst <= target || budget >= total_sampled {
                        return Some(fc);
                    }
                    budget = (budget * 2).min(total_sampled);
                }
            }
            (None, Some(budget)) => Some(eval(budget.min(total_sampled))),
            (None, None) => Some(eval(total_sampled)),
        }
    }
}

/// Proportional (Neyman-lite) budget allocation: stratum h evaluates
/// `round(budget · N_h / N)` of its stored members, clamped to `[2,
/// n_h]` where the reservoir allows, so every non-trivial stratum keeps
/// an estimable variance.
fn budget_allocation(ns: &NodeSample, budget: usize) -> Vec<usize> {
    let total_pop: u64 = ns.population().max(1);
    ns.strata()
        .iter()
        .map(|s| {
            let n_h = s.members().len();
            if n_h == 0 {
                return 0;
            }
            let share =
                ((budget as f64) * (s.population() as f64) / (total_pop as f64)).round() as usize;
            share.clamp(2.min(n_h), n_h)
        })
        .collect()
}

/// Per-cell scale: `abs_mean + stddev` of the cell's history.
fn cell_scales(dataset: &Dataset) -> HashMap<NodeId, f64> {
    let g = dataset.graph();
    let mut scales = HashMap::with_capacity(g.base_nodes().len());
    for &b in g.base_nodes() {
        let mut s = MomentSummary::new();
        for &v in dataset.series(b).values() {
            s.insert(v);
        }
        scales.insert(b, s.abs_mean() + s.stddev());
    }
    scales
}

fn scale_range(scales: &HashMap<NodeId, f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &s in scales.values() {
        lo = lo.min(s);
        hi = hi.max(s);
    }
    if !lo.is_finite() || !hi.is_finite() {
        (1.0, 1.0)
    } else {
        (lo, hi)
    }
}

/// The canonical ancestor closure of a base cell (the cell's coordinate
/// with every subset of dimensions starred, canonicalized and resolved;
/// excludes the cell itself). Deterministic ascending order.
pub(crate) fn ancestors(g: &TimeSeriesGraph, base: NodeId) -> Vec<NodeId> {
    let coord = g.coord(base);
    let k = coord.values().len();
    let mut out = Vec::new();
    for mask in 1u32..(1 << k) {
        let values: Vec<u32> = coord
            .values()
            .iter()
            .enumerate()
            .map(|(d, &v)| if mask & (1 << d) != 0 { STAR } else { v })
            .collect();
        if let Some(n) = g.resolve(&Coord::new(values)) {
            if n != base {
                out.push(n);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Auto-selection of registered nodes: every non-base node whose
/// base-descendant population reaches the floor, largest first, capped.
fn auto_targets(g: &TimeSeriesGraph, options: &ApproxOptions) -> Vec<NodeId> {
    let mut pop: HashMap<NodeId, u64> = HashMap::new();
    for &b in g.base_nodes() {
        for anc in ancestors(g, b) {
            *pop.entry(anc).or_insert(0) += 1;
        }
    }
    let mut candidates: Vec<(u64, NodeId)> = pop
        .into_iter()
        .map(|(n, count)| (count, n))
        .filter(|&(count, _)| count as usize >= options.min_population)
        .collect();
    candidates.sort_unstable_by(|a, b| b.cmp(a));
    candidates
        .into_iter()
        .take(options.max_nodes)
        .map(|(_, n)| n)
        .collect()
}

fn fit_cell(
    dataset: &Dataset,
    cell: NodeId,
    spec: &ModelSpec,
    fit: &FitOptions,
) -> Result<Box<dyn ForecastModel>> {
    spec.fit(dataset.series(cell), fit)
        .map_err(|e| ApproxError::Fit(format!("cell {cell}: {e}")))
}
