//! Coverage-vs-latency planning: which nodes should answer exactly and
//! which from the sampling plane.
//!
//! The advisor's classical trade-off is *coverage* (how many nodes own a
//! materialized model) versus maintenance cost. Sampling adds a second
//! axis: a node with a huge base population can either aggregate every
//! cell's forecast (exact, latency linear in the population) or expand a
//! stratified sample (approximate, latency linear in the sample). The
//! planner predicts each node's exact-answer latency from a measured
//! per-cell forecast cost and samples exactly the nodes that would blow
//! the query budget — everything else stays exact and bit-identical.

use crate::plane::ancestors;
use fdc_cube::{Dataset, NodeId};
use std::collections::HashMap;

/// Inputs of the coverage planner.
#[derive(Debug, Clone)]
pub struct CoverageOptions {
    /// Per-query latency budget in seconds (the SLA the plan defends).
    pub query_budget_secs: f64,
    /// Measured cost of forecasting one sampled/base cell, in seconds —
    /// callers pilot-fit a few cells and pass the observed mean.
    pub forecast_cost_secs: f64,
    /// Strata the plane will use (the planner sizes per-stratum samples).
    pub strata: usize,
    /// Hard per-stratum reservoir cap.
    pub max_per_stratum: usize,
    /// Nodes below this population always answer exactly, regardless of
    /// the predicted latency.
    pub min_population: usize,
}

impl Default for CoverageOptions {
    fn default() -> Self {
        CoverageOptions {
            query_budget_secs: 0.010,
            forecast_cost_secs: 1e-6,
            strata: 8,
            max_per_stratum: 64,
            min_population: 256,
        }
    }
}

/// How a node answers aggregate forecasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverageChoice {
    /// Aggregate every base descendant's forecast.
    Exact,
    /// Expand a stratified sample of `per_stratum` cells per stratum.
    Sampled {
        /// Reservoir capacity per stratum chosen to fill the budget.
        per_stratum: usize,
    },
}

/// The planner's verdict for one aggregation node.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageDecision {
    /// The node.
    pub node: NodeId,
    /// Its base-cell population.
    pub population: u64,
    /// Predicted exact-answer latency, seconds.
    pub predicted_exact_secs: f64,
    /// Exact or sampled.
    pub choice: CoverageChoice,
}

/// A full coverage plan over a dataset's aggregation nodes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CoveragePlan {
    /// Per-node decisions, descending by population.
    pub decisions: Vec<CoverageDecision>,
}

impl CoveragePlan {
    /// Nodes the plan routes through the sampling plane, ascending.
    pub fn sampled_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .decisions
            .iter()
            .filter(|d| matches!(d.choice, CoverageChoice::Sampled { .. }))
            .map(|d| d.node)
            .collect();
        v.sort_unstable();
        v
    }

    /// The largest per-stratum reservoir any sampled node needs (plane
    /// reservoirs are sized uniformly). Zero when nothing is sampled.
    pub fn per_stratum(&self) -> usize {
        self.decisions
            .iter()
            .filter_map(|d| match d.choice {
                CoverageChoice::Sampled { per_stratum } => Some(per_stratum),
                CoverageChoice::Exact => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Count of sampled decisions.
    pub fn sampled_count(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| matches!(d.choice, CoverageChoice::Sampled { .. }))
            .count()
    }

    /// Count of exact decisions.
    pub fn exact_count(&self) -> usize {
        self.decisions.len() - self.sampled_count()
    }
}

/// Plans coverage for every aggregation node of `dataset`: census the
/// base populations in one pass, predict each node's exact latency as
/// `population × forecast_cost`, and sample the nodes that exceed the
/// budget, sizing the sample so its own latency *fills* (but respects)
/// the budget.
pub fn plan_coverage(dataset: &Dataset, options: &CoverageOptions) -> CoveragePlan {
    let g = dataset.graph();
    let mut pop: HashMap<NodeId, u64> = HashMap::new();
    for &b in g.base_nodes() {
        for anc in ancestors(g, b) {
            *pop.entry(anc).or_insert(0) += 1;
        }
    }

    let cost = options.forecast_cost_secs.max(1e-12);
    let affordable_cells = (options.query_budget_secs / cost).floor().max(0.0) as usize;
    let per_stratum =
        (affordable_cells / options.strata.max(1)).clamp(2, options.max_per_stratum.max(2));

    let mut decisions: Vec<CoverageDecision> = pop
        .into_iter()
        .map(|(node, population)| {
            let predicted_exact_secs = population as f64 * cost;
            let choice = if (population as usize) >= options.min_population
                && predicted_exact_secs > options.query_budget_secs
            {
                CoverageChoice::Sampled { per_stratum }
            } else {
                CoverageChoice::Exact
            };
            CoverageDecision {
                node,
                population,
                predicted_exact_secs,
                choice,
            }
        })
        .collect();
    decisions.sort_by(|a, b| b.population.cmp(&a.population).then(a.node.cmp(&b.node)));
    CoveragePlan { decisions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_datagen::{generate_highcard, HighCardSpec};

    fn cube() -> Dataset {
        generate_highcard(&HighCardSpec {
            base_cells: 600,
            groups: 30,
            length: 12,
            ..HighCardSpec::new(600, 21)
        })
        .dataset
    }

    #[test]
    fn big_nodes_sample_small_nodes_stay_exact() {
        let ds = cube();
        // Budget affords 100 cell forecasts: the top node (600 cells)
        // must sample, 20-cell groups must not.
        let plan = plan_coverage(
            &ds,
            &CoverageOptions {
                query_budget_secs: 100e-6,
                forecast_cost_secs: 1e-6,
                min_population: 50,
                ..CoverageOptions::default()
            },
        );
        let top = ds.graph().top_node();
        let top_dec = plan.decisions.iter().find(|d| d.node == top).unwrap();
        assert_eq!(top_dec.population, 600);
        assert!(matches!(top_dec.choice, CoverageChoice::Sampled { .. }));
        for d in &plan.decisions {
            if d.node != top {
                assert_eq!(d.choice, CoverageChoice::Exact, "group node sampled");
            }
        }
        assert_eq!(plan.sampled_nodes(), vec![top]);
        assert_eq!(plan.exact_count(), plan.decisions.len() - 1);
    }

    #[test]
    fn larger_budget_samples_fewer_nodes() {
        let ds = cube();
        let tight = plan_coverage(
            &ds,
            &CoverageOptions {
                query_budget_secs: 10e-6,
                forecast_cost_secs: 1e-6,
                min_population: 10,
                ..CoverageOptions::default()
            },
        );
        let loose = plan_coverage(
            &ds,
            &CoverageOptions {
                query_budget_secs: 10.0,
                forecast_cost_secs: 1e-6,
                min_population: 10,
                ..CoverageOptions::default()
            },
        );
        assert!(tight.sampled_count() > 0);
        assert_eq!(loose.sampled_count(), 0);
        assert!(tight.sampled_count() >= loose.sampled_count());
    }

    #[test]
    fn sample_size_fills_the_budget() {
        let ds = cube();
        let opts = CoverageOptions {
            query_budget_secs: 320e-6,
            forecast_cost_secs: 1e-6,
            strata: 8,
            max_per_stratum: 1024,
            min_population: 50,
        };
        let plan = plan_coverage(&ds, &opts);
        // 320 affordable cells over 8 strata → 40 per stratum.
        assert_eq!(plan.per_stratum(), 40);
        // Sampled latency fits the budget where exact would not.
        let top = ds.graph().top_node();
        let top_dec = plan.decisions.iter().find(|d| d.node == top).unwrap();
        assert!(top_dec.predicted_exact_secs > 320e-6);
        let sampled_secs = (opts.strata * plan.per_stratum()) as f64 * opts.forecast_cost_secs;
        assert!(sampled_secs <= opts.query_budget_secs);
    }
}
