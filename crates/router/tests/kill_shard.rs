//! Graceful degradation: SIGKILL one shard's primary mid-deployment and
//! assert the contract of the degraded window —
//!
//! * reads for the dead shard's keys fail over to its replica
//!   (`router.replica.reads` counts them);
//! * reads for the surviving shard are untouched;
//! * writes touching the dead shard come back as the **typed**
//!   partial-failure error naming the failed shard, not a bare 502;
//! * `GET /healthz` drops to `503 degraded` once the prober notices;
//! * **zero acked-write loss**: every row the router answered `202` for
//!   is in some shard's write-ahead log after the kill.

mod common;

use common::*;
use fdc_datagen::tourism_proxy;
use fdc_f2db::{F2db, WalRecord};
use fdc_router::{placement, Router, RouterOptions, ShardSpec, Topology};
use fdc_serve::{open_engine, open_follower, ServeOptions, Server};
use fdc_wal::{Wal, WalOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const PURPOSES: [&str; 4] = ["holiday", "business", "visiting", "other"];

/// Not a test of its own: a WAL-backed shard primary, or (with
/// `ROLE_ENV=replica`) a follower of `PRIMARY_ENV` over the same
/// partition.
#[test]
fn failover_child() {
    let role = match std::env::var(ROLE_ENV) {
        Ok(r) => r,
        Err(_) => return,
    };
    let seed: u64 = std::env::var(SEED_ENV).unwrap().parse().unwrap();
    let catalog = PathBuf::from(std::env::var(CATALOG_ENV).unwrap());
    let ids = std::env::var(IDS_ENV).unwrap();
    let shard_id = std::env::var(SHARD_ENV).unwrap();
    let wal = PathBuf::from(std::env::var(WAL_ENV).unwrap());
    let db = F2db::open_catalog(tourism_proxy(seed), &catalog).expect("open shared catalog");
    let topo = Topology {
        version: 0,
        key_dims: 1,
        shards: ids
            .split(',')
            .map(|id| ShardSpec {
                id: id.to_string(),
                addr: "-".to_string(),
                replica: None,
            })
            .collect(),
    };
    let owned = topo.owned_bases(&db, &shard_id).expect("owned bases");
    let opts = ServeOptions {
        wal_dir: Some(wal),
        coalesce_window: Duration::from_millis(1),
        replica_of: std::env::var(PRIMARY_ENV).ok(),
        partition_bases: Some(owned.clone()),
        ..ServeOptions::default()
    };
    let server = if role == "replica" {
        // A follower of a partitioned primary runs the same partition;
        // `open_follower` takes the engine as-built, so apply it here.
        let db = db.with_base_partition(&owned).expect("partition follower");
        let (db, replica) = open_follower(db, &opts).expect("open follower");
        Server::start_with_replica(db, 0, opts, replica).expect("follower server")
    } else {
        let (db, _recovery) = open_engine(db, &opts).expect("open shard engine");
        Server::start(db, 0, opts).expect("shard server")
    };
    println!("READY {}", server.addr());
    std::io::stdout().flush().ok();
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Every value (as exact bit patterns) in the `InsertBatch` records of
/// a WAL directory.
fn replayed_values(wal_dir: &Path) -> Vec<u64> {
    let (_wal, rec) = Wal::open(
        wal_dir,
        WalOptions {
            fsync: false,
            ..WalOptions::default()
        },
    )
    .expect("replay surviving WAL");
    let mut values = Vec::new();
    for (_seq, payload) in &rec.records {
        let WalRecord::InsertBatch { rows, .. } =
            WalRecord::decode(payload).expect("decodable record");
        values.extend(rows.iter().map(|(_node, v)| v.to_bits()));
    }
    values
}

#[test]
fn killed_primary_degrades_gracefully_and_loses_nothing() {
    let seed = 1u64;
    let dir = tmp_dir("kill");
    let catalog = dir.join("catalog.f2c");
    let parent_db = own_model_db(seed);
    parent_db
        .save_catalog(&catalog)
        .expect("save shared catalog");
    let dims: Vec<Vec<String>> = {
        let ds = parent_db.dataset();
        let g = ds.graph();
        let schema = g.schema();
        g.base_nodes()
            .iter()
            .map(|&n| {
                g.coord(n)
                    .values()
                    .iter()
                    .enumerate()
                    .map(|(d, &idx)| schema.dimensions()[d].values()[idx as usize].clone())
                    .collect()
            })
            .collect()
    };

    // A pair where both shards own purposes, so the kill leaves live
    // keys on both sides of the fence.
    let pair = [["s0", "s1"], ["s0", "s2"], ["s1", "s2"], ["sa", "sb"]]
        .into_iter()
        .find(|pair| {
            let owners: Vec<&str> = PURPOSES
                .iter()
                .map(|p| placement::place(p, pair.iter().copied()).unwrap())
                .collect();
            pair.iter().all(|id| owners.contains(id))
        })
        .expect("some candidate pair splits the purposes");
    let doomed = pair[0];
    let survivor = pair[1];
    let doomed_purpose = PURPOSES
        .iter()
        .find(|p| placement::place(p, pair.iter().copied()).unwrap() == doomed)
        .unwrap();
    let survivor_purpose = PURPOSES
        .iter()
        .find(|p| placement::place(p, pair.iter().copied()).unwrap() == survivor)
        .unwrap();

    let ids_csv = pair.join(",");
    let envs = |id: &str, wal: &str, primary: Option<&str>| {
        let mut e = vec![
            (
                ROLE_ENV,
                if primary.is_some() {
                    "replica"
                } else {
                    "shard"
                }
                .to_string(),
            ),
            (SEED_ENV, seed.to_string()),
            (CATALOG_ENV, catalog.display().to_string()),
            (IDS_ENV, ids_csv.clone()),
            (SHARD_ENV, id.to_string()),
            (WAL_ENV, dir.join(wal).display().to_string()),
        ];
        if let Some(p) = primary {
            e.push((PRIMARY_ENV, p.to_string()));
        }
        e
    };
    let (mut primary0, addr0) = spawn_child("failover_child", &envs(doomed, "wal_0", None));
    let (mut primary1, addr1) = spawn_child("failover_child", &envs(survivor, "wal_1", None));
    let (mut replica0, raddr0) = spawn_child(
        "failover_child",
        &envs(doomed, "wal_0_replica", Some(&addr0.to_string())),
    );

    let topology = Topology {
        version: 1,
        key_dims: 1,
        shards: vec![
            ShardSpec {
                id: doomed.to_string(),
                addr: addr0.to_string(),
                replica: Some(raddr0.to_string()),
            },
            ShardSpec {
                id: survivor.to_string(),
                addr: addr1.to_string(),
                replica: None,
            },
        ],
    };
    let router = Router::start(
        topology,
        0,
        RouterOptions {
            probe_interval: Duration::from_millis(100),
            ..RouterOptions::default()
        },
    )
    .expect("router");
    await_status(router.addr(), "/healthz", 200, 50);

    // Healthy phase: full rounds through the router, every row value
    // unique — a value doubles as the identity of its write.
    let mut acked: Vec<u64> = Vec::new();
    for round in 0..5u64 {
        let rows: Vec<String> = dims
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let quoted: Vec<String> = d.iter().map(|v| format!("\"{v}\"")).collect();
                let value = (round * 1000 + i as u64) as f64 + 0.5;
                format!("{{\"dims\":[{}],\"value\":{value}}}", quoted.join(","))
            })
            .collect();
        let body = format!("{{\"rows\":[{}]}}", rows.join(","));
        let (status, text) = http(router.addr(), "POST", "/insert", Some(&body));
        assert_eq!(status, 202, "healthy insert failed: {text}");
        assert!(text.contains(&format!("\"accepted\":{}", dims.len())));
        acked.extend((0..dims.len()).map(|i| (((round * 1000 + i as u64) as f64) + 0.5).to_bits()));
    }
    let probe = format!(
        "{{\"sql\":\"SELECT time, SUM(visitors) FROM facts WHERE purpose = '{doomed_purpose}' \
         GROUP BY time AS OF now() + '2 quarters'\"}}"
    );
    let survivor_probe = format!(
        "{{\"sql\":\"SELECT time, SUM(visitors) FROM facts WHERE purpose = '{survivor_purpose}' \
         GROUP BY time AS OF now() + '2 quarters'\"}}"
    );
    let (status, _) = http(router.addr(), "POST", "/query", Some(&probe));
    assert_eq!(status, 200);

    // The axe: SIGKILL the doomed primary, no drain, no flush.
    let replica_reads_before = fdc_obs::counter(fdc_obs::names::ROUTER_REPLICA_READS).get();
    primary0.kill().expect("kill primary");
    primary0.wait().ok();

    // Reads for the dead shard's keys fail over to the replica.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, _) = http(router.addr(), "POST", "/query", Some(&probe));
        if status == 200 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replica failover never served the dead shard's keys"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        fdc_obs::counter(fdc_obs::names::ROUTER_REPLICA_READS).get() > replica_reads_before,
        "failover did not count a replica read"
    );

    // The surviving shard is untouched.
    let (status, text) = http(router.addr(), "POST", "/query", Some(&survivor_probe));
    assert_eq!(
        status, 200,
        "survivor read failed during degradation: {text}"
    );

    // Writes touching the dead shard are typed partial failures.
    let rows: Vec<String> = dims
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let quoted: Vec<String> = d.iter().map(|v| format!("\"{v}\"")).collect();
            format!(
                "{{\"dims\":[{}],\"value\":{}}}",
                quoted.join(","),
                900_000 + i
            )
        })
        .collect();
    let body = format!("{{\"rows\":[{}]}}", rows.join(","));
    let (status, text) = http(router.addr(), "POST", "/insert", Some(&body));
    assert_ne!(status, 202, "a write to a dead shard was acknowledged");
    assert!(
        text.contains("partial write failure")
            && text.contains(&format!("\"failed_shard\":\"{doomed}\"")),
        "not the typed partial-failure error: {text}"
    );

    // The prober notices and /healthz reflects lost quorum (1 of 2).
    await_status(router.addr(), "/healthz", 503, 100);

    // Zero acked loss: every 202'd value is in a surviving log.
    let mut survived = replayed_values(&dir.join("wal_0"));
    survived.extend(replayed_values(&dir.join("wal_1")));
    let survived: std::collections::HashSet<u64> = survived.into_iter().collect();
    let lost: Vec<u64> = acked
        .iter()
        .filter(|v| !survived.contains(v))
        .copied()
        .collect();
    assert!(
        lost.is_empty(),
        "{} of {} acked rows lost after SIGKILL",
        lost.len(),
        acked.len()
    );

    router.shutdown();
    for child in [&mut primary1, &mut replica0] {
        child.kill().ok();
        child.wait().ok();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
