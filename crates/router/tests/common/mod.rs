//! Shared helpers for the router integration suites: an all-own-models
//! catalog (every node carries its own model, so every node's
//! derivation closure is exactly its own base descendants — the
//! fully-partitionable configuration), child-process plumbing and a
//! tiny HTTP client.
#![allow(dead_code)]

use fdc_cube::{Configuration, ConfiguredModel, CubeSplit, NodeEstimate, Scheme};
use fdc_datagen::tourism_proxy;
use fdc_f2db::F2db;
use fdc_forecast::{FitOptions, ModelSpec};
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

pub const ROLE_ENV: &str = "FDC_ROUTER_TEST_ROLE";
pub const SEED_ENV: &str = "FDC_ROUTER_TEST_SEED";
pub const CATALOG_ENV: &str = "FDC_ROUTER_TEST_CATALOG";
pub const IDS_ENV: &str = "FDC_ROUTER_TEST_IDS";
pub const SHARD_ENV: &str = "FDC_ROUTER_TEST_SHARD";
pub const WAL_ENV: &str = "FDC_ROUTER_TEST_WAL";
pub const PRIMARY_ENV: &str = "FDC_ROUTER_TEST_PRIMARY";

pub fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fdc_router_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// An engine over `tourism_proxy(seed)` where *every* node carries its
/// own SES model and a self-scheme. Unlike an advisor configuration —
/// whose derivation schemes couple nodes to correlated series anywhere
/// in the cube — this one keeps every closure inside the node's own
/// subtree, so any query whose nodes' base cells share a placement key
/// is servable by a partitioned deployment, and multi-node queries
/// genuinely fan out.
pub fn own_model_db(seed: u64) -> F2db {
    let ds = tourism_proxy(seed);
    let split = CubeSplit::new(&ds, 0.8);
    let mut config = Configuration::new(ds.node_count());
    for v in 0..ds.node_count() {
        let model = ConfiguredModel::fit(&split, v, &ModelSpec::Ses, &FitOptions::default())
            .expect("SES fits any tourism series");
        config.insert_model(v, model);
        config.set_estimate(
            v,
            NodeEstimate {
                error: 0.5,
                scheme: Some(Scheme {
                    sources: vec![v],
                    weight: 1.0,
                }),
            },
        );
    }
    F2db::load(ds, &config).expect("load own-model configuration")
}

/// Spawns this test binary re-targeted at `child_test` (the usual
/// env-armed libtest re-exec) and waits for its `READY <addr>` line.
pub fn spawn_child(child_test: &str, envs: &[(&str, String)]) -> (Child, SocketAddr) {
    let exe = std::env::current_exe().unwrap();
    let mut cmd = Command::new(exe);
    cmd.args([child_test, "--exact", "--nocapture"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    for (name, value) in envs {
        cmd.env(name, value);
    }
    let mut child = cmd.spawn().expect("spawn child process");
    let stdout = child.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            // libtest prints `test <name> ... ` without a newline first,
            // so READY can land mid-line.
            Some(Ok(line)) => {
                if let Some((_, rest)) = line.split_once("READY ") {
                    break rest.trim().parse::<SocketAddr>().expect("child addr");
                }
            }
            other => panic!("child exited before READY: {other:?}"),
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

/// One request over a fresh connection; returns `(status, body)`.
pub fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let resp = fdc_router::client::request(
        &addr.to_string(),
        method,
        path,
        body,
        Duration::from_secs(30),
    )
    .expect("request against a live server");
    (resp.status, resp.text())
}

/// Retries `GET path` until `status` (or panics after `tries`).
pub fn await_status(addr: SocketAddr, path: &str, status: u16, tries: usize) {
    for _ in 0..tries {
        if let Ok(resp) = fdc_router::client::get(&addr.to_string(), path, Duration::from_secs(2)) {
            if resp.status == status {
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    panic!("{path} never answered {status}");
}
