//! Router behavior against scripted fake shards: backpressure
//! forwarding (`Retry-After` survives the hop instead of collapsing
//! into an opaque 502), `traceparent` propagation on every shard call,
//! and `/healthz` quorum transitions with their journal events.

use fdc_router::{Router, RouterOptions, ShardSpec, Topology};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU16, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A scripted shard: answers every request with the current status
/// (plus an optional `Retry-After`) and records the raw requests it
/// saw.
struct FakeShard {
    addr: SocketAddr,
    status: Arc<AtomicU16>,
    requests: Arc<Mutex<Vec<String>>>,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl FakeShard {
    fn start(status: u16, retry_after: Option<&str>) -> FakeShard {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let status = Arc::new(AtomicU16::new(status));
        let requests = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let retry_after = retry_after.map(str::to_string);
        let handle = {
            let (status, requests, stop) = (status.clone(), requests.clone(), stop.clone());
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(mut stream) = stream else { continue };
                    stream
                        .set_read_timeout(Some(Duration::from_millis(500)))
                        .ok();
                    if let Some(raw) = read_http_request(&mut stream) {
                        requests.lock().unwrap().push(raw);
                    }
                    let status = status.load(Ordering::SeqCst);
                    let body = if status < 400 {
                        "{\"status\":\"ok\"}"
                    } else {
                        "{\"error\":\"shard overloaded\"}"
                    };
                    let retry = retry_after
                        .as_deref()
                        .map(|v| format!("Retry-After: {v}\r\n"))
                        .unwrap_or_default();
                    stream
                        .write_all(
                            format!(
                                "HTTP/1.1 {status} X\r\nContent-Type: application/json\r\n\
                                 {retry}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                                body.len()
                            )
                            .as_bytes(),
                        )
                        .ok();
                }
            })
        };
        FakeShard {
            addr,
            status,
            requests,
            stop,
            handle: Some(handle),
        }
    }

    fn saw_request_containing(&self, needle: &str) -> bool {
        self.requests
            .lock()
            .unwrap()
            .iter()
            .any(|r| r.contains(needle))
    }
}

impl Drop for FakeShard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        drop(TcpStream::connect(self.addr));
        if let Some(h) = self.handle.take() {
            h.join().ok();
        }
    }
}

fn read_http_request(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                    break pos + 4;
                }
                if buf.len() > 1 << 20 {
                    return None;
                }
            }
            Err(_) => return None,
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (n, v) = l.split_once(':')?;
            n.eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse().ok())?
        })
        .unwrap_or(0);
    while buf.len() < head_end + content_length {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    Some(String::from_utf8_lossy(&buf).into_owned())
}

fn topology_of(shards: &[(&str, SocketAddr)]) -> Topology {
    Topology {
        version: 1,
        key_dims: 1,
        shards: shards
            .iter()
            .map(|(id, addr)| ShardSpec {
                id: id.to_string(),
                addr: addr.to_string(),
                replica: None,
            })
            .collect(),
    }
}

fn router_http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> fdc_router::client::ShardResponse {
    fdc_router::client::request(
        &addr.to_string(),
        method,
        path,
        body,
        Duration::from_secs(10),
    )
    .expect("router answers")
}

#[test]
fn insert_forwards_shard_backpressure_with_retry_after() {
    let shard = FakeShard::start(503, Some("7"));
    let router = Router::start(
        topology_of(&[("bp-insert", shard.addr)]),
        0,
        RouterOptions {
            probe_interval: Duration::from_secs(3600),
            ..RouterOptions::default()
        },
    )
    .unwrap();

    let resp = router_http(
        router.addr(),
        "POST",
        "/insert",
        Some("{\"dims\":[\"k\"],\"value\":1.5}"),
    );
    assert_eq!(resp.status, 503);
    assert_eq!(
        resp.header("retry-after"),
        Some("7"),
        "shard Retry-After was not forwarded"
    );
    let text = resp.text();
    assert!(
        text.contains("partial write failure") && text.contains("shard overloaded"),
        "not the typed partial-failure answer: {text}"
    );
    router.shutdown();
}

#[test]
fn query_forwards_plan_backpressure_and_propagates_traceparent() {
    let shard = FakeShard::start(429, Some("3"));
    let router = Router::start(
        topology_of(&[("bp-query", shard.addr)]),
        0,
        RouterOptions {
            probe_interval: Duration::from_secs(3600),
            ..RouterOptions::default()
        },
    )
    .unwrap();

    let resp = router_http(
        router.addr(),
        "POST",
        "/query",
        Some("{\"sql\":\"SELECT time, v FROM facts AS OF now() + '1 quarter'\"}"),
    );
    assert_eq!(resp.status, 429);
    assert_eq!(
        resp.header("retry-after"),
        Some("3"),
        "planning shard's Retry-After was not forwarded"
    );

    // The router minted a trace at ingress and carried it on the shard
    // hop: the /plan request the fake saw has a traceparent header.
    assert!(
        shard.saw_request_containing("/plan"),
        "router never asked the shard to plan"
    );
    assert!(
        shard.saw_request_containing("traceparent: 00-"),
        "shard hop carried no traceparent"
    );
    router.shutdown();
}

#[test]
fn healthz_tracks_quorum_transitions() {
    let shard_a = FakeShard::start(200, None);
    let shard_b = FakeShard::start(200, None);
    let router = Router::start(
        topology_of(&[("quorum-a", shard_a.addr), ("quorum-b", shard_b.addr)]),
        0,
        RouterOptions {
            probe_interval: Duration::from_millis(50),
            ..RouterOptions::default()
        },
    )
    .unwrap();
    let await_health = |status: u16| {
        for _ in 0..100 {
            if router_http(router.addr(), "GET", "/healthz", None).status == status {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        panic!("/healthz never reached {status}");
    };

    await_health(200);

    // One of two shards failing breaks the majority quorum...
    shard_b.status.store(500, Ordering::SeqCst);
    await_health(503);
    let text = router_http(router.addr(), "GET", "/healthz", None).text();
    assert!(
        text.contains("\"degraded\""),
        "not the degraded body: {text}"
    );

    // ...and recovery restores it.
    shard_b.status.store(200, Ordering::SeqCst);
    await_health(200);

    let events = fdc_obs::journal().recent(256);
    let down = events
        .iter()
        .filter(
            |e| matches!(&e.event, fdc_obs::Event::ShardDown { shard, .. } if shard == "quorum-b"),
        )
        .count();
    let up = events
        .iter()
        .filter(|e| {
            matches!(&e.event, fdc_obs::Event::ShardRecovered { shard, .. } if shard == "quorum-b")
        })
        .count();
    assert!(down >= 1, "no ShardDown event for the failed shard");
    assert!(up >= 1, "no ShardRecovered event after recovery");
    router.shutdown();
}
