//! Scatter-gather correctness: routed answers must be **byte-identical**
//! to a single unpartitioned process over the same catalog.
//!
//! Each seed builds an all-own-models catalog (every node carries its
//! own model — see `common::own_model_db` — so multi-node queries
//! genuinely fan out instead of tripping over advisor-coupled
//! derivations), shares it on disk with two shard child processes, and
//! compares the router's `/query` and `/explain` answers byte-for-byte
//! against an in-process oracle server running the whole cube.
//!
//! Queries this partitioning *cannot* serve — nodes whose derivation
//! closure spans both shards — must come back as the typed `400`
//! split-node refusal, not a garbled partial answer.

mod common;

use common::*;
use fdc_datagen::tourism_proxy;
use fdc_f2db::F2db;
use fdc_router::{placement, Router, RouterOptions, ShardSpec, Topology};
use fdc_serve::{open_engine, ServeOptions, Server};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

const PURPOSES: [&str; 4] = ["holiday", "business", "visiting", "other"];

/// Not a test of its own: one shard server process, re-executed by the
/// parent with the env below set. Opens the shared catalog, computes
/// its owned bases from ids + key_dims alone (no addresses exist yet)
/// and serves its partition.
#[test]
fn shard_child() {
    if std::env::var(ROLE_ENV).ok().as_deref() != Some("shard") {
        return;
    }
    let seed: u64 = std::env::var(SEED_ENV).unwrap().parse().unwrap();
    let catalog = PathBuf::from(std::env::var(CATALOG_ENV).unwrap());
    let ids = std::env::var(IDS_ENV).unwrap();
    let shard_id = std::env::var(SHARD_ENV).unwrap();
    let db = F2db::open_catalog(tourism_proxy(seed), &catalog).expect("open shared catalog");
    let topo = Topology {
        version: 0,
        key_dims: 1,
        shards: ids
            .split(',')
            .map(|id| ShardSpec {
                id: id.to_string(),
                addr: "-".to_string(),
                replica: None,
            })
            .collect(),
    };
    let owned = topo.owned_bases(&db, &shard_id).expect("owned bases");
    let opts = ServeOptions {
        partition_bases: Some(owned),
        ..ServeOptions::default()
    };
    let (db, _recovery) = open_engine(db, &opts).expect("open shard engine");
    let server = Server::start(db, 0, opts).expect("shard server");
    println!("READY {}", server.addr());
    std::io::stdout().flush().ok();
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// A shard-id pair under which the four purpose keys land on both
/// shards — so per-purpose queries actually fan out.
fn fanout_pair() -> [&'static str; 2] {
    for pair in [["s0", "s1"], ["s0", "s2"], ["s1", "s2"], ["sa", "sb"]] {
        let owners: Vec<&str> = PURPOSES
            .iter()
            .map(|p| placement::place(p, pair.iter().copied()).unwrap())
            .collect();
        if pair.iter().all(|id| owners.contains(id)) {
            return pair;
        }
    }
    unreachable!("some candidate pair splits four keys");
}

fn run_seed(seed: u64) {
    let dir = tmp_dir(&format!("sg_{seed}"));
    let catalog = dir.join("catalog.f2c");
    own_model_db(seed)
        .save_catalog(&catalog)
        .expect("save shared catalog");

    let pair = fanout_pair();
    let ids_csv = pair.join(",");
    let envs = |id: &str| {
        vec![
            (ROLE_ENV, "shard".to_string()),
            (SEED_ENV, seed.to_string()),
            (CATALOG_ENV, catalog.display().to_string()),
            (IDS_ENV, ids_csv.clone()),
            (SHARD_ENV, id.to_string()),
        ]
    };
    let (mut child0, addr0) = spawn_child("shard_child", &envs(pair[0]));
    let (mut child1, addr1) = spawn_child("shard_child", &envs(pair[1]));
    let topology = Topology {
        version: 1,
        key_dims: 1,
        shards: vec![
            ShardSpec {
                id: pair[0].to_string(),
                addr: addr0.to_string(),
                replica: None,
            },
            ShardSpec {
                id: pair[1].to_string(),
                addr: addr1.to_string(),
                replica: None,
            },
        ],
    };
    let router = Router::start(topology, 0, RouterOptions::default()).expect("router");

    // The oracle: one unpartitioned server over the very same catalog.
    let oracle_opts = ServeOptions::default();
    let (oracle_db, _recovery) = open_engine(
        F2db::open_catalog(tourism_proxy(seed), &catalog).expect("open oracle catalog"),
        &oracle_opts,
    )
    .expect("open oracle engine");
    let oracle = Server::start(oracle_db, 0, oracle_opts).expect("oracle server");

    // Every servable shape: a single base cell, a single-shard
    // aggregate, the per-purpose fan-out (nodes on both shards) and the
    // full base-level fan-out.
    let servable = [
        "SELECT time, visitors FROM facts WHERE purpose = 'holiday' AND state = 'NSW' AS OF now() + '4 quarters'",
        "SELECT time, SUM(visitors) FROM facts WHERE purpose = 'business' GROUP BY time AS OF now() + '2 quarters'",
        "SELECT time, SUM(visitors) FROM facts GROUP BY time, purpose AS OF now() + '2 quarters'",
        "SELECT time, SUM(visitors) FROM facts GROUP BY time, purpose, state AS OF now() + '1 quarter'",
    ];
    for sql in servable {
        let body = format!("{{\"sql\":\"{sql}\"}}");
        let (oracle_status, oracle_body) = http(oracle.addr(), "POST", "/query", Some(&body));
        assert_eq!(oracle_status, 200, "oracle rejected {sql}: {oracle_body}");
        let (routed_status, routed_body) = http(router.addr(), "POST", "/query", Some(&body));
        assert_eq!(routed_status, 200, "router rejected {sql}: {routed_body}");
        assert_eq!(
            routed_body, oracle_body,
            "seed {seed}: routed /query differs from the oracle for {sql}"
        );

        let (oracle_status, oracle_plan) = http(oracle.addr(), "POST", "/explain", Some(&body));
        assert_eq!(oracle_status, 200);
        let (routed_status, routed_plan) = http(router.addr(), "POST", "/explain", Some(&body));
        assert_eq!(routed_status, 200, "router /explain failed: {routed_plan}");
        assert_eq!(
            routed_plan, oracle_plan,
            "seed {seed}: routed /explain differs from the oracle for {sql}"
        );
    }

    // Queries whose nodes need base cells from both shards are typed
    // refusals: the cube's top node, and a state-slice crossing every
    // purpose.
    for split in [
        "SELECT time, SUM(visitors) FROM facts GROUP BY time AS OF now() + '2 quarters'",
        "SELECT time, SUM(visitors) FROM facts WHERE state = 'QLD' GROUP BY time AS OF now() + '1 quarter'",
    ] {
        let body = format!("{{\"sql\":\"{split}\"}}");
        let (status, text) = http(router.addr(), "POST", "/query", Some(&body));
        assert_eq!(status, 400, "expected a split-node refusal for {split}, got {text}");
        assert!(
            text.contains("split across shards"),
            "refusal is not the typed split-node error: {text}"
        );
    }

    // The fleet view folds both shards' sketches.
    let (status, stats) = http(router.addr(), "GET", "/stats", None);
    assert_eq!(status, 200);
    assert!(
        stats.contains("\"fleet\""),
        "stats without fleet fold: {stats}"
    );
    for id in pair {
        assert!(
            stats.contains(&format!("\"{id}\"")),
            "stats misses shard {id}"
        );
    }

    router.shutdown();
    child0.kill().ok();
    child1.kill().ok();
    child0.wait().ok();
    child1.wait().ok();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn routed_answers_match_the_oracle_seed_1() {
    run_seed(1);
}

#[test]
fn routed_answers_match_the_oracle_seed_2() {
    run_seed(2);
}

#[test]
fn routed_answers_match_the_oracle_seed_3() {
    run_seed(3);
}
