//! Seeded property tests of the rendezvous placement function — the
//! one piece of the system every process must compute identically.
//!
//! * determinism **across processes**: a child process (this very test
//!   binary, re-executed) places the same seeded key population on the
//!   same shards as the parent — the property a restarted router or a
//!   freshly started shard relies on;
//! * **minimal disruption**: adding one shard to `N` moves roughly
//!   `K/(N+1)` of `K` keys — and every moved key moves *to* the new
//!   shard; removing one moves exactly the keys it owned, nowhere else;
//! * **balance**: no shard owns a grossly outsized share.

use fdc_rng::Rng;
use std::io::Read;
use std::process::{Command, Stdio};

const CHILD_ENV: &str = "FDC_PLACEMENT_CHILD_SEED";

/// The seeded key population: dimension-value-ish strings of varying
/// length, the kind of text placement keys are made of.
fn keys(seed: u64, count: usize) -> Vec<String> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let len = 3 + (rng.next_u64() % 12) as usize;
            let word: String = (0..len)
                .map(|_| char::from(b'a' + (rng.next_u64() % 26) as u8))
                .collect();
            format!("{word}|{i}")
        })
        .collect()
}

fn placements<'a>(keys: &[String], ids: &[&'a str]) -> Vec<&'a str> {
    keys.iter()
        .map(|k| fdc_router::placement::place(k, ids.iter().copied()).unwrap())
        .collect()
}

/// Not a test of its own: re-executed by
/// [`placement_is_deterministic_across_processes`], prints the placed
/// shard sequence for the seeded population and exits.
#[test]
fn placement_child() {
    let Ok(seed) = std::env::var(CHILD_ENV) else {
        return;
    };
    let seed: u64 = seed.parse().expect("integer seed");
    let ids = ["alpha", "beta", "gamma", "delta"];
    let placed = placements(&keys(seed, 500), &ids);
    println!("PLACED {}", placed.join(","));
}

#[test]
fn placement_is_deterministic_across_processes() {
    for seed in [11u64, 12, 13] {
        let exe = std::env::current_exe().unwrap();
        let mut child = Command::new(exe)
            .args(["placement_child", "--exact", "--nocapture"])
            .env(CHILD_ENV, seed.to_string())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn placement child");
        let mut output = String::new();
        child
            .stdout
            .take()
            .unwrap()
            .read_to_string(&mut output)
            .unwrap();
        assert!(child.wait().unwrap().success(), "child failed: {output}");
        let child_placed = output
            .lines()
            .find_map(|l| l.split_once("PLACED ").map(|(_, p)| p.trim().to_string()))
            .expect("child printed placements");
        let ids = ["alpha", "beta", "gamma", "delta"];
        let local = placements(&keys(seed, 500), &ids).join(",");
        assert_eq!(
            local, child_placed,
            "seed {seed}: placement diverged across processes"
        );
    }
}

#[test]
fn adding_one_shard_remaps_about_one_in_n_plus_one_keys() {
    for seed in [21u64, 22, 23] {
        let population = keys(seed, 2000);
        let before = placements(&population, &["s0", "s1", "s2", "s3", "s4"]);
        let after = placements(&population, &["s0", "s1", "s2", "s3", "s4", "s5"]);
        let moved: Vec<usize> = (0..population.len())
            .filter(|&i| before[i] != after[i])
            .collect();
        // Rendezvous only ever moves a key to the *new* shard.
        for &i in &moved {
            assert_eq!(
                after[i], "s5",
                "key {:?} moved to an old shard",
                population[i]
            );
        }
        let expected = population.len() / 6;
        assert!(
            !moved.is_empty() && moved.len() <= 2 * expected,
            "seed {seed}: {} of {} keys moved, expected about {expected}",
            moved.len(),
            population.len()
        );
    }
}

#[test]
fn removing_one_shard_only_remaps_its_own_keys() {
    for seed in [31u64, 32, 33] {
        let population = keys(seed, 2000);
        let before = placements(&population, &["s0", "s1", "s2", "s3", "s4"]);
        let after = placements(&population, &["s0", "s1", "s3", "s4"]);
        for i in 0..population.len() {
            if before[i] == "s2" {
                assert_ne!(after[i], "s2");
            } else {
                assert_eq!(
                    before[i], after[i],
                    "seed {seed}: key {:?} moved although its shard survived",
                    population[i]
                );
            }
        }
    }
}

#[test]
fn placement_balances_the_population() {
    let population = keys(41, 2000);
    let ids = ["s0", "s1", "s2", "s3", "s4"];
    let placed = placements(&population, &ids);
    for id in ids {
        let owned = placed.iter().filter(|p| **p == id).count();
        let fair = population.len() / ids.len();
        assert!(
            owned > fair / 2 && owned < fair * 2,
            "shard {id} owns {owned} of {} keys (fair share {fair})",
            population.len()
        );
    }
}
