//! The versioned shard topology a router serves.
//!
//! A topology is a plain JSON document — written by an operator or a
//! deploy script, read at router start (and served back verbatim at
//! `GET /topology`):
//!
//! ```json
//! {
//!   "version": 3,
//!   "key_dims": 1,
//!   "shards": [
//!     {"id": "s0", "addr": "127.0.0.1:9001", "replica": "127.0.0.1:9003"},
//!     {"id": "s1", "addr": "127.0.0.1:9002"}
//!   ]
//! }
//! ```
//!
//! `version` is a monotone number operators bump on every change, so
//! two routers can tell whose view is newer; `key_dims` is the number
//! of leading schema dimensions in a placement key (it must match the
//! `--shard-id`/partition assignment the shards were started with —
//! the deterministic [`crate::placement`] function maps key →
//! shard id on any process that agrees on these two facts).

use fdc_serve::json;

/// One shard of the deployment: a stable id (the rendezvous hash
/// input — never reuse an id for different data), its primary address
/// and an optional read replica to fail reads over to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Stable shard identity, e.g. `"s0"`.
    pub id: String,
    /// Primary `host:port`.
    pub addr: String,
    /// Optional follower `host:port` serving reads when the primary
    /// is down.
    pub replica: Option<String>,
}

/// A parsed topology document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Operator-bumped monotone version.
    pub version: u64,
    /// Leading schema dimensions per placement key (0 = every
    /// dimension, one key per base cell).
    pub key_dims: usize,
    /// The shard set, in document order.
    pub shards: Vec<ShardSpec>,
}

impl Topology {
    /// Parses a topology JSON document, validating ids are unique and
    /// non-empty.
    pub fn parse(text: &str) -> Result<Topology, String> {
        let doc = json::parse(text)?;
        let version = doc
            .get("version")
            .and_then(json::Value::as_f64)
            .filter(|v| v.fract() == 0.0 && *v >= 0.0)
            .ok_or("topology needs an unsigned integer \"version\"")? as u64;
        let key_dims =
            doc.get("key_dims")
                .and_then(json::Value::as_f64)
                .filter(|v| v.fract() == 0.0 && *v >= 0.0)
                .ok_or("topology needs an unsigned integer \"key_dims\"")? as usize;
        let shards_doc = doc
            .get("shards")
            .and_then(json::Value::as_array)
            .ok_or("topology needs a \"shards\" array")?;
        if shards_doc.is_empty() {
            return Err("topology needs at least one shard".into());
        }
        let mut shards = Vec::with_capacity(shards_doc.len());
        for s in shards_doc {
            let id = s
                .get("id")
                .and_then(json::Value::as_str)
                .filter(|i| !i.is_empty())
                .ok_or("every shard needs a non-empty \"id\"")?
                .to_string();
            let addr = s
                .get("addr")
                .and_then(json::Value::as_str)
                .filter(|a| !a.is_empty())
                .ok_or("every shard needs a non-empty \"addr\"")?
                .to_string();
            let replica = s
                .get("replica")
                .and_then(json::Value::as_str)
                .map(str::to_string);
            if shards.iter().any(|prev: &ShardSpec| prev.id == id) {
                return Err(format!("duplicate shard id {id:?}"));
            }
            shards.push(ShardSpec { id, addr, replica });
        }
        Ok(Topology {
            version,
            key_dims,
            shards,
        })
    }

    /// Reads and parses a topology file.
    pub fn load(path: &std::path::Path) -> Result<Topology, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read topology {}: {e}", path.display()))?;
        Topology::parse(&text)
    }

    /// Renders the canonical JSON form (reparses to an equal value).
    pub fn encode(&self) -> String {
        let shards: Vec<String> = self
            .shards
            .iter()
            .map(|s| {
                let replica = match &s.replica {
                    Some(r) => format!(",\"replica\":\"{}\"", json::escape(r)),
                    None => String::new(),
                };
                format!(
                    "{{\"id\":\"{}\",\"addr\":\"{}\"{replica}}}",
                    json::escape(&s.id),
                    json::escape(&s.addr)
                )
            })
            .collect();
        format!(
            "{{\"version\":{},\"key_dims\":{},\"shards\":[{}]}}",
            self.version,
            self.key_dims,
            shards.join(",")
        )
    }

    /// The base cells of `db` this topology's placement assigns to
    /// `shard_id` — what a shard process passes to
    /// `F2db::with_base_partition` (or `ServeOptions::partition_bases`)
    /// so engine-side residency and router-side placement agree.
    pub fn owned_bases(
        &self,
        db: &fdc_f2db::F2db,
        shard_id: &str,
    ) -> Result<Vec<fdc_cube::NodeId>, String> {
        let bases: Vec<fdc_cube::NodeId> = db.dataset().graph().base_nodes().to_vec();
        let mut owned = Vec::new();
        for b in bases {
            let key = db
                .partition_key(b, self.key_dims)
                .map_err(|e| e.to_string())?;
            if self.place(&key).id == shard_id {
                owned.push(b);
            }
        }
        Ok(owned)
    }

    /// The shard a placement key lands on (rendezvous over the ids).
    pub fn place(&self, key: &str) -> &ShardSpec {
        let id = crate::placement::place(key, self.shards.iter().map(|s| s.id.as_str()))
            .expect("a parsed topology has at least one shard");
        self.shards
            .iter()
            .find(|s| s.id == id)
            .expect("placement returns an existing id")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_encode_round_trips() {
        let text = r#"{"version": 7, "key_dims": 1, "shards": [
            {"id": "s0", "addr": "127.0.0.1:9001", "replica": "127.0.0.1:9003"},
            {"id": "s1", "addr": "127.0.0.1:9002"}
        ]}"#;
        let topo = Topology::parse(text).unwrap();
        assert_eq!(topo.version, 7);
        assert_eq!(topo.key_dims, 1);
        assert_eq!(topo.shards.len(), 2);
        assert_eq!(topo.shards[0].replica.as_deref(), Some("127.0.0.1:9003"));
        assert_eq!(topo.shards[1].replica, None);
        assert_eq!(Topology::parse(&topo.encode()).unwrap(), topo);
    }

    #[test]
    fn parse_rejects_bad_documents() {
        for bad in [
            "{}",
            r#"{"version":1,"key_dims":1,"shards":[]}"#,
            r#"{"version":1,"key_dims":1,"shards":[{"id":"","addr":"a"}]}"#,
            r#"{"version":1,"key_dims":1,"shards":[{"id":"s0","addr":"a"},{"id":"s0","addr":"b"}]}"#,
            r#"{"version":-1,"key_dims":1,"shards":[{"id":"s0","addr":"a"}]}"#,
        ] {
            assert!(Topology::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn topology_place_is_deterministic() {
        let topo = Topology::parse(
            r#"{"version":1,"key_dims":1,"shards":[
                {"id":"s0","addr":"a"},{"id":"s1","addr":"b"},{"id":"s2","addr":"c"}]}"#,
        )
        .unwrap();
        for key in ["Germany", "France", "Italy", "Spain"] {
            assert_eq!(topo.place(key).id, topo.place(key).id);
        }
    }
}
