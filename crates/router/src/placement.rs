//! Rendezvous (highest-random-weight) placement.
//!
//! Every placement decision hashes `(key, shard id)` and picks the
//! shard with the highest score. The function is pure — no state, no
//! ring to persist — so any process (router, shard, test harness, a
//! re-started router with no memory of the last one) computes the
//! *same* owner for a key given the same shard id set. Adding or
//! removing one shard only moves the keys whose new/old owner is that
//! shard: an expected `K/N` of `K` keys across `N` shards, the
//! consistent-hashing bound.
//!
//! The hash is FNV-1a over `key`, a separator, and the shard id,
//! finished with a splitmix64 avalanche so short ids (`s0`, `s1`)
//! still produce well-mixed scores. Ties (astronomically unlikely,
//! but the determinism contract must not depend on luck) break toward
//! the lexicographically smallest shard id.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The rendezvous score of placing `key` on `shard_id`. Deterministic
/// across processes, platforms and runs.
pub fn score(key: &str, shard_id: &str) -> u64 {
    let h = fnv1a(FNV_OFFSET, key.as_bytes());
    // A separator byte that cannot appear in UTF-8 text keeps
    // ("ab", "c") and ("a", "bc") from colliding.
    let h = fnv1a(h, &[0xff]);
    splitmix64(fnv1a(h, shard_id.as_bytes()))
}

/// Picks the owner of `key` among `shard_ids`: highest [`score`],
/// ties toward the smallest id. Returns `None` only for an empty set.
pub fn place<'a>(key: &str, shard_ids: impl IntoIterator<Item = &'a str>) -> Option<&'a str> {
    shard_ids.into_iter().max_by(|a, b| {
        score(key, a)
            .cmp(&score(key, b))
            // `max_by` keeps the *last* maximum; ordering ids
            // descending as the secondary criterion makes the
            // smallest id win ties.
            .then_with(|| b.cmp(a))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_is_deterministic_and_spread() {
        assert_eq!(score("Germany", "s0"), score("Germany", "s0"));
        assert_ne!(score("Germany", "s0"), score("Germany", "s1"));
        assert_ne!(score("Germany", "s0"), score("France", "s0"));
        // Concatenation ambiguity is broken by the separator.
        assert_ne!(score("ab", "c"), score("a", "bc"));
    }

    #[test]
    fn place_is_stable_under_unrelated_removal() {
        let all = ["s0", "s1", "s2", "s3"];
        let keys: Vec<String> = (0..500).map(|i| format!("key-{i}")).collect();
        let mut moved = 0;
        for key in &keys {
            let owner = place(key, all).unwrap();
            if owner == "s3" {
                continue; // its keys must move somewhere, obviously
            }
            let without: Vec<&str> = all.iter().copied().filter(|s| *s != "s3").collect();
            let owner_after = place(key, without).unwrap();
            if owner_after != owner {
                moved += 1;
            }
        }
        // Keys not owned by the removed shard never move.
        assert_eq!(moved, 0);
    }

    #[test]
    fn placement_balances_roughly() {
        let shards = ["s0", "s1", "s2"];
        let mut counts = [0usize; 3];
        for i in 0..3000 {
            let key = format!("cell-{i}");
            let owner = place(&key, shards).unwrap();
            counts[shards.iter().position(|s| *s == owner).unwrap()] += 1;
        }
        for c in counts {
            // Each shard gets 1000 ± 30% of a uniform split.
            assert!((700..=1300).contains(&c), "skewed placement: {counts:?}");
        }
    }
}
