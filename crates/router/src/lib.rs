//! # fdc-router — consistent-hash partitioned serving
//!
//! A stateless routing tier in front of N [`fdc-serve`] shard
//! processes, each owning a disjoint set of base cells of the data
//! cube (see `F2db::with_base_partition`). The router holds no cube
//! state at all — only the [`Topology`] (shard id → address, optional
//! replica) and pure functions:
//!
//! * **placement** — a base cell's key (its leading `key_dims`
//!   dimension values) is mapped to a shard by rendezvous hashing
//!   ([`placement`]), deterministically: any process with the same
//!   topology computes the same owner, across restarts and machines;
//! * **inserts** are routed whole to the owning shard (single-shard
//!   writes — no distributed transaction), preserving the row bytes
//!   verbatim so values survive bit-exactly;
//! * **forecast queries** scatter-gather: the router asks any shard
//!   for the query's *placement plan* (`POST /plan` — which node each
//!   row resolves to and which base cells its derivation needs), maps
//!   each node to its owning shard, fans `POST /query {sql, nodes}`
//!   out, and reassembles the per-shard row chunks **byte-identically**
//!   in plan order — the router never re-serializes a float;
//! * **sketch folding** — each shard's `GET /sketch` bundle (accuracy
//!   partials + latency t-digests) is folded with the sketches' own
//!   merge operations ([`fold`]), so the router's `/stats` and
//!   `/metrics` expose *fleet-wide* quantiles and per-node accuracy no
//!   single process could compute from percentiles;
//! * **degradation** — a health prober marks shards down/up
//!   (`ShardDown`/`ShardRecovered` journal events); reads fail over to
//!   the shard's replica, writes answer a typed partial-failure error
//!   naming what committed, `429`/`503` shard answers are forwarded
//!   with their `Retry-After`, and `GET /healthz` reflects quorum.
//!
//! ## Routes
//!
//! | Route | Body | Answer |
//! |---|---|---|
//! | `POST /query` | `{"sql": "..."}` | `200` rows, byte-identical to one process |
//! | `POST /explain` | `{"sql": "...", "analyze": bool?}` | `200` plan, scatter-gathered |
//! | `POST /insert` | `{"dims": [...], "value": v}` or `{"rows": [...]}` | `202` after owning shard commits |
//! | `GET /stats` | — | `200` router + folded fleet + per-shard stats |
//! | `GET /metrics` | — | `200` Prometheus text with fleet-folded series |
//! | `GET /healthz` | — | `200` quorum, `503` degraded |
//! | `GET /topology` | — | `200` the serving topology + live flags |
//!
//! The HTTP layer is the same [`fdc_obs::httpcore`] the shards use;
//! the router adopts `traceparent` at ingress and propagates it on
//! every shard hop, so one trace spans the whole fan-out.

pub mod client;
pub mod fold;
pub mod placement;
pub mod topology;

pub use topology::{ShardSpec, Topology};

use fdc_obs::httpcore::{read_request, write_response, Request, RequestError};
use fdc_obs::{journal, names, trace, Event, SketchBundle, TraceContext};
use fdc_serve::json;
use std::collections::{HashMap, VecDeque};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Router::start`].
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Worker threads answering requests.
    pub workers: usize,
    /// Bound on connections queued for a worker; beyond it `429`.
    pub queue_depth: usize,
    /// Per-request deadline (queue wait counts against it).
    pub deadline: Duration,
    /// Largest accepted request body, in bytes.
    pub max_body: usize,
    /// Socket read timeout while parsing a request.
    pub read_timeout: Duration,
    /// Bound on a single router→shard call.
    pub shard_timeout: Duration,
    /// How often the prober re-checks every shard's `/healthz`.
    pub probe_interval: Duration,
    /// Head-sampling rate for traces minted at ingress.
    pub trace_sample: f64,
    /// Distinct SQL plans cached before the cache is cleared.
    pub plan_cache_cap: usize,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            workers: 4,
            queue_depth: 64,
            deadline: Duration::from_secs(5),
            max_body: 1 << 20,
            read_timeout: Duration::from_secs(2),
            shard_timeout: Duration::from_secs(2),
            probe_interval: Duration::from_millis(250),
            trace_sample: 1.0,
            plan_cache_cap: 256,
        }
    }
}

/// Live view of one shard: its spec plus the prober's up/down flag.
struct ShardState {
    spec: ShardSpec,
    up: AtomicBool,
}

/// One resolved row of a cached placement plan.
#[derive(Debug, Clone)]
struct PlanSite {
    node: u64,
    label: String,
    /// Index into `Shared::shards`.
    shard: usize,
}

struct Conn {
    stream: TcpStream,
    enqueued: Instant,
}

struct Shared {
    topology: Topology,
    shards: Vec<ShardState>,
    opts: RouterOptions,
    queue: Mutex<VecDeque<Conn>>,
    queue_cv: Condvar,
    stopping: AtomicBool,
    plans: Mutex<HashMap<String, Arc<Vec<PlanSite>>>>,
}

/// The running router. Stop it with [`Router::shutdown`].
pub struct Router {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    prober_handle: Option<JoinHandle<()>>,
}

impl Router {
    /// Binds `127.0.0.1:port` (`0` picks an ephemeral port) and starts
    /// the worker pool and the health prober.
    pub fn start(topology: Topology, port: u16, opts: RouterOptions) -> std::io::Result<Router> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, port))?;
        let addr = listener.local_addr()?;
        let shards = topology
            .shards
            .iter()
            .map(|spec| ShardState {
                spec: spec.clone(),
                // Optimistic until the first probe: a router that boots
                // before its shards should not reject the first requests
                // it could in fact serve a moment later.
                up: AtomicBool::new(true),
            })
            .collect();
        let shared = Arc::new(Shared {
            shards,
            opts,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            stopping: AtomicBool::new(false),
            plans: Mutex::new(HashMap::new()),
            topology,
        });
        journal().publish(Event::RouterStart {
            addr: addr.to_string(),
            shards: shared.shards.len() as u64,
            topology_version: shared.topology.version,
        });
        let accept_handle = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let worker_handles = (0..shared.opts.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let prober_handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fdc-router-probe".into())
                .spawn(move || probe_loop(&shared))
                .expect("spawn prober")
        };
        Ok(Router {
            addr,
            shared,
            accept_handle: Some(accept_handle),
            worker_handles,
            prober_handle: Some(prober_handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The topology this router serves.
    pub fn topology(&self) -> &Topology {
        &self.shared.topology
    }

    /// Stops accepting, drains the queue and joins every thread.
    pub fn shutdown(mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        drop(TcpStream::connect(self.addr));
        if let Some(h) = self.accept_handle.take() {
            h.join().expect("accept thread panicked");
        }
        self.shared.queue_cv.notify_all();
        for h in self.worker_handles.drain(..) {
            h.join().expect("worker thread panicked");
        }
        if let Some(h) = self.prober_handle.take() {
            h.join().expect("prober thread panicked");
        }
    }
}

// ---------------------------------------------------------------------------
// Health
// ---------------------------------------------------------------------------

fn probe_loop(shared: &Shared) {
    while !shared.stopping.load(Ordering::SeqCst) {
        for (i, shard) in shared.shards.iter().enumerate() {
            let alive = client::get(&shard.spec.addr, "/healthz", shared.opts.shard_timeout)
                .map(|r| r.status < 500)
                .unwrap_or(false);
            if alive {
                mark_up(shared, i);
            } else {
                mark_down(shared, i, "health probe failed");
            }
        }
        // Sleep in slices so shutdown is not held up by the interval.
        let mut left = shared.opts.probe_interval;
        while left > Duration::ZERO && !shared.stopping.load(Ordering::SeqCst) {
            let nap = left.min(Duration::from_millis(50));
            std::thread::sleep(nap);
            left = left.saturating_sub(nap);
        }
    }
}

fn mark_down(shared: &Shared, idx: usize, error: &str) {
    let shard = &shared.shards[idx];
    if shard.up.swap(false, Ordering::SeqCst) {
        journal().publish(Event::ShardDown {
            shard: shard.spec.id.clone(),
            addr: shard.spec.addr.clone(),
            error: error.to_string(),
        });
    }
}

fn mark_up(shared: &Shared, idx: usize) {
    let shard = &shared.shards[idx];
    if !shard.up.swap(true, Ordering::SeqCst) {
        journal().publish(Event::ShardRecovered {
            shard: shard.spec.id.clone(),
            addr: shard.spec.addr.clone(),
        });
    }
}

// ---------------------------------------------------------------------------
// Accept / worker loops (the serve pattern, without the write batcher)
// ---------------------------------------------------------------------------

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let (mut stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let mut queue = shared.queue.lock().unwrap();
        if queue.len() >= shared.opts.queue_depth {
            drop(queue);
            fdc_obs::counter_with(
                names::ROUTER_REQUESTS,
                &[("route", "admission"), ("status", "429")],
            )
            .incr();
            stream
                .set_write_timeout(Some(Duration::from_millis(500)))
                .ok();
            write_response(
                &mut stream,
                "429 Too Many Requests",
                "application/json",
                "{\"error\":\"router queue full\"}",
                &[("Retry-After", "1")],
            )
            .ok();
            continue;
        }
        queue.push_back(Conn {
            stream,
            enqueued: Instant::now(),
        });
        drop(queue);
        shared.queue_cv.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(conn) = queue.pop_front() {
                    break conn;
                }
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                let (next, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap();
                queue = next;
            }
        };
        handle_connection(shared, conn);
    }
}

fn handle_connection(shared: &Shared, conn: Conn) {
    let Conn {
        mut stream,
        enqueued,
    } = conn;
    if enqueued.elapsed() > shared.opts.deadline {
        respond(
            &mut stream,
            "admission",
            503,
            err_body("deadline exceeded while queued"),
            &[],
        );
        return;
    }
    let request = match read_request(&mut stream, shared.opts.max_body, shared.opts.read_timeout) {
        Ok(r) => r,
        Err(RequestError::BodyTooLarge(_)) => {
            respond(
                &mut stream,
                "malformed",
                413,
                err_body("request body too large"),
                &[],
            );
            return;
        }
        Err(e) => {
            respond(&mut stream, "malformed", 400, err_body(&e.to_string()), &[]);
            return;
        }
    };
    let started = Instant::now();
    let ctx = request
        .trace_context()
        .unwrap_or_else(|| TraceContext::root(trace::should_sample(shared.opts.trace_sample)));
    let _ctx_guard = trace::activate(ctx);
    let (route, status, body, extra) = {
        let _span = fdc_obs::span!("router.request");
        route_request(shared, &request)
    };
    let extra_refs: Vec<(&str, &str)> = extra.iter().map(|(n, v)| (*n, v.as_str())).collect();
    let content_type = if route == "metrics" {
        "text/plain; version=0.0.4"
    } else {
        "application/json"
    };
    let status_line = status_line(status);
    fdc_obs::counter_with(
        names::ROUTER_REQUESTS,
        &[("route", route), ("status", &status.to_string())],
    )
    .incr();
    write_response(&mut stream, status_line, content_type, &body, &extra_refs).ok();
    fdc_obs::histogram_with(names::ROUTER_REQUEST_NS, &[("route", route)])
        .record_duration(started.elapsed());
}

type Routed = (&'static str, u16, String, Vec<(&'static str, String)>);

fn route_request(shared: &Shared, request: &Request) -> Routed {
    let (path, _query) = request.path_query();
    let no_extra = Vec::new;
    match (request.method.as_str(), path) {
        ("POST", "/query") => handle_forecast(shared, &request.body, "query"),
        ("POST", "/explain") => handle_forecast(shared, &request.body, "explain"),
        ("POST", "/insert") => handle_insert(shared, &request.body),
        ("GET", "/stats") => ("stats", 200, stats_body(shared), no_extra()),
        ("GET", "/metrics") => ("metrics", 200, metrics_body(shared), no_extra()),
        ("GET", "/healthz") => handle_healthz(shared),
        ("GET", "/topology") => handle_topology(shared),
        (_, "/query" | "/explain" | "/insert") => (
            "method",
            405,
            err_body("use POST"),
            vec![("Allow", "POST".to_string())],
        ),
        (_, "/stats" | "/metrics" | "/healthz" | "/topology") => (
            "method",
            405,
            err_body("use GET"),
            vec![("Allow", "GET".to_string())],
        ),
        _ => ("unknown", 404, err_body("no such route"), no_extra()),
    }
}

fn status_line(status: u16) -> &'static str {
    match status {
        200 => "200 OK",
        202 => "202 Accepted",
        400 => "400 Bad Request",
        404 => "404 Not Found",
        405 => "405 Method Not Allowed",
        413 => "413 Payload Too Large",
        421 => "421 Misdirected Request",
        429 => "429 Too Many Requests",
        500 => "500 Internal Server Error",
        502 => "502 Bad Gateway",
        503 => "503 Service Unavailable",
        _ => "500 Internal Server Error",
    }
}

fn respond(
    stream: &mut TcpStream,
    route: &'static str,
    status: u16,
    body: String,
    extra: &[(&str, &str)],
) {
    fdc_obs::counter_with(
        names::ROUTER_REQUESTS,
        &[("route", route), ("status", &status.to_string())],
    )
    .incr();
    write_response(
        stream,
        status_line(status),
        "application/json",
        &body,
        extra,
    )
    .ok();
}

fn err_body(msg: &str) -> String {
    format!("{{\"error\":\"{}\"}}", json::escape(msg))
}

// ---------------------------------------------------------------------------
// Shard calls
// ---------------------------------------------------------------------------

/// A read against shard `idx`: primary first; on a transport failure
/// the shard is marked down and the read fails over to the replica
/// (counted in `router.replica.reads`). HTTP-level errors come back as
/// `Ok` — the shard is alive and its answer (400, 421, 429...) is the
/// answer.
fn shard_read(
    shared: &Shared,
    idx: usize,
    path: &str,
    body: Option<&str>,
) -> Result<client::ShardResponse, String> {
    let shard = &shared.shards[idx];
    let method = if body.is_some() { "POST" } else { "GET" };
    match client::request(
        &shard.spec.addr,
        method,
        path,
        body,
        shared.opts.shard_timeout,
    ) {
        Ok(resp) => {
            mark_up(shared, idx);
            Ok(resp)
        }
        Err(primary_err) => {
            shard_error(shared, idx, &primary_err.to_string());
            let Some(replica) = &shard.spec.replica else {
                return Err(format!(
                    "shard {} ({}) unreachable: {primary_err}",
                    shard.spec.id, shard.spec.addr
                ));
            };
            match client::request(replica, method, path, body, shared.opts.shard_timeout) {
                Ok(resp) => {
                    fdc_obs::counter(names::ROUTER_REPLICA_READS).incr();
                    Ok(resp)
                }
                Err(replica_err) => Err(format!(
                    "shard {} unreachable (primary {}: {primary_err}; replica {replica}: \
                     {replica_err})",
                    shard.spec.id, shard.spec.addr
                )),
            }
        }
    }
}

/// A write against shard `idx`: primary only — the replica is
/// read-only, failing a write over would fork history.
fn shard_write(
    shared: &Shared,
    idx: usize,
    path: &str,
    body: &str,
) -> Result<client::ShardResponse, String> {
    let shard = &shared.shards[idx];
    match client::post(&shard.spec.addr, path, body, shared.opts.shard_timeout) {
        Ok(resp) => {
            mark_up(shared, idx);
            Ok(resp)
        }
        Err(e) => {
            shard_error(shared, idx, &e.to_string());
            Err(format!(
                "shard {} ({}) unreachable: {e}",
                shard.spec.id, shard.spec.addr
            ))
        }
    }
}

fn shard_error(shared: &Shared, idx: usize, error: &str) {
    fdc_obs::counter_with(
        names::ROUTER_SHARD_ERRORS,
        &[("shard", &shared.shards[idx].spec.id)],
    )
    .incr();
    mark_down(shared, idx, error);
}

/// Propagates a shard's backpressure answer (`429`/`503`) with its
/// `Retry-After`, instead of wrapping it into an opaque 502.
fn forward_backpressure(route: &'static str, resp: &client::ShardResponse) -> Option<Routed> {
    if resp.status != 429 && resp.status != 503 {
        return None;
    }
    let extra = resp
        .header("retry-after")
        .map(|v| vec![("Retry-After", v.to_string())])
        .unwrap_or_default();
    Some((route, resp.status, resp.text(), extra))
}

// ---------------------------------------------------------------------------
// Placement plans
// ---------------------------------------------------------------------------

/// Resolves the placement plan of `sql`: which shard serves which
/// resolved node. Plans are computed by a live shard (`POST /plan` —
/// the shard knows the cube, the router knows the topology) and cached
/// by SQL text.
fn plan_for(shared: &Shared, sql: &str) -> Result<Arc<Vec<PlanSite>>, Routed> {
    if let Some(plan) = shared.plans.lock().unwrap().get(sql) {
        return Ok(Arc::clone(plan));
    }
    let body = format!(
        "{{\"sql\":\"{}\",\"key_dims\":{}}}",
        json::escape(sql),
        shared.topology.key_dims
    );
    // Any live shard can plan — the static plan depends only on the
    // shared catalog, not on the shard's partition.
    let mut last_err = String::from("no shard available for planning");
    let mut last_backpressure: Option<Routed> = None;
    let order: Vec<usize> = {
        let up: Vec<usize> = (0..shared.shards.len())
            .filter(|&i| shared.shards[i].up.load(Ordering::SeqCst))
            .collect();
        let down: Vec<usize> = (0..shared.shards.len())
            .filter(|i| !up.contains(i))
            .collect();
        up.into_iter().chain(down).collect()
    };
    for idx in order {
        match shard_read(shared, idx, "/plan", Some(&body)) {
            Ok(resp) if resp.status == 200 => {
                let plan = match parse_plan(shared, &resp.text()) {
                    Ok(p) => p,
                    Err((status, m)) => return Err(("plan", status, err_body(&m), Vec::new())),
                };
                let mut cache = shared.plans.lock().unwrap();
                if cache.len() >= shared.opts.plan_cache_cap {
                    cache.clear();
                }
                let plan = Arc::new(plan);
                cache.insert(sql.to_string(), Arc::clone(&plan));
                return Ok(plan);
            }
            Ok(resp) => {
                // Backpressure is this shard's problem, not the query's:
                // another shard may still plan. Keep the typed answer
                // (with its Retry-After) in case every shard is busy.
                if let Some(routed) = forward_backpressure("plan", &resp) {
                    last_backpressure = Some(routed);
                    continue;
                }
                // A 400 is the query's fault, not the shard's: the
                // oracle-grade answer is the shard's own error body.
                return Err(("plan", resp.status, resp.text(), Vec::new()));
            }
            Err(e) => last_err = e,
        }
    }
    Err(last_backpressure.unwrap_or_else(|| {
        (
            "plan",
            503,
            err_body(&last_err),
            vec![("Retry-After", "1".to_string())],
        )
    }))
}

/// Parses a shard's `/plan` answer and maps every site to its owning
/// shard. A site whose placement keys straddle shards is a *split
/// node* this partitioning cannot serve — a typed `400` (the query
/// asks for something the deployment's key granularity cannot
/// co-locate), distinct from a malformed answer (`500`, a router/shard
/// protocol bug).
fn parse_plan(shared: &Shared, text: &str) -> Result<Vec<PlanSite>, (u16, String)> {
    let bad = |m: String| (500u16, m);
    let doc = json::parse(text).map_err(|e| bad(format!("bad /plan answer: {e}")))?;
    let sites = doc
        .get("sites")
        .and_then(json::Value::as_array)
        .ok_or_else(|| bad("bad /plan answer: no sites".into()))?;
    let mut plan = Vec::with_capacity(sites.len());
    for site in sites {
        let node = site
            .get("node")
            .and_then(json::Value::as_f64)
            .filter(|f| f.fract() == 0.0 && *f >= 0.0)
            .ok_or_else(|| bad("bad /plan answer: site without node id".into()))?
            as u64;
        let label = site
            .get("label")
            .and_then(json::Value::as_str)
            .unwrap_or("")
            .to_string();
        let keys = site
            .get("keys")
            .and_then(json::Value::as_array)
            .ok_or_else(|| bad("bad /plan answer: site without keys".into()))?;
        if keys.is_empty() {
            return Err(bad(format!("node {label} has no placement keys")));
        }
        let mut owner: Option<&str> = None;
        for key in keys {
            let key = key
                .as_str()
                .ok_or_else(|| bad("bad /plan answer: non-string key".into()))?;
            let id = &shared.topology.place(key).id;
            match owner {
                None => owner = Some(id),
                Some(prev) if prev == id => {}
                Some(prev) => {
                    return Err((
                        400,
                        format!(
                            "node {label} is split across shards {prev} and {id}: its derivation \
                             needs base cells from both; raise key_dims granularity or co-locate \
                             the hierarchy"
                        ),
                    ));
                }
            }
        }
        let owner = owner.expect("non-empty keys set an owner");
        let shard = shared
            .shards
            .iter()
            .position(|s| s.spec.id == *owner)
            .expect("placement returns a topology shard");
        plan.push(PlanSite { node, label, shard });
    }
    Ok(plan)
}

// ---------------------------------------------------------------------------
// Scatter-gather forecasts
// ---------------------------------------------------------------------------

/// Re-serializes the optional `"approx"` member of a `/query` or
/// `/explain` body so each shard sub-request carries the caller's
/// approximation controls verbatim. Returns an empty string when the
/// caller did not opt in, or a `,"approx":{...}` fragment otherwise.
fn approx_fragment(doc: &json::Value) -> Result<String, String> {
    let Some(v) = doc.get("approx") else {
        return Ok(String::new());
    };
    if !matches!(v, json::Value::Obj(_)) {
        return Err("\"approx\" must be an object".into());
    }
    let mut members = Vec::new();
    for key in ["budget", "target_ci", "confidence"] {
        if let Some(m) = v.get(key) {
            let f = m
                .as_f64()
                .filter(|f| f.is_finite())
                .ok_or_else(|| format!("\"approx.{key}\" must be a number"))?;
            members.push(format!("\"{key}\":{}", json::num(f)));
        }
    }
    Ok(format!(",\"approx\":{{{}}}", members.join(",")))
}

/// `POST /query` and `POST /explain`: plan → scatter to owning shards
/// → reassemble rows byte-identically in plan order.
fn handle_forecast(shared: &Shared, body: &[u8], route: &'static str) -> Routed {
    let no_extra = Vec::new;
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return (route, 400, err_body("body is not UTF-8"), no_extra()),
    };
    let doc = match json::parse(text) {
        Ok(d) => d,
        Err(m) => return (route, 400, err_body(&m), no_extra()),
    };
    let Some(sql) = doc.get("sql").and_then(json::Value::as_str) else {
        return (
            route,
            400,
            err_body("body must be a JSON object with a \"sql\" string"),
            no_extra(),
        );
    };
    let analyze = doc
        .get("analyze")
        .and_then(json::Value::as_bool)
        .unwrap_or(false);
    let approx = match approx_fragment(&doc) {
        Ok(a) => a,
        Err(m) => return (route, 400, err_body(&m), no_extra()),
    };
    let plan = match plan_for(shared, sql) {
        Ok(p) => p,
        Err(routed) => return routed,
    };

    // Group plan sites by owning shard, preserving first-seen order.
    let mut groups: Vec<(usize, Vec<u64>)> = Vec::new();
    for site in plan.iter() {
        match groups.iter_mut().find(|(s, _)| *s == site.shard) {
            Some((_, nodes)) => nodes.push(site.node),
            None => groups.push((site.shard, vec![site.node])),
        }
    }
    fdc_obs::histogram(names::ROUTER_FANOUT_SIZE).record(groups.len() as u64);

    // Scatter concurrently; each sub-request carries this request's
    // trace context so the whole fan-out is one trace.
    let ctx = trace::current();
    let shard_path = if route == "explain" {
        "/explain"
    } else {
        "/query"
    };
    let results: Vec<(usize, Result<client::ShardResponse, String>)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .iter()
                .map(|(shard, nodes)| {
                    let nodes_json: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
                    let sub_body = format!(
                        "{{\"sql\":\"{}\",\"analyze\":{analyze},\"nodes\":[{}]{approx}}}",
                        json::escape(sql),
                        nodes_json.join(",")
                    );
                    let shard = *shard;
                    scope.spawn(move || {
                        let _g = ctx.map(trace::activate);
                        (
                            shard,
                            shard_read(shared, shard, shard_path, Some(&sub_body)),
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

    // Gather: every shard must answer 200; collect its raw row chunks.
    let mut chunks: HashMap<u64, String> = HashMap::new();
    let mut prefix: Option<String> = None;
    for (shard_idx, result) in results {
        let resp = match result {
            Ok(r) => r,
            Err(e) => {
                return (
                    route,
                    503,
                    err_body(&e),
                    vec![("Retry-After", "1".to_string())],
                )
            }
        };
        if resp.status != 200 {
            if let Some(routed) = forward_backpressure(route, &resp) {
                return routed;
            }
            // A 421 here is a router bug (placement and shard partition
            // disagree); anything else is the query's own error.
            let status = if resp.status == 421 { 500 } else { resp.status };
            return (route, status, resp.text(), no_extra());
        }
        let body = resp.text();
        match split_rows(&body) {
            Ok((head, rows)) => {
                if prefix.is_none() {
                    prefix = Some(head.to_string());
                }
                for (node, chunk) in rows {
                    chunks.insert(node, chunk.to_string());
                }
            }
            Err(m) => {
                return (
                    route,
                    500,
                    err_body(&format!(
                        "unparseable answer from shard {}: {m}",
                        shared.shards[shard_idx].spec.id
                    )),
                    no_extra(),
                )
            }
        }
    }

    // Reassemble in plan order — the exact row order a single
    // unpartitioned process would have produced, bytes untouched.
    let mut ordered = Vec::with_capacity(plan.len());
    for site in plan.iter() {
        match chunks.remove(&site.node) {
            Some(chunk) => ordered.push(chunk),
            None => {
                return (
                    route,
                    500,
                    err_body(&format!(
                        "shard answer is missing planned node {} ({})",
                        site.node, site.label
                    )),
                    no_extra(),
                )
            }
        }
    }
    let prefix = prefix.unwrap_or_else(|| "{\"rows\":[".to_string());
    (
        route,
        200,
        format!("{prefix}{}]}}", ordered.join(",")),
        no_extra(),
    )
}

/// The body prefix up to and including `"rows":[`, plus each verbatim
/// row chunk keyed by its leading `"node":N`.
type RowChunks<'a> = (&'a str, Vec<(u64, &'a str)>);

/// Splits a shard's `{"...":...,"rows":[{...},{...}]}` answer into its
/// verbatim row chunks, keyed by each chunk's leading `"node":N`.
/// Returns the body prefix up to and including `"rows":[` (horizon and
/// friends ride along untouched) and the chunks. String-aware — labels
/// may contain any escaped character.
fn split_rows(body: &str) -> Result<RowChunks<'_>, String> {
    let marker = "\"rows\":[";
    let start = body.find(marker).ok_or("answer has no rows array")? + marker.len();
    let bytes = body.as_bytes();
    let mut rows = Vec::new();
    let mut i = start;
    loop {
        while i < bytes.len() && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            return Err("unterminated rows array".into());
        }
        if bytes[i] == b']' {
            break;
        }
        if bytes[i] == b',' {
            i += 1;
            continue;
        }
        if bytes[i] != b'{' {
            return Err("rows array holds a non-object".into());
        }
        let chunk_start = i;
        let mut depth = 0usize;
        let mut in_str = false;
        let mut escaped = false;
        while i < bytes.len() {
            let b = bytes[i];
            if in_str {
                if escaped {
                    escaped = false;
                } else if b == b'\\' {
                    escaped = true;
                } else if b == b'"' {
                    in_str = false;
                }
            } else {
                match b {
                    b'"' => in_str = true,
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        if depth != 0 {
            return Err("unbalanced row object".into());
        }
        let chunk = &body[chunk_start..i];
        let node = chunk
            .strip_prefix("{\"node\":")
            .and_then(|rest| {
                let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
                digits.parse::<u64>().ok()
            })
            .ok_or("row chunk has no leading node id")?;
        rows.push((node, chunk));
    }
    Ok((&body[..start], rows))
}

// ---------------------------------------------------------------------------
// Routed inserts
// ---------------------------------------------------------------------------

/// `POST /insert`: split the rows array into verbatim chunks, place
/// each row by its leading `key_dims` dimension values, forward every
/// group whole to its owning shard's primary. All-or-error per shard;
/// a failure names what already committed — the caller decides whether
/// to retry the rest (inserts are idempotent per (cell, stamp) only
/// until the stamp completes, so the answer is explicit, not hidden).
fn handle_insert(shared: &Shared, body: &[u8]) -> Routed {
    let no_extra = Vec::new;
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return ("insert", 400, err_body("body is not UTF-8"), no_extra()),
    };
    let doc = match json::parse(text) {
        Ok(d) => d,
        Err(m) => return ("insert", 400, err_body(&m), no_extra()),
    };
    // Raw chunks: the single-row form is itself the one chunk.
    let chunks: Vec<&str> = if doc.get("rows").is_some() {
        match split_insert_rows(text) {
            Ok(c) => c,
            Err(m) => return ("insert", 400, err_body(&m), no_extra()),
        }
    } else {
        vec![text.trim()]
    };
    if chunks.is_empty() {
        return (
            "insert",
            400,
            err_body("\"rows\" must not be empty"),
            no_extra(),
        );
    }
    let mut groups: Vec<(usize, Vec<&str>)> = Vec::new();
    for chunk in chunks {
        let key = match insert_key(chunk, shared.topology.key_dims) {
            Ok(k) => k,
            Err(m) => return ("insert", 400, err_body(&m), no_extra()),
        };
        let owner = &shared.topology.place(&key).id;
        let idx = shared
            .shards
            .iter()
            .position(|s| s.spec.id == *owner)
            .expect("placement returns a topology shard");
        match groups.iter_mut().find(|(s, _)| *s == idx) {
            Some((_, rows)) => rows.push(chunk),
            None => groups.push((idx, vec![chunk])),
        }
    }
    fdc_obs::histogram(names::ROUTER_FANOUT_SIZE).record(groups.len() as u64);

    let mut accepted = 0u64;
    let mut committed: Vec<&str> = Vec::new();
    for (idx, rows) in &groups {
        let sub_body = format!("{{\"rows\":[{}]}}", rows.join(","));
        let resp = match shard_write(shared, *idx, "/insert", &sub_body) {
            Ok(r) => r,
            Err(e) => return insert_failure(shared, *idx, &committed, &e, None),
        };
        if resp.status == 202 {
            accepted += rows.len() as u64;
            committed.push(&shared.shards[*idx].spec.id);
            continue;
        }
        if let Some((_, status, body, extra)) = forward_backpressure("insert", &resp) {
            // Backpressure with partial progress is still a partial
            // failure — the typed body names the committed shards.
            return insert_failure_with(
                shared,
                *idx,
                &committed,
                &body_error(&body),
                status,
                extra,
            );
        }
        return insert_failure_with(
            shared,
            *idx,
            &committed,
            &body_error(&resp.text()),
            resp.status,
            Vec::new(),
        );
    }
    (
        "insert",
        202,
        format!("{{\"accepted\":{accepted}}}"),
        no_extra(),
    )
}

/// Extracts the `"error"` text of a shard answer (or passes the body
/// through when it is not the typed error shape).
fn body_error(body: &str) -> String {
    json::parse(body)
        .ok()
        .and_then(|d| {
            d.get("error")
                .and_then(json::Value::as_str)
                .map(str::to_string)
        })
        .unwrap_or_else(|| body.to_string())
}

fn insert_failure(
    shared: &Shared,
    failed: usize,
    committed: &[&str],
    detail: &str,
    retry_after: Option<&str>,
) -> Routed {
    let extra = retry_after
        .map(|v| vec![("Retry-After", v.to_string())])
        .unwrap_or_else(|| vec![("Retry-After", "1".to_string())]);
    insert_failure_with(shared, failed, committed, detail, 503, extra)
}

fn insert_failure_with(
    shared: &Shared,
    failed: usize,
    committed: &[&str],
    detail: &str,
    status: u16,
    extra: Vec<(&'static str, String)>,
) -> Routed {
    let committed_json: Vec<String> = committed.iter().map(|c| format!("\"{c}\"")).collect();
    (
        "insert",
        status,
        format!(
            "{{\"error\":\"partial write failure\",\"failed_shard\":\"{}\",\
             \"committed_shards\":[{}],\"detail\":\"{}\"}}",
            json::escape(&shared.shards[failed].spec.id),
            committed_json.join(","),
            json::escape(detail)
        ),
        extra,
    )
}

/// Splits the top-level `"rows"` array of an insert body into verbatim
/// row chunks (same string-aware scan as [`split_rows`], without the
/// node-id requirement).
fn split_insert_rows(text: &str) -> Result<Vec<&str>, String> {
    let marker_pos = text.find("\"rows\"").ok_or("body has no rows array")?;
    let after = &text[marker_pos + "\"rows\"".len()..];
    let bracket = after.find('[').ok_or("\"rows\" must be an array")?;
    let start = marker_pos + "\"rows\"".len() + bracket + 1;
    let bytes = text.as_bytes();
    let mut rows = Vec::new();
    let mut i = start;
    loop {
        while i < bytes.len() && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            return Err("unterminated rows array".into());
        }
        match bytes[i] {
            b']' => break,
            b',' => {
                i += 1;
                continue;
            }
            b'{' => {}
            _ => return Err("rows array holds a non-object".into()),
        }
        let chunk_start = i;
        let mut depth = 0usize;
        let mut in_str = false;
        let mut escaped = false;
        while i < bytes.len() {
            let b = bytes[i];
            if in_str {
                if escaped {
                    escaped = false;
                } else if b == b'\\' {
                    escaped = true;
                } else if b == b'"' {
                    in_str = false;
                }
            } else {
                match b {
                    b'"' => in_str = true,
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        if depth != 0 {
            return Err("unbalanced row object".into());
        }
        rows.push(&text[chunk_start..i]);
    }
    Ok(rows)
}

/// The placement key of one insert row chunk: its first `key_dims`
/// dimension values joined with `|` — the same string the shard-side
/// `F2db::partition_key` computes, so router and shards agree on
/// ownership without the router knowing the schema.
fn insert_key(chunk: &str, key_dims: usize) -> Result<String, String> {
    let doc = json::parse(chunk)?;
    let dims = doc
        .get("dims")
        .and_then(json::Value::as_array)
        .ok_or("row needs a \"dims\" array")?;
    let mut values = Vec::with_capacity(dims.len());
    for d in dims {
        values.push(d.as_str().ok_or("dims must be strings")?);
    }
    if values.is_empty() {
        return Err("row needs a non-empty \"dims\" array".into());
    }
    let take = if key_dims == 0 {
        values.len()
    } else {
        key_dims.min(values.len())
    };
    Ok(values[..take].join("|"))
}

// ---------------------------------------------------------------------------
// Fleet views
// ---------------------------------------------------------------------------

/// Fetches and decodes every live shard's sketch bundle.
fn gather_bundles(shared: &Shared) -> Vec<SketchBundle> {
    let mut bundles = Vec::new();
    for idx in 0..shared.shards.len() {
        if let Ok(resp) = shard_read(shared, idx, "/sketch", None) {
            if resp.status == 200 {
                if let Ok(bundle) = SketchBundle::decode(&resp.body) {
                    bundles.push(bundle);
                }
            }
        }
    }
    bundles
}

fn handle_healthz(shared: &Shared) -> Routed {
    let healthy = shared
        .shards
        .iter()
        .filter(|s| s.up.load(Ordering::SeqCst))
        .count();
    let total = shared.shards.len();
    // Quorum: a majority of shards must be live. Below it, routed
    // queries are mostly refusals, and a balancer should stop sending.
    let (status, state) = if healthy * 2 > total {
        (200, "ok")
    } else {
        (503, "degraded")
    };
    (
        "healthz",
        status,
        format!(
            "{{\"status\":\"{state}\",\"healthy\":{healthy},\"shards\":{total},\
             \"topology_version\":{}}}",
            shared.topology.version
        ),
        Vec::new(),
    )
}

fn handle_topology(shared: &Shared) -> Routed {
    let live: Vec<String> = shared
        .shards
        .iter()
        .map(|s| {
            format!(
                "\"{}\":{}",
                json::escape(&s.spec.id),
                s.up.load(Ordering::SeqCst)
            )
        })
        .collect();
    (
        "topology",
        200,
        format!(
            "{{\"topology\":{},\"live\":{{{}}}}}",
            shared.topology.encode(),
            live.join(",")
        ),
        Vec::new(),
    )
}

/// `GET /stats` — the fleet view: router health, the folded sketch
/// plane (fleet-wide per-key accuracy and latency quantiles), and
/// every reachable shard's own `/stats` document verbatim.
fn stats_body(shared: &Shared) -> String {
    let healthy = shared
        .shards
        .iter()
        .filter(|s| s.up.load(Ordering::SeqCst))
        .count();
    let fleet = fold::fold(&gather_bundles(shared)).to_json();
    let mut shard_docs = Vec::with_capacity(shared.shards.len());
    for idx in 0..shared.shards.len() {
        let id = json::escape(&shared.shards[idx].spec.id);
        match shard_read(shared, idx, "/stats", None) {
            Ok(resp) if resp.status == 200 => {
                shard_docs.push(format!("\"{id}\":{}", resp.text()));
            }
            _ => shard_docs.push(format!("\"{id}\":null")),
        }
    }
    format!(
        "{{\"router\":{{\"topology_version\":{},\"shards\":{},\"healthy\":{healthy}}},\
         \"fleet\":{fleet},\"shards\":{{{}}}}}",
        shared.topology.version,
        shared.shards.len(),
        shard_docs.join(",")
    )
}

/// `GET /metrics` — the router's own registry in Prometheus text form,
/// extended with fleet-folded series: per-route latency quantiles over
/// the *merged* shard digests and per-key fleet accuracy.
fn metrics_body(shared: &Shared) -> String {
    let mut out = fdc_obs::encode_prometheus(&fdc_obs::snapshot());
    let folded = fold::fold(&gather_bundles(shared));
    if !folded.digests.is_empty() {
        out.push_str("# TYPE fleet_latency_ns gauge\n");
        for (series, d) in &folded.digests {
            let (_, labels) = fdc_obs::split_series(series);
            for (q, name) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "fleet_latency_ns{{{labels},quantile=\"{name}\"}} {}\n",
                    d.quantile(q)
                ));
            }
        }
    }
    if !folded.accuracy.is_empty() {
        out.push_str("# TYPE fleet_accuracy_smape gauge\n");
        for a in &folded.accuracy {
            out.push_str(&format!(
                "fleet_accuracy_smape{{key=\"{}\"}} {}\n",
                a.key,
                a.smape.mean()
            ));
        }
        let drifting = folded.accuracy.iter().filter(|a| a.drifting).count();
        out.push_str("# TYPE fleet_accuracy_drifting gauge\n");
        out.push_str(&format!("fleet_accuracy_drifting {drifting}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_rows_preserves_bytes_and_keys_by_node() {
        let body = "{\"rows\":[{\"node\":3,\"label\":\"a \\\"x{\\\" b\",\"values\":[[1,0.1000000000000000055511151231257827]]},{\"node\":12,\"label\":\"(*, *)\",\"values\":[]}]}";
        let (prefix, rows) = split_rows(body).unwrap();
        assert_eq!(prefix, "{\"rows\":[");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 3);
        assert!(rows[0].1.contains("0.1000000000000000055511151231257827"));
        assert_eq!(rows[1].0, 12);
        // Reassembly of all chunks reproduces the body bytes exactly.
        let rebuilt = format!(
            "{prefix}{}]}}",
            rows.iter().map(|(_, c)| *c).collect::<Vec<_>>().join(",")
        );
        assert_eq!(rebuilt, body);
    }

    #[test]
    fn split_rows_passes_approx_metadata_through_verbatim() {
        // An approximate row carries a nested "approx" object; the
        // scatter-gather reassembly must keep its bytes untouched.
        let body = "{\"rows\":[{\"node\":7,\"label\":\"(*, *)\",\"values\":[[1,12.5]],\"approx\":{\"sampled\":96,\"population\":100000,\"confidence\":0.95,\"ci_half\":[0.30000000000000004]}},{\"node\":9,\"label\":\"x\",\"values\":[]}]}";
        let (prefix, rows) = split_rows(body).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 7);
        assert!(rows[0].1.contains("\"population\":100000"));
        assert!(rows[0].1.contains("0.30000000000000004"));
        let rebuilt = format!(
            "{prefix}{}]}}",
            rows.iter().map(|(_, c)| *c).collect::<Vec<_>>().join(",")
        );
        assert_eq!(rebuilt, body);
    }

    #[test]
    fn approx_fragment_round_trips_controls() {
        let doc =
            json::parse("{\"sql\":\"q\",\"approx\":{\"budget\":128,\"target_ci\":0.05}}").unwrap();
        let frag = approx_fragment(&doc).unwrap();
        assert_eq!(frag, ",\"approx\":{\"budget\":128,\"target_ci\":0.05}");
        let none = json::parse("{\"sql\":\"q\"}").unwrap();
        assert_eq!(approx_fragment(&none).unwrap(), "");
        let bad = json::parse("{\"approx\":{\"budget\":\"x\"}}").unwrap();
        assert!(approx_fragment(&bad).is_err());
        let not_obj = json::parse("{\"approx\":3}").unwrap();
        assert!(approx_fragment(&not_obj).is_err());
    }

    #[test]
    fn split_rows_rejects_malformed_bodies() {
        for bad in [
            "{\"norows\":[]}",
            "{\"rows\":[{\"node\":1]",
            "{\"rows\":[42]}",
            "{\"rows\":[{\"label\":\"no node\"}]}",
        ] {
            assert!(split_rows(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn insert_key_takes_leading_dims() {
        let chunk = "{\"dims\":[\"Germany\",\"holiday\"],\"value\":1.25}";
        assert_eq!(insert_key(chunk, 1).unwrap(), "Germany");
        assert_eq!(insert_key(chunk, 0).unwrap(), "Germany|holiday");
        assert_eq!(insert_key(chunk, 9).unwrap(), "Germany|holiday");
        assert!(insert_key("{\"value\":1}", 1).is_err());
    }

    #[test]
    fn split_insert_rows_keeps_value_bytes() {
        let body = "{\"rows\":[{\"dims\":[\"a\"],\"value\":0.30000000000000004},{\"dims\":[\"b\"],\"value\":1e-12}]}";
        let chunks = split_insert_rows(body).unwrap();
        assert_eq!(chunks.len(), 2);
        assert!(chunks[0].contains("0.30000000000000004"));
        assert!(chunks[1].contains("1e-12"));
    }
}
