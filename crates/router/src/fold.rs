//! Folding shard sketch bundles into a fleet-wide view.
//!
//! Each shard's `GET /sketch` ships a [`SketchBundle`]: per-key
//! accuracy partials (disjoint across shards — a key's node is
//! resident on exactly one) and the t-digests behind its per-route
//! latency histograms. The router merges them with the sketches' own
//! merge operations — [`fdc_obs::KeyAccuracy::merge`] via
//! [`fdc_obs::accuracy::merged_partials`], [`TDigest::merge`] for the
//! digests — so fleet-wide p99s and per-node accuracy come out exactly
//! as if one process had seen every sample. Averaging per-shard
//! quantiles could not do this; merging the sketches can.

use fdc_obs::{names, KeyAccuracy, SketchBundle, TDigest};

/// The fleet-wide fold of every live shard's bundle.
#[derive(Debug, Default)]
pub struct FleetSketch {
    /// Accuracy partials merged across shards, sorted by key.
    pub accuracy: Vec<KeyAccuracy>,
    /// Latency digests merged by series name, sorted by name.
    pub digests: Vec<(String, TDigest)>,
}

/// Folds shard bundles. Each call counts one `router.sketch.folds`;
/// cross-shard accuracy merges land in `obs.sketch.accuracy_merges`.
pub fn fold(bundles: &[SketchBundle]) -> FleetSketch {
    let groups: Vec<Vec<KeyAccuracy>> = bundles.iter().map(|b| b.accuracy.clone()).collect();
    let accuracy = fdc_obs::RollingAccuracy::merged_partials(&groups);
    let mut digests: Vec<(String, TDigest)> = Vec::new();
    for bundle in bundles {
        for (name, digest) in &bundle.digests {
            match digests.iter_mut().find(|(n, _)| n == name) {
                Some((_, acc)) => acc.merge(digest),
                None => digests.push((name.clone(), digest.clone())),
            }
        }
    }
    digests.sort_by(|(a, _), (b, _)| a.cmp(b));
    fdc_obs::counter(names::ROUTER_SKETCH_FOLDS).incr();
    FleetSketch { accuracy, digests }
}

impl FleetSketch {
    /// Renders the fold as the `"fleet"` JSON object of the router's
    /// `/stats`: per-key accuracy (count/SMAPE-mean/drifting) and
    /// per-series latency quantiles.
    pub fn to_json(&self) -> String {
        let accuracy: Vec<String> = self
            .accuracy
            .iter()
            .map(|a| {
                format!(
                    "{{\"key\":{},\"count\":{},\"mean_smape\":{},\"drifting\":{}}}",
                    a.key,
                    a.smape.count(),
                    fdc_serve::json::num(a.smape.mean()),
                    a.drifting
                )
            })
            .collect();
        let digests: Vec<String> = self
            .digests
            .iter()
            .map(|(name, d)| {
                format!(
                    "{{\"series\":\"{}\",\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                    fdc_serve::json::escape(name),
                    d.count(),
                    fdc_serve::json::num(d.quantile(0.50)),
                    fdc_serve::json::num(d.quantile(0.95)),
                    fdc_serve::json::num(d.quantile(0.99)),
                )
            })
            .collect();
        format!(
            "{{\"accuracy\":[{}],\"latency\":[{}]}}",
            accuracy.join(","),
            digests.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_obs::{AccuracyOptions, RollingAccuracy};

    fn bundle(keys: &[(u64, f64)], route: &str, samples: std::ops::Range<u64>) -> SketchBundle {
        let acc = RollingAccuracy::new(AccuracyOptions::default());
        for &(key, err) in keys {
            acc.record(key, 10.0 + err, 10.0);
        }
        let mut d = TDigest::new(64.0);
        for s in samples {
            d.insert(s as f64);
        }
        SketchBundle {
            accuracy: acc.summaries(),
            digests: vec![(format!("serve.request.ns{{route=\"{route}\"}}"), d)],
        }
    }

    #[test]
    fn fold_unions_disjoint_keys_and_merges_digests() {
        let a = bundle(&[(1, 2.0), (2, 0.5)], "query", 0..100);
        let b = bundle(&[(3, 1.0)], "query", 100..200);
        let folded = fold(&[a, b]);
        let keys: Vec<u64> = folded.accuracy.iter().map(|s| s.key).collect();
        assert_eq!(keys, vec![1, 2, 3]);
        assert_eq!(folded.digests.len(), 1);
        let d = &folded.digests[0].1;
        assert_eq!(d.count(), 200);
        // The merged median sits where the pooled samples put it, not
        // where either shard's local median was.
        let p50 = d.quantile(0.5);
        assert!((80.0..=120.0).contains(&p50), "pooled p50 = {p50}");
    }

    #[test]
    fn fold_merges_overlapping_keys_exactly() {
        let a = bundle(&[(7, 4.0)], "insert", 0..10);
        let b = bundle(&[(7, 4.0)], "insert", 0..10);
        let folded = fold(&[a.clone(), b]);
        assert_eq!(folded.accuracy.len(), 1);
        assert_eq!(
            folded.accuracy[0].smape.count(),
            2 * a.accuracy[0].smape.count()
        );
        assert!(folded.to_json().contains("\"key\":7"));
    }
}
