//! The router's HTTP/1.1 client: one request per connection,
//! `Connection: close`, read to EOF — the exact counterpart of the
//! [`fdc_obs::httpcore`] server both the shards and the router itself
//! are built on.
//!
//! When a trace context is active on the calling thread, it rides to
//! the shard as a W3C `traceparent` header, so a shard's request span
//! joins the router's trace and a merged Chrome-trace timeline shows
//! the full scatter-gather fan-out.

use std::io::{Read as _, Write as _};
use std::net::{TcpStream, ToSocketAddrs as _};
use std::time::Duration;

/// A parsed shard response: status line code, lower-cased headers,
/// raw body bytes.
#[derive(Debug)]
pub struct ShardResponse {
    /// HTTP status code.
    pub status: u16,
    /// `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body, verbatim.
    pub body: Vec<u8>,
}

impl ShardResponse {
    /// First header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossless for the JSON routes we call).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Issues `method path` against `addr` with an optional JSON body.
/// Blocking, bounded by `timeout` on connect/read/write.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> std::io::Result<ShardResponse> {
    let bad = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| bad(format!("address {addr:?} resolves to nothing")))?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let traceparent = match fdc_obs::trace::current() {
        Some(ctx) => format!("{}: {}\r\n", fdc_obs::TRACEPARENT_HEADER, ctx.traceparent()),
        None => String::new(),
    };
    let body = body.unwrap_or("");
    stream.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\n{traceparent}\
             Content-Type: application/json\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )?;
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf)?;
    let head_end = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response has no head terminator".into()))?;
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.lines();
    let status = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("response has no parseable status".into()))?;
    let headers = lines
        .filter_map(|l| {
            let (n, v) = l.split_once(':')?;
            Some((n.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    Ok(ShardResponse {
        status,
        headers,
        body: buf[head_end + 4..].to_vec(),
    })
}

/// `POST path` with a JSON body.
pub fn post(
    addr: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<ShardResponse> {
    request(addr, "POST", path, Some(body), timeout)
}

/// `GET path`.
pub fn get(addr: &str, path: &str, timeout: Duration) -> std::io::Result<ShardResponse> {
    request(addr, "GET", path, None, timeout)
}
