//! Micro-benchmarks of the forecast model substrate: fitting, forecasting
//! and incremental updates for every model family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdc_forecast::{
    Arima, ArimaOrder, FitOptions, ForecastModel, ModelSpec, Sarima, SeasonalKind, SeasonalOrder,
    TimeSeries,
};
use std::hint::black_box;

fn seasonal_series(n: usize, period: usize) -> TimeSeries {
    let values = (0..n)
        .map(|t| {
            100.0
                + 0.4 * t as f64
                + 15.0 * (2.0 * std::f64::consts::PI * (t % period) as f64 / period as f64).sin()
                + ((t as f64 * 1.7).sin() * 2.0)
        })
        .collect();
    TimeSeries::new(values, fdc_forecast::Granularity::Monthly)
}

fn bench_fit(c: &mut Criterion) {
    let series = seasonal_series(96, 12);
    let opts = FitOptions::default();
    let mut group = c.benchmark_group("model_fit");
    for (name, spec) in [
        ("ses", ModelSpec::Ses),
        ("holt", ModelSpec::Holt),
        (
            "holt_winters",
            ModelSpec::HoltWinters {
                period: 12,
                seasonal: SeasonalKind::Additive,
            },
        ),
        ("arima_111", ModelSpec::Arima { p: 1, d: 1, q: 1 }),
        (
            "sarima",
            ModelSpec::Sarima {
                order: (1, 0, 0),
                seasonal: (0, 1, 0),
                period: 12,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| spec.fit(black_box(&series), &opts).unwrap())
        });
    }
    group.finish();
}

fn bench_forecast_and_update(c: &mut Criterion) {
    let series = seasonal_series(96, 12);
    let opts = FitOptions::default();
    let hw = ModelSpec::HoltWinters {
        period: 12,
        seasonal: SeasonalKind::Additive,
    }
    .fit(&series, &opts)
    .unwrap();
    let arima = Arima::fit(&series, ArimaOrder::new(2, 1, 1), &opts).unwrap();
    let sarima = Sarima::fit(
        &series,
        ArimaOrder::new(1, 0, 1),
        SeasonalOrder::new(0, 1, 0, 12),
        &opts,
    )
    .unwrap();

    let mut group = c.benchmark_group("model_forecast");
    for h in [1usize, 12, 48] {
        group.bench_with_input(BenchmarkId::new("holt_winters", h), &h, |b, &h| {
            b.iter(|| black_box(hw.forecast(h)))
        });
        group.bench_with_input(BenchmarkId::new("arima", h), &h, |b, &h| {
            b.iter(|| black_box(arima.forecast(h)))
        });
        group.bench_with_input(BenchmarkId::new("sarima", h), &h, |b, &h| {
            b.iter(|| black_box(sarima.forecast(h)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("model_update");
    group.bench_function("holt_winters", |b| {
        b.iter_batched(
            || hw.clone(),
            |mut m| m.update(black_box(123.0)),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("sarima", |b| {
        b.iter_batched(
            || sarima.clone(),
            |mut m| m.update(black_box(123.0)),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_accuracy(c: &mut Criterion) {
    let actual: Vec<f64> = (0..256).map(|t| 50.0 + (t as f64).sin()).collect();
    let forecast: Vec<f64> = actual.iter().map(|v| v * 1.01).collect();
    c.bench_function("smape_256", |b| {
        b.iter(|| fdc_forecast::smape(black_box(&actual), black_box(&forecast)))
    });
}

criterion_group!(benches, bench_fit, bench_forecast_and_update, bench_accuracy);
criterion_main!(benches);
