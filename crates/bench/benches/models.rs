//! Micro-benchmarks of the forecast model substrate: fitting, forecasting
//! and incremental updates for every model family.
//!
//! Run with `cargo bench -p fdc-bench --bench models`.

use fdc_bench::timing::{bench, emit_metrics};
use fdc_forecast::{
    Arima, ArimaOrder, FitOptions, ForecastModel, ModelSpec, Sarima, SeasonalKind, SeasonalOrder,
    TimeSeries,
};
use std::hint::black_box;

fn seasonal_series(n: usize, period: usize) -> TimeSeries {
    let values = (0..n)
        .map(|t| {
            100.0
                + 0.4 * t as f64
                + 15.0 * (2.0 * std::f64::consts::PI * (t % period) as f64 / period as f64).sin()
                + ((t as f64 * 1.7).sin() * 2.0)
        })
        .collect();
    TimeSeries::new(values, fdc_forecast::Granularity::Monthly)
}

fn bench_fit() {
    let series = seasonal_series(96, 12);
    let opts = FitOptions::default();
    for (name, spec) in [
        ("model_fit/ses", ModelSpec::Ses),
        ("model_fit/holt", ModelSpec::Holt),
        (
            "model_fit/holt_winters",
            ModelSpec::HoltWinters {
                period: 12,
                seasonal: SeasonalKind::Additive,
            },
        ),
        ("model_fit/arima_111", ModelSpec::Arima { p: 1, d: 1, q: 1 }),
        (
            "model_fit/sarima",
            ModelSpec::Sarima {
                order: (1, 0, 0),
                seasonal: (0, 1, 0),
                period: 12,
            },
        ),
    ] {
        bench(name, || spec.fit(black_box(&series), &opts).unwrap());
    }
}

fn bench_forecast_and_update() {
    let series = seasonal_series(96, 12);
    let opts = FitOptions::default();
    let hw = ModelSpec::HoltWinters {
        period: 12,
        seasonal: SeasonalKind::Additive,
    }
    .fit(&series, &opts)
    .unwrap();
    let arima = Arima::fit(&series, ArimaOrder::new(2, 1, 1), &opts).unwrap();
    let sarima = Sarima::fit(
        &series,
        ArimaOrder::new(1, 0, 1),
        SeasonalOrder::new(0, 1, 0, 12),
        &opts,
    )
    .unwrap();

    for h in [1usize, 12, 48] {
        bench(&format!("model_forecast/holt_winters/{h}"), || {
            hw.forecast(h)
        });
        bench(&format!("model_forecast/arima/{h}"), || arima.forecast(h));
        bench(&format!("model_forecast/sarima/{h}"), || sarima.forecast(h));
    }

    bench("model_update/holt_winters", || {
        let mut m = hw.clone();
        m.update(black_box(123.0));
        m
    });
    bench("model_update/sarima", || {
        let mut m = sarima.clone();
        m.update(black_box(123.0));
        m
    });
}

fn bench_accuracy() {
    let actual: Vec<f64> = (0..256).map(|t| 50.0 + (t as f64).sin()).collect();
    let forecast: Vec<f64> = actual.iter().map(|v| v * 1.01).collect();
    bench("smape_256", || {
        fdc_forecast::smape(black_box(&actual), black_box(&forecast))
    });
}

fn main() {
    bench_fit();
    bench_forecast_and_update();
    bench_accuracy();
    emit_metrics("bench_models");
}
