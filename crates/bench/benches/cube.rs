//! Micro-benchmarks of the cube substrate: hyper graph construction,
//! aggregate materialization, derivation weights and query resolution.
//!
//! Run with `cargo bench -p fdc-bench --bench cube`.

use fdc_bench::timing::{bench, emit_metrics};
use fdc_cube::{derive, DimSelector, NodeQuery};
use fdc_datagen::{generate_cube, tourism_proxy, GenSpec};
use std::hint::black_box;

fn bench_graph_build() {
    for size in [100usize, 400, 1600] {
        let spec = GenSpec::new(size, 24, 1);
        bench(&format!("graph_build/{size}"), || {
            black_box(generate_cube(&spec))
        });
    }
}

fn bench_derivation() {
    let ds = tourism_proxy(1);
    let top = ds.graph().top_node();
    let base = ds.graph().base_nodes()[0];
    bench("derivation_weight", || {
        derive::derivation_weight(&ds, &[top], base)
    });
    bench("weight_variance", || {
        derive::weight_variance(&ds, &[top], base)
    });
    bench("historical_error", || {
        derive::historical_error(&ds, &[top], base, fdc_forecast::AccuracyMeasure::Smape)
    });
}

fn bench_query_resolution() {
    let cube = generate_cube(&GenSpec::new(400, 24, 1));
    let g = cube.dataset.graph();
    let query =
        NodeQuery::from_predicates(g, &[("level1", DimSelector::Value("L1V0".into()))]).unwrap();
    bench("query_resolve", || query.resolve(g).unwrap());
}

fn bench_advance_time() {
    let cube = generate_cube(&GenSpec::new(200, 24, 1));
    let base: Vec<usize> = cube.dataset.graph().base_nodes().to_vec();
    let values: Vec<(usize, f64)> = base.iter().map(|&b| (b, 42.0)).collect();
    bench("advance_time_200", || {
        let mut ds = cube.dataset.clone();
        ds.advance_time(black_box(&values)).unwrap();
        ds
    });
}

fn main() {
    bench_graph_build();
    bench_derivation();
    bench_query_resolution();
    bench_advance_time();
    emit_metrics("bench_cube");
}
