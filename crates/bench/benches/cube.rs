//! Micro-benchmarks of the cube substrate: hyper graph construction,
//! aggregate materialization, derivation weights and query resolution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdc_cube::{derive, DimSelector, NodeQuery};
use fdc_datagen::{generate_cube, tourism_proxy, GenSpec};
use std::hint::black_box;

fn bench_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_build");
    group.sample_size(10);
    for size in [100usize, 400, 1600] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let spec = GenSpec::new(size, 24, 1);
            b.iter(|| black_box(generate_cube(&spec)))
        });
    }
    group.finish();
}

fn bench_derivation(c: &mut Criterion) {
    let ds = tourism_proxy(1);
    let top = ds.graph().top_node();
    let base = ds.graph().base_nodes()[0];
    c.bench_function("derivation_weight", |b| {
        b.iter(|| black_box(derive::derivation_weight(&ds, &[top], base)))
    });
    c.bench_function("weight_variance", |b| {
        b.iter(|| black_box(derive::weight_variance(&ds, &[top], base)))
    });
    c.bench_function("historical_error", |b| {
        b.iter(|| {
            black_box(derive::historical_error(
                &ds,
                &[top],
                base,
                fdc_forecast::AccuracyMeasure::Smape,
            ))
        })
    });
}

fn bench_query_resolution(c: &mut Criterion) {
    let cube = generate_cube(&GenSpec::new(400, 24, 1));
    let g = cube.dataset.graph();
    let query = NodeQuery::from_predicates(
        g,
        &[("level1", DimSelector::Value("L1V0".into()))],
    )
    .unwrap();
    c.bench_function("query_resolve", |b| {
        b.iter(|| black_box(query.resolve(g).unwrap()))
    });
}

fn bench_advance_time(c: &mut Criterion) {
    let cube = generate_cube(&GenSpec::new(200, 24, 1));
    let base: Vec<usize> = cube.dataset.graph().base_nodes().to_vec();
    let values: Vec<(usize, f64)> = base.iter().map(|&b| (b, 42.0)).collect();
    c.bench_function("advance_time_200", |b| {
        b.iter_batched(
            || cube.dataset.clone(),
            |mut ds| ds.advance_time(black_box(&values)).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    benches,
    bench_graph_build,
    bench_derivation,
    bench_query_resolution,
    bench_advance_time
);
criterion_main!(benches);
