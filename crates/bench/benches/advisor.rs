//! Micro-benchmarks of the advisor: indicator computation, candidate
//! selection, a single iteration, and a full run on a small cube.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdc_core::{indicator, Advisor, AdvisorOptions};
use fdc_cube::CubeSplit;
use fdc_datagen::{generate_cube, tourism_proxy, GenSpec};
use std::hint::black_box;

fn bench_indicator(c: &mut Criterion) {
    let ds = tourism_proxy(1);
    let split = CubeSplit::new(&ds, 0.8);
    let opts = indicator::IndicatorOptions::new(ds.node_count(), split.train_len());
    let top = ds.graph().top_node();
    c.bench_function("scheme_indicator", |b| {
        b.iter(|| {
            black_box(indicator::scheme_indicator(
                &ds,
                top,
                ds.graph().base_nodes()[0],
                &opts,
            ))
        })
    });
    c.bench_function("local_indicator_45_nodes", |b| {
        b.iter(|| black_box(indicator::LocalIndicator::compute(&ds, top, &opts)))
    });
}

fn bench_advisor_step(c: &mut Criterion) {
    let ds = tourism_proxy(1);
    c.bench_function("advisor_step", |b| {
        b.iter_batched(
            || {
                Advisor::new(
                    &ds,
                    AdvisorOptions {
                        parallelism: Some(2),
                        ..AdvisorOptions::default()
                    },
                )
                .unwrap()
            },
            |mut advisor| black_box(advisor.step()),
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_advisor_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("advisor_run");
    group.sample_size(10);
    for size in [50usize, 100] {
        let cube = generate_cube(&GenSpec::new(size, 36, 1));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let outcome = Advisor::new(&cube.dataset, AdvisorOptions::default())
                    .unwrap()
                    .run();
                black_box(outcome.error)
            })
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    use fdc_hierarchical::{bottom_up, direct, greedy, top_down, BaselineOptions};
    let ds = fdc_datagen::tourism_proxy(1);
    let split = CubeSplit::new(&ds, 0.8);
    let opts = BaselineOptions::default();
    let mut group = c.benchmark_group("baselines_tourism");
    group.sample_size(10);
    group.bench_function("direct", |b| b.iter(|| black_box(direct(&ds, &split, &opts))));
    group.bench_function("bottom_up", |b| {
        b.iter(|| black_box(bottom_up(&ds, &split, &opts)))
    });
    group.bench_function("top_down", |b| {
        b.iter(|| black_box(top_down(&ds, &split, &opts)))
    });
    group.bench_function("greedy", |b| b.iter(|| black_box(greedy(&ds, &split, &opts))));
    group.finish();
}

criterion_group!(
    benches,
    bench_indicator,
    bench_advisor_step,
    bench_advisor_run,
    bench_baselines
);
criterion_main!(benches);
