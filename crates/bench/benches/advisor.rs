//! Micro-benchmarks of the advisor: indicator computation, candidate
//! selection, a single iteration, and a full run on a small cube.
//!
//! Run with `cargo bench -p fdc-bench --bench advisor`.

use fdc_bench::timing::{bench, emit_metrics};
use fdc_core::{indicator, Advisor, AdvisorOptions};
use fdc_cube::CubeSplit;
use fdc_datagen::{generate_cube, tourism_proxy, GenSpec};
use std::hint::black_box;

fn bench_indicator() {
    let ds = tourism_proxy(1);
    let split = CubeSplit::new(&ds, 0.8);
    let opts = indicator::IndicatorOptions::new(ds.node_count(), split.train_len());
    let top = ds.graph().top_node();
    bench("scheme_indicator", || {
        indicator::scheme_indicator(&ds, top, ds.graph().base_nodes()[0], &opts)
    });
    bench("local_indicator_45_nodes", || {
        indicator::LocalIndicator::compute(&ds, top, &opts)
    });
}

fn bench_advisor_step() {
    let ds = tourism_proxy(1);
    bench("advisor_step", || {
        let mut advisor = Advisor::new(
            &ds,
            AdvisorOptions {
                parallelism: Some(2),
                ..AdvisorOptions::default()
            },
        )
        .unwrap();
        black_box(advisor.step())
    });
}

fn bench_advisor_run() {
    for size in [50usize, 100] {
        let cube = generate_cube(&GenSpec::new(size, 36, 1));
        bench(&format!("advisor_run/{size}"), || {
            let outcome = Advisor::new(&cube.dataset, AdvisorOptions::default())
                .unwrap()
                .run();
            outcome.error
        });
    }
}

fn bench_baselines() {
    use fdc_hierarchical::{bottom_up, direct, greedy, top_down, BaselineOptions};
    let ds = fdc_datagen::tourism_proxy(1);
    let split = CubeSplit::new(&ds, 0.8);
    let opts = BaselineOptions::default();
    bench("baselines_tourism/direct", || direct(&ds, &split, &opts));
    bench("baselines_tourism/bottom_up", || {
        bottom_up(&ds, &split, &opts)
    });
    bench("baselines_tourism/top_down", || {
        top_down(&ds, &split, &opts)
    });
    bench("baselines_tourism/greedy", || greedy(&ds, &split, &opts));
}

/// Measures the cost of the observability layer itself: a full advisor
/// run with tracing spans enabled vs disabled (counters and histograms
/// stay on in both — they are single atomic adds and not worth a knob).
/// The measured difference is documented in DESIGN.md ("Observability")
/// and must stay within a few percent.
fn bench_instrumentation_overhead() {
    let ds = tourism_proxy(1);
    let run = || {
        let outcome = Advisor::new(
            &ds,
            AdvisorOptions {
                parallelism: Some(2),
                ..AdvisorOptions::default()
            },
        )
        .unwrap()
        .run();
        outcome.error
    };
    fdc_obs::set_spans_enabled(false);
    bench("advisor_run_overhead/spans_off", run);
    fdc_obs::set_spans_enabled(true);
    bench("advisor_run_overhead/spans_on", run);
}

fn main() {
    bench_indicator();
    bench_advisor_step();
    bench_advisor_run();
    bench_baselines();
    bench_instrumentation_overhead();
    emit_metrics("bench_advisor");
}
