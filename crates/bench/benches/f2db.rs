//! Micro-benchmarks of the F²DB layer: SQL parsing, forecast query
//! execution (the fast path of Fig. 9b), inserts with time advance, and
//! catalog serialization.
//!
//! Run with `cargo bench -p fdc-bench --bench f2db`.

use fdc_bench::timing::{bench, emit_metrics};
use fdc_core::{Advisor, AdvisorOptions};
use fdc_datagen::tourism_proxy;
use fdc_f2db::{parse_query, F2db};
use std::hint::black_box;

fn make_db() -> F2db {
    let ds = tourism_proxy(1);
    let outcome = Advisor::new(&ds, AdvisorOptions::default()).unwrap().run();
    F2db::load(ds, &outcome.configuration).unwrap()
}

fn bench_parse() {
    let sql = "SELECT time, SUM(visitors) FROM facts WHERE purpose = 'holiday' AND state = 'NSW' GROUP BY time AS OF now() + '4 quarters'";
    bench("parse_query", || parse_query(black_box(sql)).unwrap());
}

fn bench_query() {
    let db = make_db();
    let sql = "SELECT time, visitors FROM facts WHERE purpose = 'holiday' AND state = 'NSW' AS OF now() + '4 quarters'";
    bench("forecast_query", || db.query(black_box(sql)).unwrap());
    let agg =
        "SELECT time, SUM(visitors) FROM facts GROUP BY time, purpose AS OF now() + '2 quarters'";
    bench("forecast_query_group_by", || {
        db.query(black_box(agg)).unwrap()
    });
}

fn bench_insert_advance() {
    let db = make_db();
    let base: Vec<usize> = db.dataset().graph().base_nodes().to_vec();
    // Each round inserts a full base batch, which triggers one time
    // advance; the database keeps growing, which is the realistic
    // steady-state workload.
    bench("insert_batch_and_advance", || {
        for &node in &base {
            db.insert_value(node, 123.0).unwrap();
        }
        db.stats().time_advances
    });
}

fn bench_catalog_roundtrip() {
    let db = make_db();
    let path = std::env::temp_dir().join("fdc_bench_catalog.bin");
    bench("catalog_save_load", || {
        db.save_catalog(&path).unwrap();
        let restored = F2db::open_catalog(db.dataset().clone(), &path).unwrap();
        restored.model_count()
    });
    std::fs::remove_file(&path).ok();
}

fn main() {
    bench_parse();
    bench_query();
    bench_insert_advance();
    bench_catalog_roundtrip();
    emit_metrics("bench_f2db");
}
