//! Micro-benchmarks of the F²DB layer: SQL parsing, forecast query
//! execution (the fast path of Fig. 9b), inserts with time advance, and
//! catalog serialization.

use criterion::{criterion_group, criterion_main, Criterion};
use fdc_core::{Advisor, AdvisorOptions};
use fdc_datagen::tourism_proxy;
use fdc_f2db::{parse_query, F2db};
use std::hint::black_box;

fn make_db() -> F2db {
    let ds = tourism_proxy(1);
    let outcome = Advisor::new(&ds, AdvisorOptions::default()).unwrap().run();
    F2db::load(ds, &outcome.configuration).unwrap()
}

fn bench_parse(c: &mut Criterion) {
    let sql = "SELECT time, SUM(visitors) FROM facts WHERE purpose = 'holiday' AND state = 'NSW' GROUP BY time AS OF now() + '4 quarters'";
    c.bench_function("parse_query", |b| {
        b.iter(|| black_box(parse_query(black_box(sql)).unwrap()))
    });
}

fn bench_query(c: &mut Criterion) {
    let mut db = make_db();
    let sql = "SELECT time, visitors FROM facts WHERE purpose = 'holiday' AND state = 'NSW' AS OF now() + '4 quarters'";
    c.bench_function("forecast_query", |b| {
        b.iter(|| black_box(db.query(black_box(sql)).unwrap()))
    });
    let agg = "SELECT time, SUM(visitors) FROM facts GROUP BY time, purpose AS OF now() + '2 quarters'";
    c.bench_function("forecast_query_group_by", |b| {
        b.iter(|| black_box(db.query(black_box(agg)).unwrap()))
    });
}

fn bench_insert_advance(c: &mut Criterion) {
    c.bench_function("insert_batch_and_advance", |b| {
        b.iter_batched(
            make_db,
            |mut db| {
                let base: Vec<usize> = db.dataset().graph().base_nodes().to_vec();
                for &node in &base {
                    db.insert_value(node, 123.0).unwrap();
                }
                black_box(db.stats().time_advances)
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_catalog_roundtrip(c: &mut Criterion) {
    let db = make_db();
    let path = std::env::temp_dir().join("fdc_bench_catalog.bin");
    c.bench_function("catalog_save_load", |b| {
        b.iter(|| {
            db.save_catalog(&path).unwrap();
            let restored = F2db::open_catalog(db.dataset().clone(), &path).unwrap();
            black_box(restored.model_count())
        })
    });
    std::fs::remove_file(&path).ok();
}

criterion_group!(
    benches,
    bench_parse,
    bench_query,
    bench_insert_advance,
    bench_catalog_roundtrip
);
criterion_main!(benches);
