//! Timing ablations: how the advisor's runtime responds to its design
//! knobs (indicator size, multi-source rounds, adaptive γ). The *quality*
//! side of these ablations is produced by the `ablation` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdc_core::{Advisor, AdvisorOptions};
use fdc_datagen::{generate_cube, GenSpec};
use std::hint::black_box;

fn bench_indicator_size(c: &mut Criterion) {
    let cube = generate_cube(&GenSpec::new(100, 36, 1));
    let n = cube.dataset.node_count();
    let mut group = c.benchmark_group("ablation_indicator_size");
    group.sample_size(10);
    for pct in [25usize, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(pct), &pct, |b, &pct| {
            b.iter(|| {
                let outcome = Advisor::new(
                    &cube.dataset,
                    AdvisorOptions {
                        indicator_size: Some((n * pct / 100).max(2)),
                        ..AdvisorOptions::default()
                    },
                )
                .unwrap()
                .run();
                black_box(outcome.error)
            })
        });
    }
    group.finish();
}

fn bench_multisource(c: &mut Criterion) {
    let cube = generate_cube(&GenSpec::new(80, 36, 2));
    let mut group = c.benchmark_group("ablation_multisource");
    group.sample_size(10);
    for steps in [0usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, &steps| {
            b.iter(|| {
                let outcome = Advisor::new(
                    &cube.dataset,
                    AdvisorOptions {
                        multisource_steps: steps,
                        ..AdvisorOptions::default()
                    },
                )
                .unwrap()
                .run();
                black_box(outcome.error)
            })
        });
    }
    group.finish();
}

fn bench_adaptive_gamma(c: &mut Criterion) {
    let cube = generate_cube(&GenSpec::new(80, 36, 3));
    let mut group = c.benchmark_group("ablation_gamma");
    group.sample_size(10);
    for adaptive in [true, false] {
        group.bench_with_input(
            BenchmarkId::from_parameter(adaptive),
            &adaptive,
            |b, &adaptive| {
                b.iter(|| {
                    let outcome = Advisor::new(
                        &cube.dataset,
                        AdvisorOptions {
                            adaptive_gamma: adaptive,
                            ..AdvisorOptions::default()
                        },
                    )
                    .unwrap()
                    .run();
                    black_box(outcome.error)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_indicator_size,
    bench_multisource,
    bench_adaptive_gamma
);
criterion_main!(benches);
