//! Timing ablations: how the advisor's runtime responds to its design
//! knobs (indicator size, multi-source rounds, adaptive γ). The *quality*
//! side of these ablations is produced by the `ablation` binary.
//!
//! Run with `cargo bench -p fdc-bench --bench ablation`.

use fdc_bench::timing::{bench, emit_metrics};
use fdc_core::{Advisor, AdvisorOptions};
use fdc_datagen::{generate_cube, GenSpec};

fn bench_indicator_size() {
    let cube = generate_cube(&GenSpec::new(100, 36, 1));
    let n = cube.dataset.node_count();
    for pct in [25usize, 100] {
        bench(&format!("ablation_indicator_size/{pct}"), || {
            let outcome = Advisor::new(
                &cube.dataset,
                AdvisorOptions {
                    indicator_size: Some((n * pct / 100).max(2)),
                    ..AdvisorOptions::default()
                },
            )
            .unwrap()
            .run();
            outcome.error
        });
    }
}

fn bench_multisource() {
    let cube = generate_cube(&GenSpec::new(80, 36, 2));
    for steps in [0usize, 32] {
        bench(&format!("ablation_multisource/{steps}"), || {
            let outcome = Advisor::new(
                &cube.dataset,
                AdvisorOptions {
                    multisource_steps: steps,
                    ..AdvisorOptions::default()
                },
            )
            .unwrap()
            .run();
            outcome.error
        });
    }
}

fn bench_adaptive_gamma() {
    let cube = generate_cube(&GenSpec::new(80, 36, 3));
    for adaptive in [true, false] {
        bench(&format!("ablation_gamma/{adaptive}"), || {
            let outcome = Advisor::new(
                &cube.dataset,
                AdvisorOptions {
                    adaptive_gamma: adaptive,
                    ..AdvisorOptions::default()
                },
            )
            .unwrap()
            .run();
            outcome.error
        });
    }
}

fn main() {
    bench_indicator_size();
    bench_multisource();
    bench_adaptive_gamma();
    emit_metrics("bench_ablation");
}
