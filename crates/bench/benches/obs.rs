//! Micro-benchmarks of the observability plane itself: what one metric
//! record costs (plain vs labeled, interned vs held handle), what the
//! drift tracker adds per time advance, what the sketches cost (t-digest
//! insert/merge, moment-summary insert/merge), and what a full
//! Prometheus encode / journal publish costs. The measured numbers back
//! the overhead discussion in DESIGN.md §7 and EXPERIMENTS.md.
//!
//! Run with `cargo bench -p fdc-bench --bench obs`.

use fdc_bench::timing::{bench, emit_metrics};
use fdc_obs::{AccuracyOptions, Event, Journal, MomentSummary, RollingAccuracy, TDigest};
use std::hint::black_box;

fn bench_metric_records() {
    bench("counter_incr_held_handle", {
        let c = fdc_obs::counter("obsbench.plain");
        move || c.incr()
    });
    bench("counter_incr_interned_by_name", || {
        fdc_obs::counter("obsbench.plain").incr()
    });
    bench("labeled_counter_incr_held_handle", {
        let c = fdc_obs::counter_with("obsbench.labeled", &[("node", "17"), ("phase", "x")]);
        move || c.incr()
    });
    bench("labeled_counter_incr_interned", || {
        fdc_obs::counter_with("obsbench.labeled", &[("node", "17"), ("phase", "x")]).incr()
    });
    bench("histogram_record_held_handle", {
        let h = fdc_obs::histogram("obsbench.lat.ns");
        let mut v = 1u64;
        move || {
            v = v.wrapping_mul(2862933555777941757).wrapping_add(1);
            h.record(v >> 40)
        }
    });
}

fn bench_drift_tracker() {
    let acc = RollingAccuracy::new(AccuracyOptions::default()).with_gauge_families(
        "obsbench.smape",
        "obsbench.mae",
        "obsbench.err_stddev",
    );
    let mut key = 0u64;
    bench("rolling_accuracy_record_64_keys", move || {
        key = (key + 1) % 64;
        acc.record(key, 100.0, 98.5)
    });
}

/// What the sketches cost: digest inserts (the per-histogram-record
/// overhead), digest merges at snapshot shape, and moment-summary
/// insert/merge — the numbers behind the EXPERIMENTS.md overhead table.
fn bench_sketches() {
    bench("tdigest_insert", {
        let mut d = TDigest::new(100.0);
        let mut v = 1u64;
        move || {
            v = v.wrapping_mul(2862933555777941757).wrapping_add(1);
            d.insert((v >> 40) as f64)
        }
    });
    // Merge cost at the shape Histogram::snapshot sees: four populated
    // shard digests folded into a fresh one.
    let shards: Vec<TDigest> = (0..4)
        .map(|s| {
            let mut d = TDigest::new(100.0);
            let mut v = 1u64 + s;
            for _ in 0..10_000 {
                v = v.wrapping_mul(2862933555777941757).wrapping_add(1);
                d.insert((v >> 40) as f64);
            }
            d.flush();
            d
        })
        .collect();
    bench("tdigest_merge_4_shards_10k_each", || {
        let mut merged = TDigest::new(100.0);
        for s in &shards {
            merged.merge(s);
        }
        merged.flush();
        black_box(merged.quantile(0.99))
    });
    bench("moment_summary_insert", {
        let mut m = MomentSummary::new();
        let mut v = 1u64;
        move || {
            v = v.wrapping_mul(2862933555777941757).wrapping_add(1);
            m.insert((v >> 40) as f64)
        }
    });
    let a = {
        let mut m = MomentSummary::new();
        for i in 0..10_000 {
            m.insert(i as f64);
        }
        m
    };
    let b = {
        let mut m = MomentSummary::new();
        for i in 0..10_000 {
            m.insert(1.5 * i as f64);
        }
        m
    };
    bench("moment_summary_merge", || black_box(a.merge(&b)));
}

fn bench_export_plane() {
    // Populate a realistic registry shape first (the other benches above
    // already added families; add a labeled spread).
    for node in 0..64 {
        fdc_obs::float_gauge_with("obsbench.spread", &[("node", &node.to_string())])
            .set(node as f64 / 64.0);
    }
    bench("encode_prometheus_full_registry", || {
        black_box(fdc_obs::encode_prometheus(&fdc_obs::snapshot()).len())
    });
    bench("snapshot_to_json", || {
        black_box(fdc_obs::snapshot().to_json().len())
    });
    let journal = Journal::with_capacity(1024);
    let mut i = 0u64;
    bench("journal_publish_ring_only", move || {
        i += 1;
        journal.publish(Event::BatchAdvance {
            time_index: i,
            model_updates: 22,
            invalidations: 3,
            drift_alerts: 0,
        })
    });
}

fn main() {
    bench_metric_records();
    bench_drift_tracker();
    bench_sketches();
    bench_export_plane();
    emit_metrics("bench_obs");
}
