//! # fdc-bench
//!
//! The benchmark harness regenerating every figure of the paper's
//! evaluation (§VI), plus framework-free micro-benchmarks and ablation
//! studies. See DESIGN.md for the experiment index and EXPERIMENTS.md for
//! recorded paper-vs-measured results.
//!
//! Figure regenerators (binaries):
//!
//! * `fig7_accuracy` — §VI-B accuracy analysis over Tourism / Sales /
//!   Energy / GenX,
//! * `fig8_parameters` — §VI-C indicator correlation, indicator size,
//!   γ and α analyses,
//! * `fig9_runtime` — §VI-D scalability sweep and forecast query runtime,
//! * `ablation` — quality ablations of the advisor's design choices.
//!
//! All binaries accept `--scale <n>` to size the synthetic sweeps (the
//! paper's largest runs were sized for a 12-core server and hours of wall
//! time; the defaults regenerate every figure's *shape* on a laptop in
//! minutes).

pub mod timing;
pub mod workload;

pub use timing::{bench, emit_metrics, obs_session, ObsSession};
pub use workload::QueryWorkload;

use fdc_core::{Advisor, AdvisorOptions, StopCriteria};
use fdc_cube::{CubeSplit, Dataset};
use fdc_forecast::FitOptions;
use fdc_hierarchical::{
    bottom_up, combine, direct, greedy, top_down, BaselineOptions, BaselineResult,
};
use std::time::{Duration, Instant};

/// One row of an accuracy/cost comparison table.
#[derive(Debug, Clone)]
pub struct ApproachRow {
    /// Method name.
    pub name: &'static str,
    /// Overall forecast error (mean node SMAPE).
    pub error: f64,
    /// Number of models kept.
    pub models: usize,
    /// Total model creation cost.
    pub cost: Duration,
    /// Wall-clock time of configuration construction.
    pub wall_time: Duration,
}

impl From<BaselineResult> for ApproachRow {
    fn from(r: BaselineResult) -> Self {
        ApproachRow {
            name: r.name,
            error: r.overall_error(),
            models: r.model_count,
            cost: r.total_cost,
            wall_time: r.wall_time,
        }
    }
}

/// Runs the advisor and adapts its outcome into an [`ApproachRow`].
pub fn run_advisor(dataset: &Dataset, options: AdvisorOptions) -> ApproachRow {
    let start = Instant::now();
    let outcome = Advisor::new(dataset, options)
        .expect("advisor construction succeeds on benchmark data")
        .run();
    ApproachRow {
        name: "advisor",
        error: outcome.error,
        models: outcome.model_count,
        cost: outcome.total_cost,
        wall_time: start.elapsed(),
    }
}

/// Default advisor options used across the figure harness.
pub fn advisor_options(alpha_limit: f64, fit: FitOptions) -> AdvisorOptions {
    AdvisorOptions {
        alpha_limit,
        fit,
        stop: StopCriteria::default(),
        ..AdvisorOptions::default()
    }
}

/// Which approaches to include in a comparison run.
#[derive(Debug, Clone, Copy)]
pub struct ApproachSelection {
    /// Include the Combine baseline (skipped on large cubes, as the paper
    /// skipped it for Gen10k: "> one day").
    pub combine: bool,
    /// Include the Greedy baseline (quadratic; skipped on the largest
    /// sweep sizes).
    pub greedy: bool,
}

/// Runs every selected approach on a data set with a shared split.
pub fn run_all(
    dataset: &Dataset,
    selection: ApproachSelection,
    fit: FitOptions,
    alpha_limit: f64,
) -> Vec<ApproachRow> {
    let split = CubeSplit::new(dataset, 0.8);
    let opts = BaselineOptions {
        spec: None,
        fit: fit.clone(),
    };
    let mut rows = vec![
        ApproachRow::from(direct(dataset, &split, &opts)),
        ApproachRow::from(bottom_up(dataset, &split, &opts)),
        ApproachRow::from(top_down(dataset, &split, &opts)),
    ];
    if selection.combine {
        rows.push(ApproachRow::from(combine(dataset, &split, &opts)));
    }
    if selection.greedy {
        rows.push(ApproachRow::from(greedy(dataset, &split, &opts)));
    }
    rows.push(run_advisor(dataset, advisor_options(alpha_limit, fit)));
    rows
}

/// Prints a comparison table in the layout of Fig. 7 (error bars + model
/// count bars).
pub fn print_table(title: &str, rows: &[ApproachRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<12} {:>10} {:>9} {:>12} {:>12}",
        "approach", "error", "#models", "cost", "wall time"
    );
    for r in rows {
        println!(
            "{:<12} {:>10.4} {:>9} {:>12.3?} {:>12.3?}",
            r.name, r.error, r.models, r.cost, r.wall_time
        );
    }
}

/// Parses `--scale <n>` / `--full` style flags shared by the figure
/// binaries. Returns `(scale, full, extra_args)`.
pub fn parse_scale_args() -> (usize, bool, Vec<String>) {
    let mut scale = 1usize;
    let mut full = false;
    let mut extra = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs an integer argument");
            }
            "--full" => full = true,
            other => extra.push(other.to_string()),
        }
    }
    (scale.max(1), full, extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_datagen::tourism_proxy;

    #[test]
    fn run_all_produces_expected_approaches() {
        let ds = tourism_proxy(1);
        let rows = run_all(
            &ds,
            ApproachSelection {
                combine: true,
                greedy: true,
            },
            FitOptions::default(),
            1.0,
        );
        let names: Vec<&str> = rows.iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec![
                "direct",
                "bottom-up",
                "top-down",
                "combine",
                "greedy",
                "advisor"
            ]
        );
        for r in &rows {
            assert!(r.error.is_finite() && r.error >= 0.0);
        }
    }

    #[test]
    fn advisor_row_has_reasonable_shape() {
        let ds = tourism_proxy(2);
        let row = run_advisor(&ds, advisor_options(1.0, FitOptions::default()));
        assert_eq!(row.name, "advisor");
        assert!(row.models >= 1);
        assert!(row.models < ds.node_count());
    }
}
