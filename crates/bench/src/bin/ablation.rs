//! Quality ablations of the advisor's design choices (see DESIGN.md §5).
//!
//! Each ablation removes or varies one design decision and reports the
//! resulting error / model count on the real-data proxies:
//!
//! * **indicators** — λ = 0 (historical error only) vs λ = 1 (combined)
//!   vs λ = 4 (similarity-heavy): validates combining both ingredients;
//! * **gamma** — adaptive γ vs fixed γ = 0: validates the timing feedback
//!   loop;
//! * **multisource** — 0 vs 8 vs 32 asynchronous multi-source rounds per
//!   iteration: validates the §IV-C.2 component;
//! * **seed** — with vs without the top-node seed model.
//!
//! Usage: `cargo run -p fdc-bench --release --bin ablation`

use fdc_bench::run_advisor;
use fdc_core::AdvisorOptions;
use fdc_cube::Dataset;
use fdc_datagen::{sales_proxy, tourism_proxy};

fn datasets() -> Vec<(&'static str, Dataset)> {
    vec![("tourism", tourism_proxy(1)), ("sales", sales_proxy(1))]
}

fn report(tag: &str, name: &str, options: AdvisorOptions, ds: &Dataset) {
    let row = run_advisor(ds, options);
    println!(
        "{tag:<14} {name:<9} {:>10.4} {:>9} {:>12.3?}",
        row.error, row.models, row.wall_time
    );
}

fn main() {
    let _obs = fdc_bench::obs_session();
    println!(
        "{:<14} {:<9} {:>10} {:>9} {:>12}",
        "ablation", "dataset", "error", "#models", "wall time"
    );

    for (name, ds) in datasets() {
        for lambda in [0.0, 1.0, 4.0] {
            report(
                &format!("lambda={lambda}"),
                name,
                AdvisorOptions {
                    lambda,
                    ..AdvisorOptions::default()
                },
                &ds,
            );
        }
    }

    for (name, ds) in datasets() {
        report(
            "gamma=adaptive",
            name,
            AdvisorOptions {
                adaptive_gamma: true,
                ..AdvisorOptions::default()
            },
            &ds,
        );
        report(
            "gamma=fixed",
            name,
            AdvisorOptions {
                adaptive_gamma: false,
                ..AdvisorOptions::default()
            },
            &ds,
        );
    }

    for (name, ds) in datasets() {
        for steps in [0usize, 8, 32] {
            report(
                &format!("multisrc={steps}"),
                name,
                AdvisorOptions {
                    multisource_steps: steps,
                    ..AdvisorOptions::default()
                },
                &ds,
            );
        }
    }

    for (name, ds) in datasets() {
        for seed_top in [true, false] {
            report(
                &format!("seedtop={seed_top}"),
                name,
                AdvisorOptions {
                    seed_top_model: seed_top,
                    ..AdvisorOptions::default()
                },
                &ds,
            );
        }
    }

    fdc_bench::emit_metrics("ablation");
}
