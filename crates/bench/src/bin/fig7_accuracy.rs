//! Regenerates **Fig. 7 (a–d): Accuracy Analysis** (§VI-B).
//!
//! For each data set — Tourism, Sales, Energy (synthetic proxies, see
//! DESIGN.md) and a GenX cube — every approach is run and its overall
//! forecast error (dark bars in the paper) and model count (light bars)
//! are reported.
//!
//! Usage: `cargo run -p fdc-bench --release --bin fig7_accuracy
//! [--scale n] [--full]`
//!
//! The GenX size defaults to 200 base series (`--scale` multiplies it);
//! `--full` uses the paper's 10,000 — expect a long run dominated by the
//! Greedy baseline, exactly as in the paper. Combine is skipped on GenX
//! cubes above 1,000 series, as the paper skipped it for Gen10k.

use fdc_bench::{parse_scale_args, print_table, run_all, ApproachSelection};
use fdc_datagen::{energy_proxy, generate_cube, sales_proxy, tourism_proxy, GenSpec};
use fdc_forecast::FitOptions;

fn main() {
    let _obs = fdc_bench::obs_session();
    let (scale, full, _) = parse_scale_args();
    let fit = FitOptions::default();
    let everything = ApproachSelection {
        combine: true,
        greedy: true,
    };

    let tourism = tourism_proxy(1);
    print_table(
        "Fig. 7(a) Tourism (32 quarterly base series)",
        &run_all(&tourism, everything, fit.clone(), 1.0),
    );

    let sales = sales_proxy(1);
    print_table(
        "Fig. 7(b) Sales (27 monthly base series)",
        &run_all(&sales, everything, fit.clone(), 1.0),
    );

    let energy = energy_proxy(1, 240);
    print_table(
        "Fig. 7(c) Energy (86 hourly base series)",
        &run_all(&energy, everything, fit.clone(), 1.0),
    );

    let gen_size = if full { 10_000 } else { 200 * scale };
    let cube = generate_cube(&GenSpec::new(gen_size, 48, 1));
    let selection = ApproachSelection {
        // The paper: "We did not execute the Combine approach for the
        // Syn10k data set due to the long execution time (> one day)."
        combine: gen_size <= 1_000,
        greedy: gen_size <= 2_000,
    };
    print_table(
        &format!("Fig. 7(d) Gen{gen_size} (synthetic SARIMA cube)"),
        &run_all(&cube.dataset, selection, fit, 1.0),
    );

    fdc_bench::emit_metrics("fig7_accuracy");
}
