//! Prices the distributed-tracing machinery on the hot insert path.
//!
//! Three configurations run in interleaved rounds over the same engine
//! so clock drift, allocator state, and pending-buffer growth hit each
//! one equally:
//!
//! - **off** — spans globally disabled ([`fdc_obs::set_spans_enabled`]):
//!   every instrumentation site costs one relaxed atomic load. The
//!   baseline.
//! - **sampled** — the production shape: spans enabled, a
//!   [`fdc_obs::TraceCollector`] installed, every operation under a
//!   root [`TraceContext`] whose sampled flag carries a 1-in-64
//!   head-sampling decision (what ingress produces). Unsampled
//!   contexts skip span collection entirely, so this prices the
//!   *residual* cost of leaving tracing on.
//! - **always** — every operation under a sampled context, the worst
//!   case (`trace_sample = 1.0` with a collector attached).
//!
//! Each operation is one [`BATCH_ROWS`]-row `insert_batch` — the shape
//! of a coalesced flush, the hot path the span sites sit on.
//!
//! The best (minimum) per-round ns/op feeds the overhead ratios in
//! `BENCH_trace.json` — for a CPU-bound loop the floor is the stable
//! statistic under noisy-neighbour CI runners. `--strict` exits
//! non-zero when the *sampled* configuration costs more than 3 % over
//! baseline — the contract that keeps tracing on by default in
//! production.
//!
//! Usage: `cargo run -p fdc-bench --release --bin trace_overhead --
//! [--ops n] [--rounds n] [--strict] [--json-out FILE]`

use fdc_core::{Advisor, AdvisorOptions};
use fdc_datagen::{generate_cube, GenSpec};
use fdc_f2db::F2db;
use fdc_obs::TraceContext;
use std::time::Instant;

/// Strict-mode bound on the sampled configuration's overhead.
const MAX_SAMPLED_OVERHEAD: f64 = 0.03;

/// Ingress head-sampling rate mirrored by the `sampled` configuration.
const SAMPLE_RATE: u64 = 64;

/// Rows per measured insert — the shape of one coalesced flush batch
/// under concurrent load (a busy coalescing window gathers a few full
/// rounds of a small cube).
const BATCH_ROWS: usize = 128;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Off,
    Sampled,
    Always,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Off => "off",
            Mode::Sampled => "sampled",
            Mode::Always => "always",
        }
    }
}

/// Best observed round. For a CPU-bound loop the minimum is the
/// stable statistic: every slowdown source (frequency scaling, a
/// noisy-neighbour container, a GC'd runtime next door) only ever adds
/// time, so the floor converges on the true cost while means wander.
fn best(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let mut ops = 4_000u64;
    let mut rounds = 40usize;
    let mut strict = false;
    let mut json_out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--ops" => ops = it.next().expect("--ops needs n").parse().expect("--ops"),
            "--rounds" => {
                rounds = it
                    .next()
                    .expect("--rounds needs n")
                    .parse()
                    .expect("--rounds")
            }
            "--strict" => strict = true,
            "--json-out" => json_out = Some(it.next().expect("--json-out needs a path")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    // A small advised engine; all inserts land on one base node so no
    // round ever completes — the measured op stays pure buffered-insert
    // plus instrumentation, with no model-update spikes.
    let dataset = generate_cube(&GenSpec::new(8, 32, 7)).dataset;
    let outcome = Advisor::new(&dataset, AdvisorOptions::default())
        .expect("advisor")
        .run();
    let node = dataset.graph().base_nodes()[0];
    let db = F2db::load(dataset, &outcome.configuration).expect("load");

    let modes = [Mode::Off, Mode::Sampled, Mode::Always];
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); modes.len()];
    let mut spans_recorded = 0usize;
    let mut value_seq = 0u64;
    println!("trace overhead: {rounds} interleaved round(s) x {ops} insert op(s) per mode");
    for _ in 0..rounds {
        for (m, &mode) in modes.iter().enumerate() {
            fdc_obs::set_spans_enabled(mode != Mode::Off);
            // A fresh collector per round keeps its buffer small and
            // identical across rounds.
            let collector = (mode != Mode::Off).then(|| {
                let c = fdc_obs::TraceCollector::new();
                fdc_obs::set_subscriber(c.clone());
                c
            });
            let started = Instant::now();
            let mut batch = vec![(node, 0.0f64); BATCH_ROWS];
            for op in 0..ops {
                // Mirror ingress: every operation runs under a context
                // whose sampled flag carries the head-sampling decision
                // (spans-off mode has no context at all).
                let ctx = match mode {
                    Mode::Off => None,
                    Mode::Sampled => Some(TraceContext::root(op % SAMPLE_RATE == 0)),
                    Mode::Always => Some(TraceContext::root(true)),
                };
                let _ctx = ctx.map(fdc_obs::trace::activate);
                for row in batch.iter_mut() {
                    value_seq += 1;
                    row.1 = 1_000_000.0 + value_seq as f64 * 0.25;
                }
                db.insert_batch(&batch).expect("insert");
            }
            let ns_per_op = started.elapsed().as_nanos() as f64 / ops as f64;
            samples[m].push(ns_per_op);
            if let Some(c) = collector {
                spans_recorded += c.len();
                fdc_obs::take_subscriber();
            }
        }
    }
    fdc_obs::set_spans_enabled(true);

    // Overheads come from *paired* per-round ratios: each round runs
    // the three configurations back to back within milliseconds, so a
    // slow patch of machine hits all of them and cancels out of the
    // ratio; the median over rounds then shrugs off the odd bad pair.
    // The ns/op floors are reported alongside for absolute scale.
    let floors: Vec<f64> = samples.iter().map(|s| best(s)).collect();
    let overhead = |m: usize| {
        let mut ratios: Vec<f64> = samples[m]
            .iter()
            .zip(&samples[0])
            .map(|(traced, off)| traced / off - 1.0)
            .collect();
        median(&mut ratios)
    };
    for (m, mode) in modes.iter().enumerate() {
        println!(
            "{:>8}: {:>8.1} ns/op floor  (paired overhead {:+.2}%)",
            mode.label(),
            floors[m],
            overhead(m) * 100.0
        );
    }
    println!("spans recorded across traced rounds: {spans_recorded}");
    assert!(
        spans_recorded > 0,
        "the traced configurations recorded no spans — the machinery is wired wrong"
    );

    if let Some(path) = json_out {
        let summary = format!(
            "{{\"suite\":\"trace-overhead\",\"ops_per_round\":{ops},\"rounds\":{rounds},\
             \"ns_per_op\":{{\"off\":{:.1},\"sampled\":{:.1},\"always\":{:.1}}},\
             \"overhead\":{{\"sampled\":{:.4},\"always\":{:.4}}},\
             \"spans_recorded\":{spans_recorded},\"strict_bound_sampled\":{MAX_SAMPLED_OVERHEAD}}}",
            floors[0],
            floors[1],
            floors[2],
            overhead(1),
            overhead(2),
        );
        std::fs::write(&path, &summary).expect("write --json-out");
        println!("wrote {path}");
    }

    if strict {
        let sampled = overhead(1);
        if sampled > MAX_SAMPLED_OVERHEAD {
            eprintln!(
                "strict: FAILED — sampled tracing costs {:.2}% over baseline \
                 (bound {:.0}%)",
                sampled * 100.0,
                MAX_SAMPLED_OVERHEAD * 100.0
            );
            std::process::exit(1);
        }
        println!(
            "strict: ok (sampled overhead {:+.2}% <= {:.0}%)",
            sampled * 100.0,
            MAX_SAMPLED_OVERHEAD * 100.0
        );
    }
}
