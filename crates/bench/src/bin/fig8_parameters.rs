//! Regenerates **Fig. 8 (a–f): Parameter Analysis** (§VI-C).
//!
//! Sub-experiments (pass one as an argument, default runs all):
//!
//! * `corr`  — Fig. 8(a): correlation between indicator values and real
//!   forecast errors on Sales and Tourism;
//! * `isize` — Fig. 8(b): configuration error vs indicator size `|I|`;
//! * `gamma` — Fig. 8(c,d): runtime and error vs (artificially inflated)
//!   model creation time, exercising the γ feedback loop;
//! * `alpha` — Fig. 8(e,f): error and relative model count vs α.
//!
//! Usage: `cargo run -p fdc-bench --release --bin fig8_parameters
//! [--scale n] [corr|isize|gamma|alpha]`

use fdc_bench::{advisor_options, parse_scale_args, run_advisor};
use fdc_core::{indicator, Advisor};
use fdc_cube::{Configuration, ConfiguredModel, CubeSplit, Dataset};
use fdc_datagen::{energy_proxy, generate_cube, sales_proxy, tourism_proxy, GenSpec};
use fdc_forecast::{FitOptions, ModelSpec};
use fdc_hierarchical::{direct, greedy, top_down, BaselineOptions};
use std::time::Instant;

fn datasets(scale: usize) -> Vec<(&'static str, Dataset)> {
    vec![
        ("tourism", tourism_proxy(1)),
        ("sales", sales_proxy(1)),
        ("energy", energy_proxy(1, 240)),
        (
            "genx",
            generate_cube(&GenSpec::new(100 * scale, 48, 1)).dataset,
        ),
    ]
}

/// Fig. 8(a): indicator vs real derivation error, sampled pairs.
fn correlation() {
    println!("\n== Fig. 8(a) Correlation indicator <-> real error ==");
    println!(
        "{:<9} {:>6} {:>6} {:>11} {:>11}",
        "dataset", "src", "tgt", "indicator", "real_err"
    );
    for (name, ds) in [("sales", sales_proxy(1)), ("tourism", tourism_proxy(1))] {
        let split = CubeSplit::new(&ds, 0.8);
        // λ = 0: the historical-error ingredient is the direct estimate of
        // the scheme error (same scale as the measured SMAPE — the paper's
        // Fig. 8(a) diagonal); the similarity ingredient is an auxiliary
        // stability penalty and would shift the scale.
        let mut opts = indicator::IndicatorOptions::new(ds.node_count(), split.train_len());
        opts.lambda = 0.0;
        let spec = ModelSpec::default_for_period(ds.series(0).granularity().seasonal_period());
        let fit = FitOptions::default();
        let mut pairs = Vec::new();
        // Sample: every 3rd source over all nodes, 4 targets each.
        for s in (0..ds.node_count()).step_by(3) {
            let Ok(model) = ConfiguredModel::fit(&split, s, &spec, &fit) else {
                continue;
            };
            let mut probe = Configuration::new(ds.node_count());
            probe.insert_model(s, model);
            for t in (0..ds.node_count()).step_by(ds.node_count() / 8 + 1) {
                if s == t {
                    continue;
                }
                let ind = indicator::scheme_indicator(&ds, s, t, &opts);
                if let Some(err) = probe.scheme_error(&ds, &split, &[s], t) {
                    pairs.push((s, t, ind, err));
                }
            }
        }
        fn pearson(pts: &[(f64, f64)]) -> f64 {
            let n = pts.len() as f64;
            if n < 2.0 {
                return f64::NAN;
            }
            let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
            let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
            let cov = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>() / n;
            let sx = (pts.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>() / n).sqrt();
            let sy = (pts.iter().map(|p| (p.1 - my).powi(2)).sum::<f64>() / n).sqrt();
            cov / (sx * sy)
        }
        for (s, t, ind, err) in &pairs {
            println!("{name:<9} {s:>6} {t:>6} {ind:>11.4} {err:>11.4}");
        }
        let pooled: Vec<(f64, f64)> = pairs.iter().map(|p| (p.2, p.3)).collect();
        // Per-source correlation controls for the quality of the source's
        // own model — it measures what the advisor actually relies on:
        // whether a local indicator array ranks targets correctly.
        let mut per_source = Vec::new();
        let mut sources: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        sources.dedup();
        for src in sources {
            let pts: Vec<(f64, f64)> = pairs
                .iter()
                .filter(|p| p.0 == src)
                .map(|p| (p.2, p.3))
                .collect();
            let r = pearson(&pts);
            if r.is_finite() {
                per_source.push(r);
            }
        }
        let mean_per_source = per_source.iter().sum::<f64>() / per_source.len().max(1) as f64;
        println!(
            "-- {name}: {} pairs, pooled Pearson r = {:.3}, mean per-source r = {:.3}",
            pairs.len(),
            pearson(&pooled),
            mean_per_source
        );
    }
}

/// Fig. 8(b): error vs indicator size.
fn indicator_size(scale: usize) {
    println!("\n== Fig. 8(b) Influence of |I| ==");
    println!("{:<9} {:>8} {:>10}", "dataset", "|I| (%)", "error");
    for (name, ds) in datasets(scale) {
        for pct in [20usize, 40, 60, 80, 100] {
            let size = (ds.node_count() * pct / 100).max(2);
            let mut options = advisor_options(1.0, FitOptions::default());
            options.indicator_size = Some(size);
            let row = run_advisor(&ds, options);
            println!("{name:<9} {pct:>8} {:>10.4}", row.error);
        }
    }
}

/// Fig. 8(c,d): runtime and error vs artificial model creation time.
fn gamma(scale: usize) {
    println!("\n== Fig. 8(c) Influence of gamma — runtime (Sales) ==");
    println!("{:<12} {:>12} {:>12}", "approach", "model_us", "runtime");
    let sales = sales_proxy(1);
    let split = CubeSplit::new(&sales, 0.8);
    // The paper varies artificial model creation time 0–60 s; scaled down
    // to microsecond budgets so the full curve regenerates quickly.
    let costs_us = [0u64, 2_000, 5_000, 10_000, 20_000];
    for &cost in &costs_us {
        let fit = FitOptions {
            artificial_cost_us: cost,
            ..FitOptions::default()
        };
        let opts = BaselineOptions {
            spec: None,
            fit: fit.clone(),
        };
        for (name, time) in [
            ("direct", {
                let t = Instant::now();
                direct(&sales, &split, &opts);
                t.elapsed()
            }),
            ("top-down", {
                let t = Instant::now();
                top_down(&sales, &split, &opts);
                t.elapsed()
            }),
            ("greedy", {
                let t = Instant::now();
                greedy(&sales, &split, &opts);
                t.elapsed()
            }),
            ("advisor", {
                let t = Instant::now();
                run_advisor(&sales, advisor_options(1.0, fit.clone()));
                t.elapsed()
            }),
        ] {
            println!("{name:<12} {cost:>12} {time:>12.3?}");
        }
    }

    println!("\n== Fig. 8(d) Influence of gamma — error ==");
    println!("{:<9} {:>12} {:>10}", "dataset", "model_us", "error");
    for (name, ds) in datasets(scale) {
        for &cost in &costs_us {
            let fit = FitOptions {
                artificial_cost_us: cost,
                ..FitOptions::default()
            };
            let row = run_advisor(&ds, advisor_options(1.0, fit));
            println!("{name:<9} {cost:>12} {:>10.4}", row.error);
        }
    }
}

/// Fig. 8(e,f): error and relative model count vs α, read from the α
/// schedule history of a single full advisor run per data set.
fn alpha(scale: usize) {
    println!("\n== Fig. 8(e,f) Influence of alpha ==");
    println!(
        "{:<9} {:>7} {:>10} {:>12}",
        "dataset", "alpha", "error", "models (%)"
    );
    for (name, ds) in datasets(scale) {
        let mut advisor = Advisor::new(&ds, advisor_options(1.0, FitOptions::default()))
            .expect("advisor construction");
        let outcome = advisor.run();
        for grid in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
            // Last iteration whose α was still within the grid point.
            let snap = outcome.history.iter().rfind(|s| s.alpha <= grid + 1e-9);
            let (err, models) = match snap {
                Some(s) => (s.error, s.model_count),
                None => (outcome.history.first().map_or(1.0, |s| s.error), 1),
            };
            println!(
                "{name:<9} {grid:>7.1} {err:>10.4} {:>12.1}",
                100.0 * models as f64 / ds.node_count() as f64
            );
        }
    }
}

fn main() {
    let _obs = fdc_bench::obs_session();
    let (scale, _full, extra) = parse_scale_args();
    let which = extra.first().map(|s| s.as_str()).unwrap_or("all");
    if matches!(which, "corr" | "all") {
        correlation();
    }
    if matches!(which, "isize" | "all") {
        indicator_size(scale);
    }
    if matches!(which, "gamma" | "all") {
        gamma(scale);
    }
    if matches!(which, "alpha" | "all") {
        alpha(scale);
    }
    fdc_bench::emit_metrics("fig8_parameters");
}
