//! Concurrent forecast-query throughput: sharded engine vs a single
//! global lock.
//!
//! The sharded `F²DB` engine takes `&self` everywhere, so reader
//! threads query it directly and only contend on the catalog shard
//! holding the models their queries reference. The baseline wraps the
//! very same engine in one `Mutex` — the layout every `&mut self` API
//! forces on its callers — so every call serializes on a global lock.
//!
//! Two scenarios, both running the identical pre-generated query log:
//!
//! * `warm_reads` — pure reader fan-out over a fully-valid catalog,
//!   measured over a fixed wall-clock window. This scales with
//!   physical cores; on a single-core host both engines top out at the
//!   same CPU-bound ceiling and the interesting number is that
//!   sharding costs nothing.
//! * `reestimation` — the headline: every model is invalidated (as a
//!   batched time advance would), then the reader threads run the
//!   query log to completion, lazily re-estimating the models they
//!   reference on the way (§V-B). Re-fit cost is modeled by
//!   `FitOptions::artificial_stall_us` — an I/O-style stall, as inside
//!   the DBMS a re-fit scans the stored base history while the CPU
//!   sits idle. Under the global lock the stalls serialize: every
//!   reader waits out every re-fit. The sharded single-flight path
//!   lets re-fits of different models overlap and only blocks readers
//!   that reference the model being re-fit, so recovery throughput
//!   scales with the thread count — on any core count, because
//!   overlapping stalls need no extra cores.
//!
//! Usage: `cargo run -p fdc-bench --release --bin concurrent_qps
//! [--scale n]`. Results land in the fenced `--- metrics ---` JSON
//! (gauges `bench.concurrent_qps.*`).

use fdc_bench::{emit_metrics, QueryWorkload};
use fdc_core::{Advisor, AdvisorOptions};
use fdc_datagen::{generate_cube, GenSpec};
use fdc_f2db::F2db;
use fdc_forecast::FitOptions;
use fdc_obs::names;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Records one measured QPS sample into the labeled gauge families
/// (`bench.concurrent_qps.qps{phase,engine,threads}` and the per-phase
/// speedup family).
fn record_qps(phase: &str, engine: &str, threads: usize, qps: f64) {
    let t = threads.to_string();
    fdc_obs::gauge_with(
        names::BENCH_CONCURRENT_QPS,
        &[("phase", phase), ("engine", engine), ("threads", &t)],
    )
    .set(qps as i64);
}

fn record_speedup(phase: &str, threads: usize, speedup: f64) {
    let t = threads.to_string();
    fdc_obs::gauge_with(
        names::BENCH_CONCURRENT_SPEEDUP_X100,
        &[("phase", phase), ("threads", &t)],
    )
    .set((speedup * 100.0) as i64);
}

/// Wall-clock window of the warm-read scenario.
const WINDOW: Duration = Duration::from_millis(400);

/// Stall per model re-fit in the re-estimation scenario (2 ms, the
/// middle of the paper's Fig. 8(c) cost sweep).
const REFIT_STALL_US: u64 = 2_000;

/// Invalidate-all/recover rounds per re-estimation measurement.
const ROUNDS: usize = 3;

/// Runs `threads` readers over `log` for [`WINDOW`] and returns total
/// queries per second. Each thread cycles through its own slice of the
/// pre-generated log, so both engines execute identical SQL.
fn windowed_qps(threads: usize, log: &[String], query: impl Fn(&str) + Sync) -> f64 {
    let stop = AtomicBool::new(false);
    let counts: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let stop = &stop;
                let query = &query;
                scope.spawn(move || {
                    let mine: Vec<&String> = log.iter().skip(t).step_by(threads).collect();
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for q in &mine {
                            query(q);
                            n += 1;
                        }
                    }
                    n
                })
            })
            .collect();
        std::thread::sleep(WINDOW);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    counts.iter().sum::<u64>() as f64 / WINDOW.as_secs_f64()
}

/// Fixed-work recovery: [`ROUNDS`] times, `invalidate` everything and
/// run the whole log once, partitioned over `threads`. Returns queries
/// per second of wall time (lazy re-fits included).
fn recovery_qps(
    threads: usize,
    log: &[String],
    invalidate: impl Fn(),
    query: impl Fn(&str) + Sync,
) -> f64 {
    let mut total = Duration::ZERO;
    for _ in 0..ROUNDS {
        invalidate();
        let start = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let query = &query;
                scope.spawn(move || {
                    for q in log.iter().skip(t).step_by(threads) {
                        query(q);
                    }
                });
            }
        });
        total += start.elapsed();
    }
    (ROUNDS * log.len()) as f64 / total.as_secs_f64()
}

fn main() {
    let _obs = fdc_bench::obs_session();
    let (scale, _, _) = fdc_bench::parse_scale_args();
    let cube = generate_cube(&GenSpec::new(64 * scale, 48, 7));
    let outcome = Advisor::new(&cube.dataset, AdvisorOptions::default())
        .expect("advisor construction")
        .run();

    let fit = FitOptions {
        artificial_stall_us: REFIT_STALL_US,
        ..FitOptions::default()
    };
    let sharded = F2db::load(cube.dataset.clone(), &outcome.configuration)
        .expect("load")
        .with_fit_options(fit.clone());
    let single = Mutex::new(
        F2db::load(cube.dataset.clone(), &outcome.configuration)
            .expect("load")
            .with_fit_options(fit),
    );

    // Pre-generated query log shared by both engines and all threads.
    let mut wl = QueryWorkload::new(42);
    let log: Vec<String> = (0..256)
        .map(|_| wl.next_query(cube.dataset.graph()))
        .collect();
    // Warm both engines so every referenced model starts out valid.
    for q in &log {
        sharded.query(q).expect("query");
        single.lock().unwrap().query(q).expect("query");
    }

    println!(
        "== Concurrent forecast-query throughput ({} nodes, {} models, {} shards, {} cores) ==",
        cube.dataset.node_count(),
        sharded.model_count(),
        sharded.shard_count(),
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );

    println!("\n-- warm_reads (valid catalog, {WINDOW:?} window) --");
    println!(
        "{:<9} {:>14} {:>14} {:>9}",
        "threads", "single-lock", "sharded", "speedup"
    );
    for threads in [1usize, 2, 4, 8] {
        let qps_single = windowed_qps(threads, &log, |q| {
            single.lock().unwrap().query(q).expect("query");
        });
        let qps_sharded = windowed_qps(threads, &log, |q| {
            sharded.query(q).expect("query");
        });
        let speedup = qps_sharded / qps_single;
        println!("{threads:<9} {qps_single:>12.0}/s {qps_sharded:>12.0}/s {speedup:>8.2}x");
        record_qps("warm_reads", "single_lock", threads, qps_single);
        record_qps("warm_reads", "sharded", threads, qps_sharded);
        record_speedup("warm_reads", threads, speedup);
    }

    println!("\n-- reestimation (invalidate all, {REFIT_STALL_US} µs stall per re-fit) --");
    println!(
        "{:<9} {:>14} {:>14} {:>9}",
        "threads", "single-lock", "sharded", "speedup"
    );
    for threads in [1usize, 2, 4, 8] {
        let qps_single = recovery_qps(
            threads,
            &log,
            || {
                single.lock().unwrap().invalidate_all();
            },
            |q| {
                single.lock().unwrap().query(q).expect("query");
            },
        );
        let qps_sharded = recovery_qps(
            threads,
            &log,
            || {
                sharded.invalidate_all();
            },
            |q| {
                sharded.query(q).expect("query");
            },
        );
        let speedup = qps_sharded / qps_single;
        println!("{threads:<9} {qps_single:>12.0}/s {qps_sharded:>12.0}/s {speedup:>8.2}x");
        record_qps("reestimation", "single_lock", threads, qps_single);
        record_qps("reestimation", "sharded", threads, qps_sharded);
        record_speedup("reestimation", threads, speedup);
    }
    emit_metrics("concurrent_qps");
}
