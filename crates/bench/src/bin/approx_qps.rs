//! Prices sampled aggregate forecasting at high cardinality — the
//! headline contract of the sampling plane: **aggregate forecasts over
//! a million base cells in single-digit milliseconds**, with honest
//! confidence intervals.
//!
//! Two measurements, one binary:
//!
//! - **Latency** — a heavy-tailed cube at `--cells` (default 10⁶) base
//!   cells, a stratified plane attached, then `--queries` aggregate
//!   forecast queries through the full engine path
//!   ([`F2db::query_with`]). Reported as p50/p95 wall-clock per query.
//!   An exact answer would fold 10⁶ per-cell forecasts per query;
//!   the plane folds a few hundred sampled ones.
//! - **Coverage** — the intervals must mean what they say. At a reduced
//!   cell count (exact oracles over 10⁶ cells per trial would dominate
//!   the run), `--trials` independently seeded planes each forecast the
//!   cube total; a trial *hits* when the oracle — the exact sum of
//!   per-cell model forecasts, the quantity the estimator targets —
//!   lies inside the interval on every step. Empirical coverage must
//!   stay within `EPSILON` of the nominal confidence.
//!
//! Everything is seeded: two runs of the same build produce identical
//! estimates, intervals, and coverage (latency numbers move, verdicts
//! don't).
//!
//! `--strict` exits non-zero when p95 exceeds [`MAX_P95_MS`] or
//! coverage falls below nominal − [`EPSILON`] — the CI gate
//! (`approx-smoke`) that keeps the contract honest.
//!
//! Usage: `cargo run -p fdc-bench --release --bin approx_qps --
//! [--cells n] [--queries n] [--trials n] [--budget n] [--strict]
//! [--json-out FILE]`

use fdc_approx::{ApproxOptions, ApproxPlane, ApproxQuerySpec};
use fdc_cube::{Configuration, Dataset};
use fdc_datagen::{generate_highcard, HighCardSpec};
use fdc_f2db::F2db;
use fdc_forecast::{FitOptions, ModelSpec};
use std::time::Instant;

/// Strict-mode bound on the p95 query latency, in milliseconds.
const MAX_P95_MS: f64 = 10.0;

/// Nominal confidence of the coverage trials.
const CONFIDENCE: f64 = 0.90;

/// Strict-mode slack under the nominal confidence.
const EPSILON: f64 = 0.10;

/// Forecast horizon of every query and trial.
const HORIZON: usize = 3;

const SQL: &str = "SELECT time, SUM(v) FROM facts GROUP BY time AS OF now() + '3 steps'";

fn spec_at(cells: usize, seed: u64) -> HighCardSpec {
    HighCardSpec {
        // Groups sized so every group stays under the plane's
        // population floor: only the cube total answers sampled, the
        // worst-case (largest-population) aggregate.
        groups: (cells / 100).max(1),
        length: 16,
        ..HighCardSpec::new(cells, seed)
    }
}

fn plane_options(seed: u64) -> ApproxOptions {
    ApproxOptions {
        strata: 10,
        samples_per_stratum: 64,
        seed,
        confidence: CONFIDENCE,
        spec: Some(ModelSpec::Ses),
        ..ApproxOptions::default()
    }
}

/// The exact oracle: the sum over every base cell of that cell's own
/// model forecast — the population total the estimator scales up to.
fn exact_sum_forecast(ds: &Dataset, fit: &FitOptions) -> Vec<f64> {
    let mut total = vec![0.0f64; HORIZON];
    for &b in ds.graph().base_nodes() {
        let model = ModelSpec::Ses.fit(ds.series(b), fit).expect("oracle fit");
        for (h, v) in model.forecast(HORIZON).iter().enumerate() {
            total[h] += v;
        }
    }
    total
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

fn main() {
    let mut cells = 1_000_000usize;
    let mut queries = 200usize;
    let mut trials = 24usize;
    let mut budget: Option<usize> = None;
    let mut strict = false;
    let mut json_out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cells" => {
                cells = it
                    .next()
                    .expect("--cells needs n")
                    .parse()
                    .expect("--cells")
            }
            "--queries" => {
                queries = it
                    .next()
                    .expect("--queries needs n")
                    .parse()
                    .expect("--queries")
            }
            "--trials" => {
                trials = it
                    .next()
                    .expect("--trials needs n")
                    .parse()
                    .expect("--trials")
            }
            "--budget" => {
                budget = Some(
                    it.next()
                        .expect("--budget needs n")
                        .parse()
                        .expect("--budget"),
                )
            }
            "--strict" => strict = true,
            "--json-out" => json_out = Some(it.next().expect("--json-out needs a path")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    // ---- Latency at full scale ------------------------------------
    println!("generating {cells} base cell(s)…");
    let gen_start = Instant::now();
    let ds = generate_highcard(&spec_at(cells, 0xBE9C)).dataset;
    println!("  generated in {:.1?}", gen_start.elapsed());

    let build_start = Instant::now();
    let empty = Configuration::new(ds.node_count());
    let db = F2db::load(ds, &empty)
        .expect("load")
        .with_approx(plane_options(0xA9B0))
        .expect("plane");
    let build_secs = build_start.elapsed().as_secs_f64();
    println!("  plane attached in {build_secs:.1}s");

    let qspec = ApproxQuerySpec {
        budget,
        ..ApproxQuerySpec::default()
    };
    // One warmup answers lazy one-time costs; measured queries follow.
    let warm = db.query_with(SQL, Some(&qspec)).expect("warmup query");
    let row = &warm.rows[0];
    let meta = row.approx.as_ref().expect("sampled row");
    println!(
        "  estimate {:.3e} ± {:.3e} from {} of {} cells",
        row.values[0].1, meta.ci_half[0], meta.sampled, meta.population
    );

    let mut lat_ms: Vec<f64> = Vec::with_capacity(queries);
    for _ in 0..queries {
        let started = Instant::now();
        let res = db.query_with(SQL, Some(&qspec)).expect("query");
        assert_eq!(res.rows[0].values.len(), HORIZON);
        lat_ms.push(started.elapsed().as_secs_f64() * 1e3);
    }
    lat_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (p50, p95) = (percentile(&lat_ms, 0.50), percentile(&lat_ms, 0.95));
    println!(
        "latency over {queries} aggregate queries at {cells} cells: p50 {p50:.3} ms, p95 {p95:.3} ms"
    );

    // ---- Coverage at reduced scale --------------------------------
    let cov_cells = cells.clamp(1_000, 50_000);
    let cov_ds = generate_highcard(&spec_at(cov_cells, 0xC07E)).dataset;
    let fit = FitOptions::default();
    let truth = exact_sum_forecast(&cov_ds, &fit);
    let top = cov_ds.graph().top_node();
    let mut hits = 0usize;
    for t in 0..trials {
        let plane = ApproxPlane::build(
            &cov_ds,
            Some(&[top]),
            ApproxOptions {
                samples_per_stratum: 24,
                min_population: cov_cells / 2,
                ..plane_options(0x51AB_0000 + t as u64)
            },
        )
        .expect("trial plane");
        let fc = plane
            .estimate(top, HORIZON, &ApproxQuerySpec::default())
            .expect("trial estimate");
        let hit = truth
            .iter()
            .zip(fc.values.iter().zip(&fc.ci_half))
            .all(|(&t, (&est, &half))| (est - t).abs() <= half);
        hits += hit as usize;
    }
    let coverage = hits as f64 / trials as f64;
    println!(
        "coverage at {cov_cells} cells: {hits}/{trials} trials inside the {:.0}% interval ({coverage:.3}; floor {:.3})",
        CONFIDENCE * 100.0,
        CONFIDENCE - EPSILON
    );

    if let Some(path) = json_out {
        let summary = format!(
            "{{\"suite\":\"approx-qps\",\"cells\":{cells},\"queries\":{queries},\
             \"sampled\":{},\"population\":{},\"plane_build_secs\":{build_secs:.2},\
             \"p50_ms\":{p50:.4},\"p95_ms\":{p95:.4},\
             \"coverage\":{{\"cells\":{cov_cells},\"trials\":{trials},\"hits\":{hits},\
             \"empirical\":{coverage:.4},\"confidence\":{CONFIDENCE},\"epsilon\":{EPSILON}}},\
             \"strict_bound_p95_ms\":{MAX_P95_MS}}}",
            meta.sampled, meta.population,
        );
        std::fs::write(&path, &summary).expect("write --json-out");
        println!("wrote {path}");
    }

    if strict {
        let mut failed = false;
        if p95 >= MAX_P95_MS {
            eprintln!("STRICT FAIL: p95 {p95:.3} ms >= {MAX_P95_MS} ms");
            failed = true;
        }
        if coverage < CONFIDENCE - EPSILON {
            eprintln!(
                "STRICT FAIL: coverage {coverage:.3} < {:.3}",
                CONFIDENCE - EPSILON
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("strict bounds hold: p95 < {MAX_P95_MS} ms, coverage >= nominal - epsilon");
    }
}
