//! Regenerates **Fig. 9 (a,b): Runtime Analysis** (§VI-D).
//!
//! * `scalability` — Fig. 9(a): configuration-creation wall time of every
//!   approach over GenX cubes of growing size (advisor at α = 0.5, as in
//!   the paper). Combine and Greedy are dropped beyond their feasibility
//!   limits — the paper observed the same explosion.
//! * `queries` — Fig. 9(b): a GenX configuration (α ∈ {0.5, 1.0}) is
//!   loaded into F²DB and random forecast queries are mixed with inserts
//!   at query/insert ratios 1…10 over 10 time points; the average query
//!   latency is reported.
//!
//! Usage: `cargo run -p fdc-bench --release --bin fig9_runtime
//! [--scale n] [--full] [scalability|queries]`

use fdc_bench::{parse_scale_args, run_all, ApproachSelection, QueryWorkload};
use fdc_core::{Advisor, AdvisorOptions, StopCriteria};
use fdc_datagen::{generate_cube, GenSpec};
use fdc_f2db::F2db;
use fdc_forecast::FitOptions;

/// Fig. 9(a): scalability sweep.
fn scalability(scale: usize, full: bool) {
    println!("\n== Fig. 9(a) Scalability ==");
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>10}",
        "approach", "base", "runtime", "error", "#models"
    );
    let sizes: Vec<usize> = if full {
        vec![1_000, 10_000, 20_000, 30_000, 40_000, 100_000]
    } else {
        [50, 100, 200, 400, 800].iter().map(|s| s * scale).collect()
    };
    for &size in &sizes {
        let cube = generate_cube(&GenSpec::new(size, 48, 1));
        let selection = ApproachSelection {
            combine: size <= 200 * scale.max(1),
            greedy: size <= 400 * scale.max(1),
        };
        // Advisor at α = 0.5: "we set α to 0.5, since the previous
        // experiments have shown an already good forecast accuracy with
        // such choice".
        let rows = run_all(&cube.dataset, selection, FitOptions::default(), 0.5);
        for r in rows {
            println!(
                "{:<12} {:>10} {:>12.3?} {:>10.4} {:>10}",
                r.name, size, r.wall_time, r.error, r.models
            );
        }
    }
}

/// Fig. 9(b): forecast query runtime under mixed query/insert load.
fn queries(scale: usize) {
    println!("\n== Fig. 9(b) Forecast query runtime ==");
    println!(
        "{:<7} {:>7} {:>10} {:>12} {:>14} {:>8}",
        "alpha", "q/i", "queries", "inserts", "avg query", "reest"
    );
    let size = 100 * scale;
    let cube = generate_cube(&GenSpec::new(size, 48, 2));
    for alpha in [0.5f64, 1.0] {
        let outcome = Advisor::new(
            &cube.dataset,
            AdvisorOptions {
                alpha_limit: alpha,
                stop: StopCriteria::default(),
                ..AdvisorOptions::default()
            },
        )
        .expect("advisor construction")
        .run();

        for ratio in 1..=10usize {
            let db = F2db::load(cube.dataset.clone(), &outcome.configuration)
                .expect("configuration loads")
                .with_policy(fdc_f2db::MaintenancePolicy::TimeBased { every: 3 });
            let mut workload = QueryWorkload::new(42);
            let base: Vec<usize> = db.dataset().graph().base_nodes().to_vec();
            // 10 points in time; per point: all base inserts + ratio×|base|
            // random queries against base and aggregated nodes.
            for _ in 0..10 {
                for &b in &base {
                    let v = workload.next_insert_value(50.0, 150.0);
                    db.insert_value(b, v).expect("insert");
                }
                for _ in 0..(ratio * base.len()) {
                    let sql = workload.next_query(db.dataset().graph());
                    db.query(&sql).expect("benchmark query succeeds");
                }
            }
            let stats = db.stats().clone();
            println!(
                "{alpha:<7.1} {ratio:>7} {:>10} {:>12} {:>14.2?} {:>8}",
                stats.queries,
                stats.inserts,
                stats.avg_query_time(),
                stats.reestimations
            );
        }
    }
}

fn main() {
    let _obs = fdc_bench::obs_session();
    let (scale, full, extra) = parse_scale_args();
    let which = extra.first().map(|s| s.as_str()).unwrap_or("all");
    if matches!(which, "scalability" | "all") {
        scalability(scale, full);
    }
    if matches!(which, "queries" | "all") {
        queries(scale);
    }
    fdc_bench::emit_metrics("fig9_runtime");
}
