//! Closed-loop load generator for the `fdc-serve` forecast server.
//!
//! Spawns an in-process server over the tourism-proxy engine and hammers
//! it with N client threads (default 8), each running a seeded mixed
//! workload: ~80 % `POST /query` (SQL from the shared [`QueryWorkload`]
//! generator) and ~20 % `POST /insert` full-round batches, one TCP
//! connection per request — the closed loop a forecast dashboard or an
//! ingest pipeline would present. Reported per route: exact p50/p95/p99
//! latency and total throughput.
//!
//! `--restart` exercises the graceful-drain contract mid-run: the server
//! shuts down under full load (drain queue, flush the coalescing buffer,
//! maintain, persist catalog + pending sidecar), the engine is reopened
//! with `open_catalog` + `restore_pending`, and a fresh server takes
//! over while the clients retry through the gap. The run then proves
//! the headline acceptance number: zero dropped acknowledged writes —
//! every `202` full round is a committed time stamp on one engine or
//! the other.
//!
//! The restarted listener binds a fresh ephemeral port (accepted
//! connections from the first life leave `TIME_WAIT` entries on the old
//! port and `std` cannot set `SO_REUSEADDR`); clients pick up the new
//! address from a shared cell, exactly as they would from a service
//! registry.
//!
//! `--durability` appends three measured phases that price the
//! write-ahead log: an insert-only closed loop against a WAL-backed
//! server with `fsync` on, the same loop with `fsync` off, and a raw
//! concurrent-appender microbench that shows group commit working
//! (fsyncs ≪ appends, mean group size > 1). The numbers land under the
//! `"durability"` key of the JSON summary.
//!
//! Usage: `cargo run -p fdc-bench --release --bin server_qps --
//! [--threads n] [--secs s] [--port p] [--scale n] [--restart]
//! [--durability] [--strict] [--json-out FILE]`. `--strict` exits
//! non-zero on any error response, any dropped acknowledged write, an
//! insert-batch ratio that shows coalescing is not happening, or (with
//! `--durability`) a WAL group-commit size that never exceeded one —
//! the CI smoke contract. `--json-out` writes the summary (the
//! `BENCH_server.json` artifact); the obs snapshot still lands in the
//! usual `--- metrics ---` fence.

use fdc_bench::{emit_metrics, obs_session, parse_scale_args, QueryWorkload};
use fdc_core::{Advisor, AdvisorOptions};
use fdc_datagen::{generate_cube, GenSpec};
use fdc_f2db::F2db;
use fdc_obs::names;
use fdc_rng::Rng;
use fdc_serve::{restore_pending, ServeOptions, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Fraction of requests that are inserts (the rest are queries).
const INSERT_MIX: f64 = 0.2;

/// What one client thread brings home.
#[derive(Default)]
struct ClientStats {
    /// `(route, latency, status)` per completed request; route 0 is
    /// query, 1 is insert.
    samples: Vec<(u8, u64, u16)>,
    /// `202` full-round inserts — each one is exactly one committed
    /// time stamp the server owes us across any restart.
    acked: u64,
    /// Connect/IO failures, expected only inside the restart gap.
    conn_errors: u64,
}

/// One request over a fresh connection; returns `(status, latency_ns)`.
fn http_once(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<(u16, u64)> {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: fdc\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, start.elapsed().as_nanos() as u64))
}

/// The dimension-value strings of every base series, in base-node order.
fn base_dims(db: &F2db) -> Vec<Vec<String>> {
    let ds = db.dataset();
    let g = ds.graph();
    let schema = g.schema();
    g.base_nodes()
        .iter()
        .map(|&n| {
            g.coord(n)
                .values()
                .iter()
                .enumerate()
                .map(|(d, &idx)| schema.dimensions()[d].values()[idx as usize].clone())
                .collect()
        })
        .collect()
}

/// An `/insert` body carrying one value per base series — a full round
/// that commits exactly one time stamp.
fn full_round_body(dims: &[Vec<String>], value: f64) -> String {
    let rows: Vec<String> = dims
        .iter()
        .map(|d| {
            let quoted: Vec<String> = d.iter().map(|v| format!("\"{v}\"")).collect();
            format!("{{\"dims\":[{}],\"value\":{value}}}", quoted.join(","))
        })
        .collect();
    format!("{{\"rows\":[{}]}}", rows.join(","))
}

/// Nearest-rank percentile over an ascending sample vector.
fn pctl(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// What one durability phase measured: an insert-only closed loop
/// against a WAL-backed server, with the fsync either in or out of the
/// acknowledgement path.
struct DurabilityPhase {
    rounds: u64,
    rows: u64,
    secs: f64,
    appends: u64,
    fsyncs: u64,
}

impl DurabilityPhase {
    fn rounds_per_sec(&self) -> f64 {
        self.rounds as f64 / self.secs.max(1e-9)
    }

    fn json(&self) -> String {
        let rows_per_fsync = if self.fsyncs > 0 {
            self.rows as f64 / self.fsyncs as f64
        } else {
            0.0
        };
        format!(
            "{{\"rounds\":{},\"rounds_per_sec\":{:.1},\"rows\":{},\
             \"wal_appends\":{},\"fsyncs\":{},\"rows_per_fsync\":{rows_per_fsync:.2}}}",
            self.rounds,
            self.rounds_per_sec(),
            self.rows,
            self.appends,
            self.fsyncs,
        )
    }
}

/// Runs one insert-only closed loop for `secs` against a fresh engine
/// with a write-ahead log attached (`fsync` as given) and returns what
/// it cost: acked rounds, committed rows, WAL appends and fsyncs.
fn durability_phase(
    label: &str,
    fsync: bool,
    threads: usize,
    secs: f64,
    scale: usize,
    dir: &std::path::Path,
) -> DurabilityPhase {
    let cube = generate_cube(&GenSpec::new(8 * scale, 48, 11));
    let outcome = Advisor::new(&cube.dataset, AdvisorOptions::default())
        .expect("advisor construction")
        .run();
    let db = F2db::load(cube.dataset, &outcome.configuration).expect("load");
    let (db, _report) = db
        .attach_wal(
            &dir.join(format!("wal_{label}")),
            fdc_wal::WalOptions {
                fsync,
                ..fdc_wal::WalOptions::default()
            },
        )
        .expect("attach wal");
    let db = Arc::new(db);
    let dims = base_dims(&db);
    let server = Server::start(
        Arc::clone(&db),
        0,
        ServeOptions {
            workers: 4,
            queue_depth: 256,
            deadline: Duration::from_secs(30),
            ..ServeOptions::default()
        },
    )
    .expect("server start");
    let addr = server.addr();
    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let rounds: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let dims = &dims;
                let stop = &stop;
                scope.spawn(move || {
                    let mut rng = Rng::seed_from_u64(0xD04A_B1E0 + t as u64);
                    let mut acked = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let body = full_round_body(dims, rng.f64_range(10.0, 500.0));
                        if let Ok((202, _)) = http_once(addr, "/insert", &body) {
                            acked += 1;
                        }
                    }
                    acked
                })
            })
            .collect();
        std::thread::sleep(Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let elapsed = started.elapsed().as_secs_f64();
    server.shutdown().expect("durability phase shutdown");
    let w = db.wal_stats().expect("wal stats");
    DurabilityPhase {
        rounds,
        rows: db.stats().inserts as u64,
        secs: elapsed,
        appends: w.appends,
        fsyncs: w.fsyncs,
    }
}

/// Hammers a raw [`fdc_wal::Wal`] with concurrent appenders so the
/// dedicated fsync thread has waiters to coalesce; returns `(appends,
/// fsyncs)` — group commit working means fsyncs ≪ appends.
fn group_commit_micro(dir: &std::path::Path, threads: usize, per_thread: usize) -> (u64, u64) {
    let (wal, _) = fdc_wal::Wal::open(&dir.join("wal_group"), fdc_wal::WalOptions::default())
        .expect("wal open");
    let payload = [0xA5u8; 64];
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                for _ in 0..per_thread {
                    wal.append(&payload).expect("append");
                }
            });
        }
    });
    let s = wal.stats();
    (s.appends, s.fsyncs)
}

fn serve_options(catalog_path: &std::path::Path) -> ServeOptions {
    ServeOptions {
        workers: 4,
        queue_depth: 256,
        coalesce_window: Duration::from_millis(2),
        deadline: Duration::from_secs(30),
        catalog_path: Some(catalog_path.to_path_buf()),
        ..ServeOptions::default()
    }
}

fn main() {
    let _obs = obs_session();
    let (scale, _full, extra) = parse_scale_args();
    let mut threads = 8usize;
    let mut secs = 3.0f64;
    let mut port = 0u16;
    let mut restart = false;
    let mut durability = false;
    let mut strict = false;
    let mut json_out: Option<String> = None;
    let mut it = extra.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs an integer");
            }
            "--secs" => {
                secs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--secs needs a number");
            }
            "--port" => {
                port = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--port needs a port number");
            }
            "--restart" => restart = true,
            "--durability" => durability = true,
            "--strict" => strict = true,
            "--json-out" => json_out = Some(it.next().expect("--json-out needs a path")),
            other => panic!("unknown flag {other} (see the module doc for usage)"),
        }
    }
    let threads = threads.max(1);

    let cube = generate_cube(&GenSpec::new(16 * scale, 48, 7));
    let outcome = Advisor::new(&cube.dataset, AdvisorOptions::default())
        .expect("advisor construction")
        .run();
    let db = Arc::new(F2db::load(cube.dataset, &outcome.configuration).expect("load"));
    let dims = base_dims(&db);
    let graph = db.dataset().graph().clone();
    let initial_len = db.dataset().series_len();

    let dir = std::env::temp_dir().join(format!("fdc_server_qps_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let catalog_path = dir.join("catalog.bin");

    let server =
        Server::start(Arc::clone(&db), port, serve_options(&catalog_path)).expect("server start");
    let addr = Arc::new(Mutex::new(server.addr()));
    println!(
        "== server_qps: {threads} client(s), {secs:.1}s, {}% inserts, serving {} ({} models){} ==",
        (INSERT_MIX * 100.0) as u32,
        server.addr(),
        db.model_count(),
        if restart { ", restart mid-run" } else { "" },
    );

    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let (stats, committed, flushed_rows, engine_inserts, engine_batches) =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let dims = &dims;
                    let graph = &graph;
                    let stop = &stop;
                    let addr = Arc::clone(&addr);
                    scope.spawn(move || {
                        let mut rng = Rng::seed_from_u64(0xBE9C_0000 + t as u64);
                        let mut wl = QueryWorkload::new(0x51E0_0000 + t as u64);
                        let mut stats = ClientStats::default();
                        while !stop.load(Ordering::Relaxed) {
                            let insert = rng.f64_range(0.0, 1.0) < INSERT_MIX;
                            let (route, path, body) = if insert {
                                let v = rng.f64_range(10.0, 500.0);
                                (1u8, "/insert", full_round_body(dims, v))
                            } else {
                                let sql = wl.next_query(graph);
                                (
                                    0u8,
                                    "/query",
                                    format!("{{\"sql\":\"{}\"}}", fdc_serve::json::escape(&sql)),
                                )
                            };
                            let at = *addr.lock().unwrap();
                            match http_once(at, path, &body) {
                                Ok((status, ns)) => {
                                    stats.samples.push((route, ns, status));
                                    if insert && status == 202 {
                                        stats.acked += 1;
                                    }
                                }
                                Err(_) => {
                                    // Restart gap (or shutdown): back off and
                                    // re-read the address.
                                    stats.conn_errors += 1;
                                    std::thread::sleep(Duration::from_millis(2));
                                }
                            }
                        }
                        stats
                    })
                })
                .collect();

            let mut committed = 0u64;
            let mut flushed_rows = 0u64;
            if restart {
                std::thread::sleep(Duration::from_secs_f64(secs / 2.0));
                let report = server.shutdown().expect("graceful shutdown");
                flushed_rows += report.flushed_rows;
                committed += (db.dataset().series_len() - initial_len) as u64;
                // "Restart": reopen the persisted catalog against the
                // drained data set, re-apply the pending sidecar, serve
                // again on a fresh port.
                let db2 = Arc::new(
                    F2db::open_catalog(db.dataset().clone(), &catalog_path).expect("open_catalog"),
                );
                restore_pending(&db2, &catalog_path).expect("restore pending");
                let len2 = db2.dataset().series_len();
                let server2 = Server::start(Arc::clone(&db2), 0, serve_options(&catalog_path))
                    .expect("server restart");
                *addr.lock().unwrap() = server2.addr();
                std::thread::sleep(Duration::from_secs_f64(secs / 2.0));
                stop.store(true, Ordering::Relaxed);
                let stats: Vec<ClientStats> =
                    handles.into_iter().map(|h| h.join().unwrap()).collect();
                let report = server2.shutdown().expect("graceful shutdown");
                flushed_rows += report.flushed_rows;
                committed += (db2.dataset().series_len() - len2) as u64;
                let (s1, s2) = (db.stats(), db2.stats());
                (
                    stats,
                    committed,
                    flushed_rows,
                    s1.inserts + s2.inserts,
                    s1.insert_batches + s2.insert_batches,
                )
            } else {
                std::thread::sleep(Duration::from_secs_f64(secs));
                stop.store(true, Ordering::Relaxed);
                let stats: Vec<ClientStats> =
                    handles.into_iter().map(|h| h.join().unwrap()).collect();
                let report = server.shutdown().expect("graceful shutdown");
                flushed_rows += report.flushed_rows;
                committed += (db.dataset().series_len() - initial_len) as u64;
                let s = db.stats();
                (stats, committed, flushed_rows, s.inserts, s.insert_batches)
            }
        });
    let elapsed = started.elapsed().as_secs_f64();

    // ---- aggregate ----------------------------------------------------
    let acked: u64 = stats.iter().map(|s| s.acked).sum();
    let conn_errors: u64 = stats.iter().map(|s| s.conn_errors).sum();
    let mut by_route: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
    let mut errors = 0u64;
    let mut requests = 0u64;
    for s in &stats {
        for &(route, ns, status) in &s.samples {
            requests += 1;
            by_route[route as usize].push(ns);
            if status >= 400 {
                errors += 1;
            }
        }
    }
    by_route[0].sort_unstable();
    by_route[1].sort_unstable();
    let qps = requests as f64 / elapsed;
    let dropped = acked.saturating_sub(committed);

    let rows_per_batch = if engine_batches > 0 {
        engine_inserts as f64 / engine_batches as f64
    } else {
        0.0
    };

    println!(
        "{requests} requests in {elapsed:.2}s — {qps:.0} req/s, {errors} error response(s), \
         {conn_errors} connect retry(ies)"
    );
    println!(
        "{acked} acked insert round(s), {committed} committed, {dropped} dropped, \
         {flushed_rows} row(s) in drain flushes, {rows_per_batch:.1} rows/engine batch"
    );
    for (name, lats) in [("query", &by_route[0]), ("insert", &by_route[1])] {
        println!(
            "{name:<7} n={:<7} p50 {:>9.1?}  p95 {:>9.1?}  p99 {:>9.1?}",
            lats.len(),
            Duration::from_nanos(pctl(lats, 0.50)),
            Duration::from_nanos(pctl(lats, 0.95)),
            Duration::from_nanos(pctl(lats, 0.99)),
        );
    }

    // ---- durability phases --------------------------------------------
    let mut group_mean = 0.0f64;
    let durability_json = if durability {
        let secs_each = (secs / 4.0).clamp(0.5, 2.0);
        let on = durability_phase("on", true, threads, secs_each, scale, &dir);
        let off = durability_phase("off", false, threads, secs_each, scale, &dir);
        let (g_appends, g_fsyncs) = group_commit_micro(&dir, 16, 250);
        group_mean = if g_fsyncs > 0 {
            g_appends as f64 / g_fsyncs as f64
        } else {
            g_appends as f64
        };
        let on_off_ratio = if on.rounds_per_sec() > 0.0 {
            off.rounds_per_sec() / on.rounds_per_sec()
        } else {
            0.0
        };
        println!(
            "durability: fsync-on {:.0} round/s ({} fsyncs, {:.1} rows/fsync), \
             fsync-off {:.0} round/s — off/on ratio {on_off_ratio:.2}",
            on.rounds_per_sec(),
            on.fsyncs,
            if on.fsyncs > 0 {
                on.rows as f64 / on.fsyncs as f64
            } else {
                0.0
            },
            off.rounds_per_sec(),
        );
        println!(
            "group commit: {g_appends} concurrent appends in {g_fsyncs} fsync(s) — \
             mean group size {group_mean:.1}"
        );
        format!(
            "{{\"fsync_on\":{},\"fsync_off\":{},\"on_off_ratio\":{on_off_ratio:.2},\
             \"group_commit\":{{\"appends\":{g_appends},\"fsyncs\":{g_fsyncs},\
             \"mean_group_size\":{group_mean:.2}}}}}",
            on.json(),
            off.json(),
        )
    } else {
        "null".to_string()
    };

    for (stat, v) in [
        ("qps", qps as i64),
        ("requests", requests as i64),
        ("errors", errors as i64),
        ("acked", acked as i64),
        ("dropped_acked", dropped as i64),
        ("query_p95_us", (pctl(&by_route[0], 0.95) / 1_000) as i64),
        ("insert_p95_us", (pctl(&by_route[1], 0.95) / 1_000) as i64),
    ] {
        fdc_obs::gauge_with(names::BENCH_SERVER_QPS, &[("stat", stat)]).set(v);
    }

    let route_json = |lats: &[u64]| {
        format!(
            "{{\"count\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
            lats.len(),
            pctl(lats, 0.50) / 1_000,
            pctl(lats, 0.95) / 1_000,
            pctl(lats, 0.99) / 1_000,
        )
    };
    let summary = format!(
        "{{\"bench\":\"server_qps\",\"threads\":{threads},\"secs\":{elapsed:.3},\
         \"restart\":{restart},\"requests\":{requests},\"qps\":{qps:.1},\
         \"errors\":{errors},\"conn_retries\":{conn_errors},\
         \"acked_insert_rounds\":{acked},\"committed_rounds\":{committed},\
         \"dropped_acked_writes\":{dropped},\"rows_per_insert_batch\":{rows_per_batch:.2},\
         \"routes\":{{\"query\":{},\"insert\":{}}},\"durability\":{durability_json}}}",
        route_json(&by_route[0]),
        route_json(&by_route[1]),
    );
    if let Some(path) = &json_out {
        std::fs::write(path, &summary).expect("write --json-out");
        println!("wrote {path}");
    }
    emit_metrics("server_qps");
    std::fs::remove_dir_all(&dir).ok();

    if strict {
        let batching_ok = acked == 0 || rows_per_batch > 1.0;
        let grouping_ok = !durability || group_mean > 1.0;
        if errors > 0 || dropped > 0 || !batching_ok || !grouping_ok {
            eprintln!(
                "strict: FAILED ({errors} error response(s), {dropped} dropped acked write(s), \
                 {rows_per_batch:.2} rows/batch, {group_mean:.2} mean wal group)"
            );
            std::process::exit(2);
        }
        println!("strict: ok");
    }
}
