//! Sketch merge demo: N worker threads with private sketch sets,
//! merged and checked against a single-threaded oracle.
//!
//! This is the partitioned-observability story end to end: each worker
//! owns a private `TDigest` + `MomentSummary` pair (no shared state, no
//! locks), records its deterministic slice of a lognormal latency
//! stream, and the coordinator merges the partials in worker order. The
//! oracle replays the *same* per-worker slices sequentially, building
//! the same partials and merging them in the same order — so the merged
//! `MomentSummary` must be **byte-identical** (`encode()` equality, not
//! approximate) to the oracle's, and the merged digest's
//! p50/p95/p99/p999 must sit within 0.5% rank error of the exact sorted
//! stream.
//!
//! Exits non-zero on any mismatch, so CI can run it as a check. Results
//! land in the fenced `--- metrics ---` JSON (gauges
//! `bench.merge_demo.*`).
//!
//! Usage: `cargo run -p fdc-bench --release --bin merge_demo
//! [--workers n] [--per-worker n]`

use fdc_bench::emit_metrics;
use fdc_obs::{MomentSummary, TDigest};
use fdc_rng::Rng;

const SEED: u64 = 0x5EED_F2DB;
const COMPRESSION: f64 = 200.0;
/// Acceptance bound: merged digest quantiles within 0.5% rank error of
/// the exact oracle.
const MAX_RANK_ERROR: f64 = 0.005;

/// One worker's private sketch set.
struct Partial {
    digest: TDigest,
    moments: MomentSummary,
}

/// Records `worker`'s slice of the stream into fresh sketches: a
/// lognormal latency shape (exp of a scaled normal), deterministic per
/// worker via a forked rng, so threads and oracle see identical values.
fn record_slice(worker: u64, per_worker: usize) -> Partial {
    let mut rng = Rng::seed_from_u64(SEED).fork(worker);
    let mut digest = TDigest::new(COMPRESSION);
    let mut moments = MomentSummary::new();
    for _ in 0..per_worker {
        // exp(μ=8, σ=0.75): a microseconds-scale latency distribution
        // with a realistic heavy right tail.
        let v = (8.0 + 0.75 * rng.standard_normal()).exp();
        digest.insert(v);
        moments.insert(v);
    }
    digest.flush();
    Partial { digest, moments }
}

/// Exact rank of `v` in the sorted stream, as a fraction of n.
fn rank_of(sorted: &[f64], v: f64) -> f64 {
    let below = sorted.partition_point(|&x| x <= v);
    below as f64 / sorted.len() as f64
}

fn main() {
    let mut workers = 8usize;
    let mut per_worker = 20_000usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                i += 1;
                workers = args[i].parse().expect("--workers n");
            }
            "--per-worker" => {
                i += 1;
                per_worker = args[i].parse().expect("--per-worker n");
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    println!("merge demo: {workers} workers x {per_worker} samples, compression {COMPRESSION}");

    // Parallel: one thread per worker, each with a private sketch set.
    let threaded: Vec<Partial> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| s.spawn(move || record_slice(w as u64, per_worker)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Oracle: the same partials built sequentially on one thread.
    let oracle: Vec<Partial> = (0..workers)
        .map(|w| record_slice(w as u64, per_worker))
        .collect();

    // Merge both sets in worker order.
    let merge_all = |parts: &[Partial]| -> Partial {
        let mut digest = TDigest::new(COMPRESSION);
        let mut moments = MomentSummary::new();
        for p in parts {
            digest.merge(&p.digest);
            moments = moments.merge(&p.moments);
        }
        digest.flush();
        Partial { digest, moments }
    };
    let merged = merge_all(&threaded);
    let oracle_merged = merge_all(&oracle);

    let mut failures = 0u32;

    // 1. Moments: byte-identical to the single-threaded oracle.
    let merged_bytes = merged.moments.encode();
    let oracle_bytes = oracle_merged.moments.encode();
    if merged_bytes == oracle_bytes {
        println!(
            "moments: byte-identical across {} merged observations (n={}, mean={:.3}, stddev={:.3})",
            workers,
            merged.moments.count(),
            merged.moments.mean(),
            merged.moments.stddev(),
        );
    } else {
        failures += 1;
        eprintln!(
            "FAIL moments diverged: threaded mean {:.17e} vs oracle {:.17e}",
            merged.moments.mean(),
            oracle_merged.moments.mean()
        );
    }
    let total = (workers * per_worker) as u64;
    if merged.moments.count() != total {
        failures += 1;
        eprintln!("FAIL moment count {} != {total}", merged.moments.count());
    }

    // 2. Digest quantiles: within 0.5% rank error of the exact stream.
    let mut exact: Vec<f64> = (0..workers)
        .flat_map(|w| {
            let mut rng = Rng::seed_from_u64(SEED).fork(w as u64);
            (0..per_worker)
                .map(|_| (8.0 + 0.75 * rng.standard_normal()).exp())
                .collect::<Vec<_>>()
        })
        .collect();
    exact.sort_by(f64::total_cmp);
    println!(
        "{:>8} {:>14} {:>14} {:>12}",
        "q", "digest", "exact", "rank err"
    );
    for q in [0.5, 0.95, 0.99, 0.999] {
        let est = merged.digest.quantile(q);
        let exact_v = exact[(((q * exact.len() as f64) as usize).max(1) - 1).min(exact.len() - 1)];
        let rank_err = (rank_of(&exact, est) - q).abs();
        let verdict = if rank_err <= MAX_RANK_ERROR {
            ""
        } else {
            "  FAIL"
        };
        println!("{q:>8} {est:>14.2} {exact_v:>14.2} {rank_err:>12.5}{verdict}");
        if rank_err > MAX_RANK_ERROR {
            failures += 1;
        }
        fdc_obs::float_gauge_with("bench.merge_demo.rank_err", &[("q", &format!("{q}"))])
            .set(rank_err);
    }
    println!(
        "digest: {} centroids for {} samples ({} compressions)",
        merged.digest.centroid_count(),
        total,
        merged.digest.compressions(),
    );
    fdc_obs::gauge("bench.merge_demo.centroids").set(merged.digest.centroid_count() as i64);
    fdc_obs::gauge("bench.merge_demo.samples").set(total as i64);

    emit_metrics("merge_demo");
    if failures > 0 {
        eprintln!("merge demo FAILED with {failures} mismatch(es)");
        std::process::exit(1);
    }
    println!("merge demo passed");
}
