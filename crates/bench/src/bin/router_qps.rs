//! Closed-loop load generator for a partitioned `fdc-router` deployment
//! — two real shard processes, one follower replica, a mid-run SIGKILL.
//!
//! The parent advises the tourism-proxy cube **once**, saves the
//! catalog, and re-execs itself (`--shard <id>`) as two shard server
//! processes plus a follower replica of the first shard, all opening
//! that shared catalog (advisor nondeterminism must never give two
//! shards different model configurations). It then starts the
//! `fdc-router` scatter-gather tier in-process over the children and
//! hammers it with client threads: single-shard reads (`WHERE
//! purpose = …`), fan-out reads (`GROUP BY time, purpose`), and
//! full-round `/insert` batches whose unique values double as write
//! identities.
//!
//! Mid-run the first shard's primary takes a SIGKILL — no drain, no
//! flush. The run then measures the degradation contract: reads fail
//! over to the replica (the degraded window is the time from the kill
//! to the first successful routed read of the dead shard's data),
//! writes touching the dead shard answer typed partial-failure errors,
//! and after the run the parent replays both shards' write-ahead logs
//! and proves **zero acknowledged rounds lost** — every value the
//! router answered `202` for is in a surviving log.
//!
//! Usage: `cargo run -p fdc-bench --release --bin router_qps --
//! [--threads n] [--healthy-secs s] [--degraded-secs s] [--strict]
//! [--json-out FILE]`. `--strict` exits non-zero on any lost
//! acknowledged round, a replica that never served the dead shard's
//! reads, or healthy-phase error responses — the CI `router-smoke`
//! contract. `--json-out` writes the `BENCH_router.json` artifact
//! (p50/p95/p99 per route, fleet throughput, degraded-window length).

use fdc_core::{Advisor, AdvisorOptions};
use fdc_datagen::tourism_proxy;
use fdc_f2db::{F2db, WalRecord};
use fdc_obs::AccuracyOptions;
use fdc_router::{Router, RouterOptions, ShardSpec, Topology};
use fdc_serve::{open_engine, open_follower, ServeOptions, Server};
use fdc_wal::{Wal, WalOptions};
use std::collections::HashSet;
use std::io::{BufRead, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const IDS_ENV: &str = "FDC_RQ_IDS";
const KEY_DIMS_ENV: &str = "FDC_RQ_KEY_DIMS";
const CATALOG_ENV: &str = "FDC_RQ_CATALOG";
const WAL_ENV: &str = "FDC_RQ_WAL";
const REPLICA_ENV: &str = "FDC_RQ_REPLICA_OF";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--shard") {
        let id = args.get(i + 1).expect("--shard needs an id").clone();
        run_shard(&id);
        return;
    }
    run_parent(&args);
}

// ---------------------------------------------------------------------------
// Child mode: one shard server process
// ---------------------------------------------------------------------------

/// A topology carrying only what placement needs (ids + key_dims) —
/// the child computes its owned base set before any address exists.
fn provisional_topology() -> Topology {
    let ids = std::env::var(IDS_ENV).expect("child needs FDC_RQ_IDS");
    let key_dims: usize = std::env::var(KEY_DIMS_ENV)
        .expect("child needs FDC_RQ_KEY_DIMS")
        .parse()
        .expect("integer key_dims");
    Topology {
        version: 0,
        key_dims,
        shards: ids
            .split(',')
            .map(|id| ShardSpec {
                id: id.to_string(),
                addr: "-".to_string(),
                replica: None,
            })
            .collect(),
    }
}

fn run_shard(id: &str) {
    let topo = provisional_topology();
    let catalog = PathBuf::from(std::env::var(CATALOG_ENV).expect("child needs FDC_RQ_CATALOG"));
    let wal = PathBuf::from(std::env::var(WAL_ENV).expect("child needs FDC_RQ_WAL"));
    let db = F2db::open_catalog(tourism_proxy(1), &catalog).expect("open shared catalog");
    let owned = topo.owned_bases(&db, id).expect("owned bases");
    let db = db.with_drift_monitoring(AccuracyOptions::default());
    let replica_of = std::env::var(REPLICA_ENV).ok();
    let opts = ServeOptions {
        wal_dir: Some(wal),
        coalesce_window: Duration::from_millis(1),
        replica_of: replica_of.clone(),
        partition_bases: Some(owned.clone()),
        ..ServeOptions::default()
    };
    let server = if replica_of.is_some() {
        // A follower of a partitioned primary runs the same partition;
        // `open_follower` takes the engine as-built, so apply it here.
        let db = db.with_base_partition(&owned).expect("partition follower");
        let (db, replica) = open_follower(db, &opts).expect("open follower");
        Server::start_with_replica(db, 0, opts, replica).expect("follower server")
    } else {
        let (db, _recovery) = open_engine(db, &opts).expect("open shard engine");
        Server::start(db, 0, opts).expect("shard server")
    };
    println!("READY {}", server.addr());
    std::io::stdout().flush().ok();
    // Serve until the parent kills us — SIGKILL is part of the bench.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

// ---------------------------------------------------------------------------
// Parent mode: the harness
// ---------------------------------------------------------------------------

fn spawn_shard(
    dir: &Path,
    id: &str,
    ids: &str,
    replica_of: Option<SocketAddr>,
) -> (Child, SocketAddr) {
    let exe = std::env::current_exe().unwrap();
    let mut cmd = Command::new(exe);
    cmd.args(["--shard", id])
        .env(IDS_ENV, ids)
        .env(KEY_DIMS_ENV, "1")
        .env(CATALOG_ENV, dir.join("catalog.f2db"))
        .env(
            WAL_ENV,
            dir.join(match replica_of {
                Some(_) => format!("wal_{id}_replica"),
                None => format!("wal_{id}"),
            }),
        )
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some(primary) = replica_of {
        cmd.env(REPLICA_ENV, primary.to_string());
    }
    let mut child = cmd.spawn().expect("spawn shard child");
    let stdout = child.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some((_, rest)) = line.split_once("READY ") {
                    break rest.trim().parse::<SocketAddr>().expect("child addr");
                }
            }
            other => panic!("shard {id} exited before READY: {other:?}"),
        }
    };
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

/// One request against the router over a fresh connection.
fn http_once(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String, u64)> {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: fdc\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body, start.elapsed().as_nanos() as u64))
}

/// Every base series' dimension values, in base-node order.
fn base_dims(db: &F2db) -> Vec<Vec<String>> {
    let ds = db.dataset();
    let g = ds.graph();
    let schema = g.schema();
    g.base_nodes()
        .iter()
        .map(|&n| {
            g.coord(n)
                .values()
                .iter()
                .enumerate()
                .map(|(d, &idx)| schema.dimensions()[d].values()[idx as usize].clone())
                .collect()
        })
        .collect()
}

fn full_round_body(dims: &[Vec<String>], value: f64) -> String {
    let rows: Vec<String> = dims
        .iter()
        .map(|d| {
            let quoted: Vec<String> = d.iter().map(|v| format!("\"{v}\"")).collect();
            format!("{{\"dims\":[{}],\"value\":{value}}}", quoted.join(","))
        })
        .collect();
    format!("{{\"rows\":[{}]}}", rows.join(","))
}

fn pctl(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// All row values in a shard's surviving write-ahead log, as bit
/// patterns (exact-equality identities for f64).
fn replay_values(wal_dir: &Path) -> HashSet<u64> {
    let mut values = HashSet::new();
    if !wal_dir.exists() {
        return values;
    }
    let (_wal, rec) = Wal::open(
        wal_dir,
        WalOptions {
            fsync: false,
            ..WalOptions::default()
        },
    )
    .expect("replay shard log");
    for (_seq, payload) in &rec.records {
        if let Ok(WalRecord::InsertBatch { rows, .. }) = WalRecord::decode(payload) {
            values.extend(rows.iter().map(|(_node, v)| v.to_bits()));
        }
    }
    values
}

struct RouteStats {
    samples: Vec<u64>,
    errors: u64,
}

fn route_json(name: &str, s: &RouteStats, secs: f64) -> String {
    let mut sorted = s.samples.clone();
    sorted.sort_unstable();
    format!(
        "\"{name}\":{{\"count\":{},\"errors\":{},\"rps\":{:.1},\"p50_ms\":{:.3},\"p95_ms\":{:.3},\"p99_ms\":{:.3}}}",
        sorted.len(),
        s.errors,
        sorted.len() as f64 / secs.max(1e-9),
        pctl(&sorted, 0.50) as f64 / 1e6,
        pctl(&sorted, 0.95) as f64 / 1e6,
        pctl(&sorted, 0.99) as f64 / 1e6,
    )
}

fn run_parent(args: &[String]) {
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let threads: usize = value("--threads").and_then(|v| v.parse().ok()).unwrap_or(6);
    let healthy_secs: f64 = value("--healthy-secs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    let degraded_secs: f64 = value("--degraded-secs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    let strict = flag("--strict");
    let json_out = value("--json-out");

    let dir = std::env::temp_dir().join(format!("fdc_router_qps_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Advise once; the catalog file is the deployment's shared truth.
    eprintln!("advising tourism proxy (shared catalog)…");
    let ds = tourism_proxy(1);
    let outcome = Advisor::new(
        &ds,
        AdvisorOptions {
            parallelism: Some(2),
            ..AdvisorOptions::default()
        },
    )
    .unwrap()
    .run();
    let seed_db = F2db::load(ds, &outcome.configuration).unwrap();
    seed_db.save_catalog(&dir.join("catalog.f2db")).unwrap();
    let dims = base_dims(&seed_db);

    // Pick two shard ids that both own at least one placement key —
    // rendezvous placement of 4 keys on 2 ids can in principle land
    // all on one side, which would be a degenerate deployment.
    let keys: Vec<String> = {
        let mut ks: Vec<String> = dims.iter().map(|d| d[0].clone()).collect();
        ks.sort();
        ks.dedup();
        ks
    };
    let ids: Vec<&str> = [["s0", "s1"], ["s0", "s2"], ["s1", "s2"], ["sa", "sb"]]
        .iter()
        .find(|pair| {
            pair.iter().all(|id| {
                keys.iter()
                    .any(|k| fdc_router::placement::place(k, pair.iter().copied()) == Some(id))
            })
        })
        .expect("some id pair splits the keys")
        .to_vec();
    let ids_csv = ids.join(",");
    eprintln!("shard ids {ids_csv} over placement keys {keys:?}");

    let (mut primary0, addr0) = spawn_shard(&dir, ids[0], &ids_csv, None);
    let (mut primary1, addr1) = spawn_shard(&dir, ids[1], &ids_csv, None);
    let (mut replica0, raddr0) = spawn_shard(&dir, ids[0], &ids_csv, Some(addr0));
    eprintln!(
        "shards up: {}={addr0} (replica {raddr0}), {}={addr1}",
        ids[0], ids[1]
    );

    let topology = Topology {
        version: 1,
        key_dims: 1,
        shards: vec![
            ShardSpec {
                id: ids[0].to_string(),
                addr: addr0.to_string(),
                replica: Some(raddr0.to_string()),
            },
            ShardSpec {
                id: ids[1].to_string(),
                addr: addr1.to_string(),
                replica: None,
            },
        ],
    };
    // The workload must be *servable*: the advisor is free to pick
    // derivation schemes that couple a node to base cells of several
    // placement keys, and a query resolving such a node is a typed
    // refusal in any partitioning — by design, not load. The parent
    // holds the same catalog as every shard, so it can classify each
    // candidate itself: the set of shards a query fans out to, or
    // `None` when some resolved node's derivation closure straddles
    // shards.
    let shards_of = |sql: &str| -> Option<HashSet<String>> {
        let sites = seed_db.query_derivation(sql).ok()?;
        let mut involved = HashSet::new();
        for site in &sites {
            let mut owner: Option<String> = None;
            for &b in &site.closure_base {
                let key = seed_db.partition_key(b, 1).ok()?;
                let id = topology.place(&key).id.clone();
                match &owner {
                    None => owner = Some(id),
                    Some(prev) if *prev == id => {}
                    Some(_) => return None,
                }
            }
            involved.insert(owner?);
        }
        Some(involved)
    };
    let mut candidates: Vec<String> = keys
        .iter()
        .map(|k| {
            format!(
                "SELECT time, SUM(visitors) FROM facts WHERE purpose = '{k}' GROUP BY time AS OF now() + '2 quarters'"
            )
        })
        .collect();
    for d in &dims {
        candidates.push(format!(
            "SELECT time, SUM(visitors) FROM facts WHERE purpose = '{}' AND state = '{}' GROUP BY time AS OF now() + '1 quarter'",
            d[0], d[1]
        ));
    }
    candidates.push(
        "SELECT time, SUM(visitors) FROM facts GROUP BY time, purpose AS OF now() + '1 quarter'"
            .to_string(),
    );
    let mut query_pool: Vec<String> = Vec::new();
    let mut probe_pool: Vec<String> = Vec::new();
    let mut fanout_pool: Vec<String> = Vec::new();
    for sql in &candidates {
        if let Some(owners) = shards_of(sql) {
            let body = format!("{{\"sql\":\"{sql}\"}}");
            if owners.len() == 1 && owners.contains(ids[0]) {
                probe_pool.push(body.clone());
            }
            if owners.len() > 1 {
                fanout_pool.push(body.clone());
            }
            query_pool.push(body);
        }
    }
    eprintln!(
        "workload: {} of {} candidate queries servable ({} single-shard on {}, {} fan-out)",
        query_pool.len(),
        candidates.len(),
        probe_pool.len(),
        ids[0],
        fanout_pool.len()
    );
    assert!(
        !query_pool.is_empty(),
        "no servable query under this catalog"
    );
    let probe_body = probe_pool
        .first()
        .expect("the doomed shard serves no query alone — replica failover unmeasurable")
        .clone();

    let router = Router::start(topology, 0, RouterOptions::default()).expect("start router");
    let raddr = router.addr();
    eprintln!("router on {raddr}");

    let stop = Arc::new(AtomicBool::new(false));
    let next_value = Arc::new(AtomicU64::new(1));
    let acked = Arc::new(Mutex::new(Vec::<u64>::new()));
    let queries = Arc::new(Mutex::new(RouteStats {
        samples: Vec::new(),
        errors: 0,
    }));
    let inserts = Arc::new(Mutex::new(RouteStats {
        samples: Vec::new(),
        errors: 0,
    }));
    let healthy_errors = Arc::new(AtomicU64::new(0));
    let degraded = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for t in 0..threads {
        let stop = Arc::clone(&stop);
        let query_pool = query_pool.clone();
        let queries = Arc::clone(&queries);
        let inserts = Arc::clone(&inserts);
        let acked = Arc::clone(&acked);
        let next_value = Arc::clone(&next_value);
        let healthy_errors = Arc::clone(&healthy_errors);
        let degraded = Arc::clone(&degraded);
        let dims = dims.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = fdc_rng::Rng::seed_from_u64(0xbadc0de + t as u64);
            while !stop.load(Ordering::SeqCst) {
                let is_insert = rng.f64() < 0.2;
                if is_insert {
                    // A full round: one unique value for every base
                    // cell — `202` means every owning shard committed.
                    let v = 1_000_000.0 + next_value.fetch_add(1, Ordering::SeqCst) as f64;
                    let body = full_round_body(&dims, v);
                    match http_once(raddr, "POST", "/insert", &body) {
                        Ok((202, _, ns)) => {
                            acked.lock().unwrap().push(v.to_bits());
                            inserts.lock().unwrap().samples.push(ns);
                        }
                        Ok((status, body, _)) => {
                            inserts.lock().unwrap().errors += 1;
                            if !degraded.load(Ordering::SeqCst)
                                && healthy_errors.fetch_add(1, Ordering::SeqCst) < 3
                            {
                                eprintln!(
                                    "healthy insert error {status}: {}",
                                    &body[..body.len().min(300)]
                                );
                            }
                        }
                        Err(_) => {
                            inserts.lock().unwrap().errors += 1;
                        }
                    }
                } else {
                    let body = &query_pool[(rng.next_u64() as usize) % query_pool.len()];
                    match http_once(raddr, "POST", "/query", body) {
                        Ok((200, _, ns)) => queries.lock().unwrap().samples.push(ns),
                        Ok((status, body, _)) => {
                            queries.lock().unwrap().errors += 1;
                            if !degraded.load(Ordering::SeqCst)
                                && healthy_errors.fetch_add(1, Ordering::SeqCst) < 3
                            {
                                eprintln!(
                                    "healthy query error {status}: {}",
                                    &body[..body.len().min(300)]
                                );
                            }
                        }
                        Err(_) => queries.lock().unwrap().errors += 1,
                    }
                }
            }
        }));
    }

    // Healthy phase.
    let run_start = Instant::now();
    std::thread::sleep(Duration::from_secs_f64(healthy_secs));

    // The axe: SIGKILL the first shard's primary mid-load.
    degraded.store(true, Ordering::SeqCst);
    primary0.kill().expect("sigkill shard primary");
    primary0.wait().expect("reap shard primary");
    let kill_at = Instant::now();
    eprintln!("killed {} primary; probing replica failover…", ids[0]);

    // Degraded window: kill → first successful routed read of the dead
    // shard's data (served by the replica).
    let probe = probe_body;
    let mut degraded_window_ms = -1.0f64;
    while kill_at.elapsed() < Duration::from_secs(10) {
        if let Ok((200, _, _)) = http_once(raddr, "POST", "/query", &probe) {
            degraded_window_ms = kill_at.elapsed().as_secs_f64() * 1e3;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    eprintln!("degraded window: {degraded_window_ms:.1} ms");

    std::thread::sleep(Duration::from_secs_f64(degraded_secs));
    stop.store(true, Ordering::SeqCst);
    for h in handles {
        h.join().unwrap();
    }
    let total_secs = run_start.elapsed().as_secs_f64();

    // Health must reflect the dead shard (1 of 2 up is below quorum).
    let healthz = http_once(raddr, "GET", "/healthz", "")
        .map(|(s, _, _)| s)
        .unwrap_or(0);
    let stats = http_once(raddr, "GET", "/stats", "")
        .map(|(_, b, _)| b)
        .unwrap_or_default();
    let fleet_folds = stats.contains("\"fleet\"");
    let replica_reads = fdc_obs::counter(fdc_obs::names::ROUTER_REPLICA_READS).get();

    router.shutdown();
    primary1.kill().ok();
    primary1.wait().ok();
    replica0.kill().ok();
    replica0.wait().ok();

    // Zero acked-write loss: every `202` round's value must be in a
    // surviving log. The dead primary's log survives the SIGKILL (the
    // fsync preceded the ack); the live shard's log survives trivially.
    let mut survived = replay_values(&dir.join(format!("wal_{}", ids[0])));
    survived.extend(replay_values(&dir.join(format!("wal_{}", ids[1]))));
    let acked = acked.lock().unwrap();
    let lost: Vec<u64> = acked
        .iter()
        .copied()
        .filter(|v| !survived.contains(v))
        .collect();

    let q = queries.lock().unwrap();
    let i = inserts.lock().unwrap();
    let total_requests = q.samples.len() + i.samples.len();
    let json = format!(
        "{{\"threads\":{threads},\"healthy_secs\":{healthy_secs},\"degraded_secs\":{degraded_secs},\
         {},{},\
         \"throughput_rps\":{:.1},\"degraded_window_ms\":{degraded_window_ms:.1},\
         \"acked_rounds\":{},\"lost_rounds\":{},\"replica_reads\":{replica_reads},\
         \"healthz_after_kill\":{healthz},\"healthy_phase_errors\":{}}}",
        route_json("query", &q, total_secs),
        route_json("insert", &i, total_secs),
        total_requests as f64 / total_secs.max(1e-9),
        acked.len(),
        lost.len(),
        healthy_errors.load(Ordering::SeqCst),
    );
    println!("{json}");
    if let Some(path) = json_out {
        std::fs::write(&path, &json).expect("write json artifact");
        eprintln!("wrote {path}");
    }
    let _ = std::fs::remove_dir_all(&dir);

    if strict {
        let mut failures = Vec::new();
        if !lost.is_empty() {
            failures.push(format!("{} acknowledged round(s) lost", lost.len()));
        }
        if degraded_window_ms < 0.0 {
            failures.push("replica never served the dead shard's reads".into());
        }
        if replica_reads == 0 {
            failures.push("no read was counted against the replica".into());
        }
        if healthy_errors.load(Ordering::SeqCst) > 0 {
            failures.push(format!(
                "{} error response(s) during the healthy phase",
                healthy_errors.load(Ordering::SeqCst)
            ));
        }
        if acked.is_empty() {
            failures.push("no round was acknowledged — harness too weak".into());
        }
        if healthz != 503 {
            failures.push(format!("healthz after kill was {healthz}, want 503"));
        }
        if !fleet_folds {
            failures.push("router /stats has no folded fleet section".into());
        }
        if !failures.is_empty() {
            eprintln!("STRICT FAILURES:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        eprintln!("strict gate passed");
    }
}
