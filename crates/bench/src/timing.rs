//! A minimal micro-benchmark harness (plain `main()` benches, no
//! external framework): warm up, pick an iteration count targeting a
//! fixed measurement window, report mean/min per iteration, and record
//! every sample into the global metrics registry so a bench run ends
//! with a machine-readable snapshot.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Re-exported so benches can `use fdc_bench::timing::black_box`.
pub use std::hint::black_box as bb;

/// Runs `f` repeatedly and prints one result line. The return value of
/// `f` is passed through [`black_box`] so the work cannot be optimized
/// away. Timings are also recorded into the `bench.<name>.ns` histogram
/// of the global registry.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm-up + calibration: run until 10 iterations or 50 ms.
    let calib_start = Instant::now();
    let mut calib_iters = 0u32;
    while calib_iters < 10 && calib_start.elapsed() < Duration::from_millis(50) {
        black_box(f());
        calib_iters += 1;
    }
    let per_iter = calib_start.elapsed() / calib_iters.max(1);
    // Measurement window of ~200 ms, capped at 1000 iterations.
    let iters = if per_iter.is_zero() {
        1000
    } else {
        (Duration::from_millis(200).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1000) as u32
    };

    let hist = fdc_obs::histogram(&fdc_obs::names::bench_ns(name));
    let mut min = Duration::MAX;
    let total_start = Instant::now();
    for _ in 0..iters {
        let start = Instant::now();
        black_box(f());
        let elapsed = start.elapsed();
        hist.record_duration(elapsed);
        min = min.min(elapsed);
    }
    let mean = total_start.elapsed() / iters;
    println!("{name:<44} {iters:>5} iters   mean {mean:>12.1?}   min {min:>12.1?}");
}

/// Export-plane session for a bench binary, driven by environment
/// variables so no bench needs its own flag parsing:
///
/// * `FDC_SERVE=<port>` — serve `/metrics`, `/healthz`, `/events` and
///   `/snapshot` on `127.0.0.1:<port>` for the lifetime of the run
///   (`0` picks an ephemeral port; the bound address is printed).
/// * `FDC_TRACE=<file.json>` — record spans into a Chrome
///   `trace_event` file written when the session drops.
///
/// Construct one at the top of `main` and keep it alive:
/// `let _obs = fdc_bench::obs_session();`.
pub struct ObsSession {
    server: Option<fdc_obs::ObsServer>,
    trace: Option<(std::sync::Arc<fdc_obs::TraceCollector>, String)>,
}

/// Reads `FDC_SERVE` / `FDC_TRACE` and starts the requested pieces of
/// the export plane. Both are optional; with neither set this is free.
pub fn obs_session() -> ObsSession {
    let server = std::env::var("FDC_SERVE").ok().and_then(|v| {
        let port: u16 = match v.trim().parse() {
            Ok(p) => p,
            Err(_) => {
                eprintln!("FDC_SERVE={v}: not a port number, exporter disabled");
                return None;
            }
        };
        match fdc_obs::ObsServer::bind(port) {
            Ok(s) => {
                eprintln!(
                    "obs: serving http://{} (/metrics /healthz /events /snapshot)",
                    s.addr()
                );
                Some(s)
            }
            Err(e) => {
                eprintln!("obs: cannot bind port {port}: {e}");
                None
            }
        }
    });
    let trace = std::env::var("FDC_TRACE").ok().and_then(|path| {
        let path = path.trim().to_string();
        if path.is_empty() {
            return None;
        }
        let collector = fdc_obs::TraceCollector::new();
        fdc_obs::set_subscriber(collector.clone());
        eprintln!("obs: recording spans to {path}");
        Some((collector, path))
    });
    ObsSession { server, trace }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        if let Some((collector, path)) = self.trace.take() {
            fdc_obs::take_subscriber();
            match collector.write_to(std::path::Path::new(&path)) {
                Ok(()) => eprintln!("obs: wrote {} span(s) to {path}", collector.len()),
                Err(e) => eprintln!("obs: cannot write trace to {path}: {e}"),
            }
        }
        // ObsServer::drop stops the accept loop and joins its thread.
        self.server.take();
    }
}

/// Prints the global metrics snapshot as JSON, framed so scripts can
/// extract it from mixed stdout (`--- metrics <label> ---` fences).
/// When the environment variable `FDC_METRICS_OUT` is set, the JSON is
/// also written to that file.
pub fn emit_metrics(label: &str) {
    let snap = fdc_obs::snapshot();
    let json = snap.to_json();
    println!("--- metrics {label} ---");
    println!("{json}");
    println!("--- end metrics ---");
    if let Ok(path) = std::env::var("FDC_METRICS_OUT") {
        if !path.is_empty() {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("cannot write metrics to {path}: {e}");
            }
        }
    }
}
