//! Random forecast-query workload generation for the runtime experiments
//! (Fig. 9b) and for users who want to stress their own deployments.
//!
//! Queries go through the SQL surface so parsing and rewriting are part
//! of the measured latency, exactly as they would be inside the DBMS.

use fdc_cube::{NodeId, TimeSeriesGraph, STAR};
use fdc_rng::Rng;

/// A deterministic random query workload over a time series graph.
#[derive(Debug)]
pub struct QueryWorkload {
    rng: Rng,
    /// Maximum forecast horizon (steps) of generated queries.
    pub max_horizon: usize,
}

impl QueryWorkload {
    /// Creates a workload generator with a fixed seed.
    pub fn new(seed: u64) -> Self {
        QueryWorkload {
            rng: Rng::seed_from_u64(seed),
            max_horizon: 4,
        }
    }

    /// Picks a uniformly random node (base or aggregated).
    pub fn random_node(&mut self, graph: &TimeSeriesGraph) -> NodeId {
        self.rng.usize_below(graph.node_count())
    }

    /// Renders the forecast query addressing `node` in the SQL dialect:
    /// one equality predicate per concrete dimension, `GROUP BY time`
    /// and a random horizon.
    pub fn sql_for_node(&mut self, graph: &TimeSeriesGraph, node: NodeId) -> String {
        let schema = graph.schema();
        let coord = graph.coord(node);
        let mut predicates = Vec::new();
        for (d, &v) in coord.values().iter().enumerate() {
            if v != STAR {
                predicates.push(format!(
                    "{} = '{}'",
                    schema.dimensions()[d].name(),
                    schema.dimensions()[d].values()[v as usize]
                ));
            }
        }
        let where_clause = if predicates.is_empty() {
            String::new()
        } else {
            format!(" WHERE {}", predicates.join(" AND "))
        };
        let horizon = 1 + self.rng.usize_below(self.max_horizon.max(1));
        format!(
            "SELECT time, SUM(value) FROM facts{where_clause} GROUP BY time AS OF now() + '{horizon} steps'"
        )
    }

    /// Generates one random query string.
    pub fn next_query(&mut self, graph: &TimeSeriesGraph) -> String {
        let node = self.random_node(graph);
        self.sql_for_node(graph, node)
    }

    /// Generates one random base-series insert value in `[lo, hi)`.
    pub fn next_insert_value(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.f64_range(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_datagen::tourism_proxy;
    use fdc_f2db::parse_query;

    #[test]
    fn generated_queries_parse_and_resolve() {
        let ds = tourism_proxy(1);
        let mut wl = QueryWorkload::new(7);
        for _ in 0..100 {
            let sql = wl.next_query(ds.graph());
            let stmt = parse_query(&sql).expect("generated SQL parses");
            match stmt {
                fdc_f2db::Statement::Forecast(q) => {
                    let horizon = q
                        .horizon
                        .steps(ds.series(0).granularity())
                        .expect("steps horizon");
                    assert!((1..=4).contains(&horizon));
                }
                other => panic!("unexpected statement {other:?}"),
            }
        }
    }

    #[test]
    fn workload_is_deterministic_in_seed() {
        let ds = tourism_proxy(1);
        let mut a = QueryWorkload::new(3);
        let mut b = QueryWorkload::new(3);
        for _ in 0..20 {
            assert_eq!(a.next_query(ds.graph()), b.next_query(ds.graph()));
        }
    }

    #[test]
    fn top_node_query_has_no_predicates() {
        let ds = tourism_proxy(1);
        let mut wl = QueryWorkload::new(1);
        let sql = wl.sql_for_node(ds.graph(), ds.graph().top_node());
        assert!(!sql.contains("WHERE"));
        assert!(sql.contains("GROUP BY time"));
    }
}
