//! Row-major dense matrix of `f64`.

use crate::{LinalgError, Result};

/// A dense, row-major matrix of `f64` values.
///
/// The type intentionally keeps a tiny API surface: exactly what the
/// reconciliation baselines and the tests need. Indexing is checked in
/// debug builds via the underlying slice indexing.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{} elements ({rows}x{cols})", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::Empty);
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("all rows of length {cols}"),
                found: "ragged rows".to_string(),
            });
        }
        let data = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a single-column matrix from a vector.
    pub fn column(data: Vec<f64>) -> Self {
        Matrix {
            rows: data.len(),
            cols: 1,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns true if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Extract column `c` as an owned vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transpose of `self`.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix multiplication `self * rhs`.
    ///
    /// Uses the classic i-k-j loop order so the inner loop walks both
    /// operands contiguously.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("rhs with {} rows", self.cols),
                found: format!("rhs with {} rows", rhs.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("vector of length {}", v.len()),
            });
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum::<f64>())
            .collect())
    }

    /// Element-wise addition.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Multiply every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element difference to another matrix (∞-distance),
    /// useful for approximate comparisons in tests.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> Result<f64> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                found: format!("{}x{}", rhs.rows, rhs.cols),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }

    fn zip_with(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64) -> Result<Matrix> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                found: format!("{}x{}", rhs.rows, rhs.cols),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_values() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_is_diagonal() {
        let m = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(m[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        assert!(Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, -2.5], &[0.0, 4.0]]).unwrap();
        assert_eq!(a.matmul(&Matrix::identity(2)).unwrap(), a);
        assert_eq!(Matrix::identity(2).matmul(&a).unwrap(), a);
    }

    #[test]
    fn matvec_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, -1.0]]).unwrap();
        assert_eq!(
            a.add(&b).unwrap(),
            Matrix::from_rows(&[&[4.0, 1.0]]).unwrap()
        );
        assert_eq!(
            a.sub(&b).unwrap(),
            Matrix::from_rows(&[&[-2.0, 3.0]]).unwrap()
        );
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0]]).unwrap());
        assert!(a.add(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn frobenius_norm_known_value() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn col_extraction() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[1.5, 2.0]]).unwrap();
        assert!((a.max_abs_diff(&b).unwrap() - 0.5).abs() < 1e-12);
    }
}
