//! # fdc-linalg
//!
//! A small, dependency-free dense linear algebra kernel used by the
//! hierarchical-forecasting baselines of the data-cube reproduction —
//! most importantly the *optimal combination* (Hyndman et al.) baseline,
//! which reconciles independent node forecasts through the ordinary
//! least squares projection `ŷ̃ = S (SᵀS)⁻¹ Sᵀ ŷ`.
//!
//! The crate provides:
//!
//! * [`Matrix`] — a row-major dense matrix of `f64` with the usual
//!   arithmetic, transpose and multiplication operations,
//! * [`cholesky::Cholesky`] — Cholesky factorization of symmetric
//!   positive-definite systems (used for normal-equation solves),
//! * [`qr::Qr`] — Householder QR factorization (used for rank-safe least
//!   squares),
//! * [`lstsq`](mod@crate::lstsq) — convenience least squares driver choosing between the two.
//!
//! All algorithms are textbook implementations (Golub & Van Loan) written
//! for clarity; the matrices appearing in the reproduction are small
//! (number of graph nodes × number of base series), so asymptotics are not
//! a concern, but the kernels are still written allocation-consciously.

//! ## Example
//!
//! ```
//! use fdc_linalg::{lstsq, Matrix};
//!
//! // Fit y = 1 + 2t through three points.
//! let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
//! let x = lstsq(&a, &[1.0, 3.0, 5.0]).unwrap();
//! assert!((x[0] - 1.0).abs() < 1e-9 && (x[1] - 2.0).abs() < 1e-9);
//! ```

pub mod cholesky;
pub mod lstsq;
pub mod matrix;
pub mod qr;

pub use cholesky::Cholesky;
pub use lstsq::{lstsq, ols_projection, solve_normal_equations};
pub use matrix::Matrix;
pub use qr::Qr;

/// Error type for linear algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape that was supplied.
        found: String,
    },
    /// The matrix is (numerically) singular or not positive definite.
    Singular,
    /// The input is empty where a non-empty value is required.
    Empty,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            LinalgError::Singular => write!(f, "matrix is singular or not positive definite"),
            LinalgError::Empty => write!(f, "empty input"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
