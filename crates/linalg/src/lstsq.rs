//! Least squares drivers.
//!
//! The optimal-combination baseline solves `min ‖S β − ŷ‖₂` where `S` is
//! the summing matrix of the time series hyper graph. For well-conditioned
//! systems the normal equations with a Cholesky solve are fastest; when the
//! Gram matrix is (numerically) singular we fall back to Householder QR,
//! which is slower but more robust.

use crate::{Cholesky, LinalgError, Matrix, Qr, Result};

/// Solves the least squares problem `min ‖a x − b‖₂`.
///
/// Tries the normal equations (Cholesky) first and falls back to QR when
/// the Gram matrix is not positive definite.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    match solve_normal_equations(a, b) {
        Ok(x) => Ok(x),
        Err(LinalgError::Singular) => Qr::new(a)?.solve(b),
        Err(e) => Err(e),
    }
}

/// Solves `min ‖a x − b‖₂` through the normal equations `(AᵀA)x = Aᵀb`.
pub fn solve_normal_equations(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    if a.rows() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            expected: format!("vector of length {}", a.rows()),
            found: format!("vector of length {}", b.len()),
        });
    }
    let at = a.transpose();
    let gram = at.matmul(a)?;
    let rhs = at.matvec(b)?;
    Cholesky::new(&gram)?.solve(&rhs)
}

/// Computes the OLS projection matrix `P = S (SᵀS)⁻¹ Sᵀ` used by the
/// optimal-combination reconciliation of Hyndman et al.
///
/// Multiplying a vector of independent node forecasts by `P` yields the
/// reconciled forecasts that are consistent with the aggregation
/// structure while minimizing the total adjustment in the least squares
/// sense.
pub fn ols_projection(s: &Matrix) -> Result<Matrix> {
    let st = s.transpose();
    let gram = st.matmul(s)?;
    let gram_inv = Cholesky::new(&gram)?.inverse()?;
    s.matmul(&gram_inv)?.matmul(&st)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lstsq_matches_qr_on_regular_system() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = [1.0, 3.0, 5.0];
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn lstsq_falls_back_to_qr_errors_when_truly_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        assert!(lstsq(&a, &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn normal_equations_reject_bad_rhs() {
        let a = Matrix::identity(2);
        assert!(solve_normal_equations(&a, &[1.0]).is_err());
    }

    #[test]
    fn projection_is_idempotent_and_symmetric() {
        // Summing matrix of a 2-leaf hierarchy: rows = [total; leaf1; leaf2]
        let s = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let p = ols_projection(&s).unwrap();
        // Idempotent: P P = P
        let pp = p.matmul(&p).unwrap();
        assert!(pp.max_abs_diff(&p).unwrap() < 1e-10);
        // Symmetric
        assert!(p.max_abs_diff(&p.transpose()).unwrap() < 1e-10);
    }

    #[test]
    fn projection_preserves_coherent_forecasts() {
        // A coherent vector (total = leaf1 + leaf2) lies in span(S) and
        // must be unchanged by the projection.
        let s = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let p = ols_projection(&s).unwrap();
        let coherent = [5.0, 2.0, 3.0];
        let out = p.matvec(&coherent).unwrap();
        for (a, b) in out.iter().zip(&coherent) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn projection_reconciles_incoherent_forecasts() {
        let s = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let p = ols_projection(&s).unwrap();
        // total says 10 but leaves say 2+3: projection must output a
        // coherent vector (first component equals sum of the rest).
        let out = p.matvec(&[10.0, 2.0, 3.0]).unwrap();
        assert!((out[0] - (out[1] + out[2])).abs() < 1e-10);
    }
}
