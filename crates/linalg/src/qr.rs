#![allow(clippy::needless_range_loop)] // triangular solves read clearest with index loops
//! Householder QR factorization and least squares solve.

use crate::{LinalgError, Matrix, Result};

/// Householder QR factorization of an `m × n` matrix with `m ≥ n`.
///
/// The factorization is stored in compact form: the upper triangle of the
/// working matrix holds `R`, while the Householder vectors that implicitly
/// define `Q` are kept in the lower triangle plus a separate scalar array.
/// This is the standard LAPACK-style storage and avoids materializing `Q`,
/// which is never needed for least squares.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed factorization (R in the upper triangle, Householder vectors
    /// below the diagonal).
    qr: Matrix,
    /// The leading coefficients of the Householder vectors (the diagonal
    /// elements of the pre-scaled vectors).
    r_diag: Vec<f64>,
}

impl Qr {
    /// Factorizes `a`. Requires `a.rows() >= a.cols()` and a non-empty
    /// matrix.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = (a.rows(), a.cols());
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }
        if m < n {
            return Err(LinalgError::DimensionMismatch {
                expected: "rows >= cols".into(),
                found: format!("{m}x{n}"),
            });
        }
        let mut qr = a.clone();
        let mut r_diag = vec![0.0; n];
        for k in 0..n {
            // Norm of the k-th column below (and including) the diagonal.
            let mut nrm = 0.0f64;
            for i in k..m {
                nrm = nrm.hypot(qr[(i, k)]);
            }
            if nrm == 0.0 {
                r_diag[k] = 0.0;
                continue;
            }
            if qr[(k, k)] < 0.0 {
                nrm = -nrm;
            }
            for i in k..m {
                qr[(i, k)] /= nrm;
            }
            qr[(k, k)] += 1.0;
            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut s = 0.0;
                for i in k..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s = -s / qr[(k, k)];
                for i in k..m {
                    let v = qr[(i, k)];
                    qr[(i, j)] += s * v;
                }
            }
            r_diag[k] = -nrm;
        }
        Ok(Qr { qr, r_diag })
    }

    /// Whether `R` has full rank (no negligible diagonal element).
    pub fn is_full_rank(&self) -> bool {
        let scale = self
            .r_diag
            .iter()
            .map(|d| d.abs())
            .fold(0.0f64, f64::max)
            .max(1.0);
        self.r_diag.iter().all(|d| d.abs() > 1e-12 * scale)
    }

    /// Solves the least squares problem `min ‖a x − b‖₂` where `a` is the
    /// factorized matrix.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {m}"),
                found: format!("vector of length {}", b.len()),
            });
        }
        if !self.is_full_rank() {
            return Err(LinalgError::Singular);
        }
        let mut y = b.to_vec();
        // Compute Qᵀ b by applying the reflectors in order.
        for k in 0..n {
            if self.qr[(k, k)] == 0.0 {
                continue;
            }
            let mut s = 0.0;
            for i in k..m {
                s += self.qr[(i, k)] * y[i];
            }
            s = -s / self.qr[(k, k)];
            for i in k..m {
                y[i] += s * self.qr[(i, k)];
            }
        }
        // Back-substitute R x = (Qᵀ b)[..n]
        let mut x = vec![0.0; n];
        for k in (0..n).rev() {
            let mut s = y[k];
            for j in (k + 1)..n {
                s -= self.qr[(k, j)] * x[j];
            }
            x[k] = s / self.r_diag[k];
        }
        Ok(x)
    }

    /// Solves against every column of `b`, producing the `n × p` solution.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.qr.cols();
        let mut out = Matrix::zeros(n, b.cols());
        for c in 0..b.cols() {
            let x = self.solve(&b.col(c))?;
            for (r, v) in x.into_iter().enumerate() {
                out[(r, c)] = v;
            }
        }
        Ok(out)
    }

    /// Extracts the `n × n` upper-triangular factor `R` (mainly for tests).
    pub fn r(&self) -> Matrix {
        let n = self.qr.cols();
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            r[(i, i)] = self.r_diag[i];
            for j in (i + 1)..n {
                r[(i, j)] = self.qr[(i, j)];
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_square_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let qr = Qr::new(&a).unwrap();
        let x = qr.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn overdetermined_regression_recovers_line() {
        // Fit y = 2 + 3t exactly through 5 points.
        let ts: Vec<f64> = (0..5).map(|t| t as f64).collect();
        let rows: Vec<Vec<f64>> = ts.iter().map(|&t| vec![1.0, t]).collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&row_refs).unwrap();
        let b: Vec<f64> = ts.iter().map(|&t| 2.0 + 3.0 * t).collect();
        let x = Qr::new(&a).unwrap().solve(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Noisy overdetermined system: solution must satisfy the normal
        // equations Aᵀ(Ax - b) = 0.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let b = [1.0, 2.2, 2.8, 4.1];
        let x = Qr::new(&a).unwrap().solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let resid: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        let atr = a.transpose().matvec(&resid).unwrap();
        for v in atr {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn detects_rank_deficiency() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let qr = Qr::new(&a).unwrap();
        assert!(!qr.is_full_rank());
        assert_eq!(
            qr.solve(&[1.0, 2.0, 3.0]).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn rejects_underdetermined() {
        assert!(Qr::new(&Matrix::zeros(2, 3)).is_err());
        assert!(Qr::new(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn r_is_upper_triangular_and_consistent() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let qr = Qr::new(&a).unwrap();
        let r = qr.r();
        assert_eq!(r.rows(), 2);
        // |R| diag should equal singular-value-product magnitude: check
        // RᵀR == AᵀA (both equal Gram matrix).
        let gram = a.transpose().matmul(&a).unwrap();
        let rtr = r.transpose().matmul(&r).unwrap();
        assert!(gram.max_abs_diff(&rtr).unwrap() < 1e-10);
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[2.0, 4.0], &[4.0, 8.0]]).unwrap();
        let x = Qr::new(&a).unwrap().solve_matrix(&b).unwrap();
        let expect = Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0]]).unwrap();
        assert!(x.max_abs_diff(&expect).unwrap() < 1e-10);
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let a = Matrix::identity(2);
        let qr = Qr::new(&a).unwrap();
        assert!(qr.solve(&[1.0]).is_err());
    }
}
