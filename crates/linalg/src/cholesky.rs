#![allow(clippy::needless_range_loop)] // triangular solves read clearest with index loops
//! Cholesky factorization of symmetric positive-definite matrices.

use crate::{LinalgError, Matrix, Result};

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix, stored as the lower-triangular factor `L`.
///
/// Used to solve the normal equations `(SᵀS) β = Sᵀy` that arise in the
/// optimal-combination reconciliation baseline. The factorization fails
/// with [`LinalgError::Singular`] when a pivot drops below a small
/// tolerance, which callers treat as "fall back to QR".
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes the symmetric positive-definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is assumed, matching how the normal-equation matrices are
    /// constructed.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut l = Matrix::zeros(n, n);
        // Tolerance scaled by the largest diagonal entry keeps the test
        // meaningful for both tiny and large magnitude systems.
        let max_diag = (0..n).map(|i| a[(i, i)].abs()).fold(0.0, f64::max);
        let tol = 1e-12 * max_diag.max(1.0);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= tol {
                return Err(LinalgError::Singular);
            }
            let djj = d.sqrt();
            l[(j, j)] = djj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / djj;
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward and backward substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                found: format!("vector of length {}", b.len()),
            });
        }
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Backward: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.l.rows();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("matrix with {n} rows"),
                found: format!("matrix with {} rows", b.rows()),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for c in 0..b.cols() {
            let col = b.col(c);
            let x = self.solve(&col)?;
            for (r, v) in x.into_iter().enumerate() {
                out[(r, c)] = v;
            }
        }
        Ok(out)
    }

    /// Computes `A⁻¹` by solving against the identity.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.l.rows()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B Bᵀ + I for B random-ish; hand-picked SPD matrix.
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]]).unwrap()
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let l = ch.factor();
        let rec = l.matmul(&l.transpose()).unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-10);
    }

    #[test]
    fn solve_matches_direct_check() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5];
        let x = ch.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (u, v) in ax.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10, "{u} vs {v}");
        }
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = spd3();
        let inv = Cholesky::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-10);
    }

    #[test]
    fn rejects_non_square() {
        assert!(Cholesky::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert_eq!(Cholesky::new(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert_eq!(Cholesky::new(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let ch = Cholesky::new(&spd3()).unwrap();
        assert!(ch.solve(&[1.0]).is_err());
    }

    #[test]
    fn one_by_one_matrix() {
        let a = Matrix::from_rows(&[&[9.0]]).unwrap();
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.factor()[(0, 0)] - 3.0).abs() < 1e-12);
        assert!((ch.solve(&[18.0]).unwrap()[0] - 2.0).abs() < 1e-12);
    }
}
