//! Property-based tests of the linear algebra kernel.

use fdc_linalg::{lstsq, ols_projection, Cholesky, Matrix, Qr};
use proptest::prelude::*;

/// Strategy: a random well-conditioned SPD matrix `A = B Bᵀ + n·I`.
fn spd_strategy() -> impl Strategy<Value = Matrix> {
    (2usize..6).prop_flat_map(|n| {
        proptest::collection::vec(-2.0f64..2.0, n * n).prop_map(move |data| {
            let b = Matrix::from_vec(n, n, data).unwrap();
            let bbt = b.matmul(&b.transpose()).unwrap();
            bbt.add(&Matrix::identity(n).scale(n as f64)).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cholesky factor reconstructs the input and solves correctly.
    #[test]
    fn cholesky_solves_spd_systems(a in spd_strategy()) {
        let n = a.rows();
        let ch = Cholesky::new(&a).expect("SPD by construction");
        let l = ch.factor();
        let rec = l.matmul(&l.transpose()).unwrap();
        prop_assert!(rec.max_abs_diff(&a).unwrap() < 1e-8 * a.frobenius_norm().max(1.0));
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
        let x = ch.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (u, v) in ax.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
    }

    /// QR least squares satisfies the normal equations Aᵀ(Ax − b) = 0.
    #[test]
    fn qr_satisfies_normal_equations(
        rows in 3usize..8,
        cols in 1usize..3,
        data in proptest::collection::vec(-10.0f64..10.0, 24),
        rhs in proptest::collection::vec(-10.0f64..10.0, 8),
    ) {
        let a = Matrix::from_vec(rows, cols, data[..rows * cols].to_vec()).unwrap();
        // Make the system full rank by nudging the diagonal.
        let mut a = a;
        for i in 0..cols {
            a[(i, i)] += 5.0;
        }
        let b = &rhs[..rows];
        let qr = Qr::new(&a).unwrap();
        prop_assume!(qr.is_full_rank());
        let x = qr.solve(b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let resid: Vec<f64> = ax.iter().zip(b).map(|(p, q)| p - q).collect();
        for v in a.transpose().matvec(&resid).unwrap() {
            prop_assert!(v.abs() < 1e-6, "normal equation residual {v}");
        }
    }

    /// The driver lstsq agrees with QR on full-rank systems.
    #[test]
    fn lstsq_matches_qr(
        rows in 3usize..8,
        data in proptest::collection::vec(-5.0f64..5.0, 16),
        rhs in proptest::collection::vec(-5.0f64..5.0, 8),
    ) {
        let cols = 2usize;
        let mut a = Matrix::from_vec(rows, cols, data[..rows * cols].to_vec()).unwrap();
        for i in 0..cols {
            a[(i, i)] += 10.0;
        }
        let b = &rhs[..rows];
        let via_driver = lstsq(&a, b).unwrap();
        let via_qr = Qr::new(&a).unwrap().solve(b).unwrap();
        for (u, v) in via_driver.iter().zip(&via_qr) {
            prop_assert!((u - v).abs() < 1e-6);
        }
    }

    /// OLS projection of a summing matrix is idempotent, symmetric and
    /// fixes coherent vectors.
    #[test]
    fn projection_properties(leaves in 2usize..5) {
        // Hierarchy: total + each leaf.
        let mut s = Matrix::zeros(leaves + 1, leaves);
        for j in 0..leaves {
            s[(0, j)] = 1.0;
            s[(j + 1, j)] = 1.0;
        }
        let p = ols_projection(&s).unwrap();
        let pp = p.matmul(&p).unwrap();
        prop_assert!(pp.max_abs_diff(&p).unwrap() < 1e-9);
        prop_assert!(p.max_abs_diff(&p.transpose()).unwrap() < 1e-9);
        // Coherent vector: total = Σ leaves.
        let mut y = vec![0.0; leaves + 1];
        for j in 1..=leaves {
            y[j] = j as f64;
            y[0] += j as f64;
        }
        let py = p.matvec(&y).unwrap();
        for (u, v) in py.iter().zip(&y) {
            prop_assert!((u - v).abs() < 1e-9);
        }
    }

    /// Matrix transpose is an involution and matmul is associative on
    /// small random matrices.
    #[test]
    fn matrix_algebra_laws(
        a_data in proptest::collection::vec(-3.0f64..3.0, 6),
        b_data in proptest::collection::vec(-3.0f64..3.0, 6),
        c_data in proptest::collection::vec(-3.0f64..3.0, 4),
    ) {
        let a = Matrix::from_vec(2, 3, a_data).unwrap();
        let b = Matrix::from_vec(3, 2, b_data).unwrap();
        let c = Matrix::from_vec(2, 2, c_data).unwrap();
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.max_abs_diff(&right).unwrap() < 1e-9);
        // (AB)ᵀ = BᵀAᵀ
        let abt = a.matmul(&b).unwrap().transpose();
        let btat = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(abt.max_abs_diff(&btat).unwrap() < 1e-9);
    }
}
