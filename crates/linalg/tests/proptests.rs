//! Randomized property tests of the linear algebra kernel, driven by the
//! deterministic workspace RNG (seeded loops instead of a shrinking
//! framework: failures print the case index, which is enough to replay).

use fdc_linalg::{lstsq, ols_projection, Cholesky, Matrix, Qr};
use fdc_rng::Rng;

/// A random well-conditioned SPD matrix `A = B Bᵀ + n·I`.
fn random_spd(rng: &mut Rng) -> Matrix {
    let n = 2 + rng.usize_below(4);
    let data: Vec<f64> = (0..n * n).map(|_| rng.f64_range(-2.0, 2.0)).collect();
    let b = Matrix::from_vec(n, n, data).unwrap();
    let bbt = b.matmul(&b.transpose()).unwrap();
    bbt.add(&Matrix::identity(n).scale(n as f64)).unwrap()
}

/// Cholesky factor reconstructs the input and solves correctly.
#[test]
fn cholesky_solves_spd_systems() {
    let mut rng = Rng::seed_from_u64(0x11a1);
    for case in 0..64 {
        let a = random_spd(&mut rng);
        let n = a.rows();
        let ch = Cholesky::new(&a).expect("SPD by construction");
        let l = ch.factor();
        let rec = l.matmul(&l.transpose()).unwrap();
        assert!(
            rec.max_abs_diff(&a).unwrap() < 1e-8 * a.frobenius_norm().max(1.0),
            "case {case}"
        );
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
        let x = ch.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (u, v) in ax.iter().zip(&b) {
            assert!((u - v).abs() < 1e-7, "case {case}: {u} vs {v}");
        }
    }
}

/// QR least squares satisfies the normal equations Aᵀ(Ax − b) = 0.
#[test]
fn qr_satisfies_normal_equations() {
    let mut rng = Rng::seed_from_u64(0x11a2);
    for case in 0..64 {
        let rows = 3 + rng.usize_below(5);
        let cols = 1 + rng.usize_below(2);
        let data: Vec<f64> = (0..rows * cols)
            .map(|_| rng.f64_range(-10.0, 10.0))
            .collect();
        let mut a = Matrix::from_vec(rows, cols, data).unwrap();
        // Make the system full rank by nudging the diagonal.
        for i in 0..cols {
            a[(i, i)] += 5.0;
        }
        let b: Vec<f64> = (0..rows).map(|_| rng.f64_range(-10.0, 10.0)).collect();
        let qr = Qr::new(&a).unwrap();
        if !qr.is_full_rank() {
            continue;
        }
        let x = qr.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let resid: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        for v in a.transpose().matvec(&resid).unwrap() {
            assert!(v.abs() < 1e-6, "case {case}: normal equation residual {v}");
        }
    }
}

/// The driver lstsq agrees with QR on full-rank systems.
#[test]
fn lstsq_matches_qr() {
    let mut rng = Rng::seed_from_u64(0x11a3);
    for case in 0..64 {
        let rows = 3 + rng.usize_below(5);
        let cols = 2usize;
        let data: Vec<f64> = (0..rows * cols).map(|_| rng.f64_range(-5.0, 5.0)).collect();
        let mut a = Matrix::from_vec(rows, cols, data).unwrap();
        for i in 0..cols {
            a[(i, i)] += 10.0;
        }
        let b: Vec<f64> = (0..rows).map(|_| rng.f64_range(-5.0, 5.0)).collect();
        let via_driver = lstsq(&a, &b).unwrap();
        let via_qr = Qr::new(&a).unwrap().solve(&b).unwrap();
        for (u, v) in via_driver.iter().zip(&via_qr) {
            assert!((u - v).abs() < 1e-6, "case {case}");
        }
    }
}

/// OLS projection of a summing matrix is idempotent, symmetric and
/// fixes coherent vectors.
#[test]
fn projection_properties() {
    for leaves in 2usize..5 {
        // Hierarchy: total + each leaf.
        let mut s = Matrix::zeros(leaves + 1, leaves);
        for j in 0..leaves {
            s[(0, j)] = 1.0;
            s[(j + 1, j)] = 1.0;
        }
        let p = ols_projection(&s).unwrap();
        let pp = p.matmul(&p).unwrap();
        assert!(pp.max_abs_diff(&p).unwrap() < 1e-9);
        assert!(p.max_abs_diff(&p.transpose()).unwrap() < 1e-9);
        // Coherent vector: total = Σ leaves.
        let mut y = vec![0.0; leaves + 1];
        for j in 1..=leaves {
            y[j] = j as f64;
            y[0] += j as f64;
        }
        let py = p.matvec(&y).unwrap();
        for (u, v) in py.iter().zip(&y) {
            assert!((u - v).abs() < 1e-9);
        }
    }
}

/// Matrix transpose is an involution and matmul is associative on
/// small random matrices.
#[test]
fn matrix_algebra_laws() {
    let mut rng = Rng::seed_from_u64(0x11a4);
    for case in 0..64 {
        let a_data: Vec<f64> = (0..6).map(|_| rng.f64_range(-3.0, 3.0)).collect();
        let b_data: Vec<f64> = (0..6).map(|_| rng.f64_range(-3.0, 3.0)).collect();
        let c_data: Vec<f64> = (0..4).map(|_| rng.f64_range(-3.0, 3.0)).collect();
        let a = Matrix::from_vec(2, 3, a_data).unwrap();
        let b = Matrix::from_vec(3, 2, b_data).unwrap();
        let c = Matrix::from_vec(2, 2, c_data).unwrap();
        assert_eq!(a.transpose().transpose(), a.clone());
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        assert!(left.max_abs_diff(&right).unwrap() < 1e-9, "case {case}");
        // (AB)ᵀ = BᵀAᵀ
        let abt = a.matmul(&b).unwrap().transpose();
        let btat = b.transpose().matmul(&a.transpose()).unwrap();
        assert!(abt.max_abs_diff(&btat).unwrap() < 1e-9, "case {case}");
    }
}
