//! The naive **direct** approach: one model per node.
//!
//! "The naive direct approach creates a model for each node in the time
//! series graph and uses the model to directly calculate the forecasts of
//! the corresponding node" (§VI-B). Highest possible model cost, but each
//! node is served by a model fitted on exactly its own series.

use crate::{errors_of, BaselineOptions, BaselineResult};
use fdc_cube::{Configuration, ConfiguredModel, CubeSplit, Dataset};
use std::time::Instant;

/// Runs the direct baseline.
pub fn direct(dataset: &Dataset, split: &CubeSplit, options: &BaselineOptions) -> BaselineResult {
    let start = Instant::now();
    let spec = options.resolve_spec(dataset);
    let mut cfg = Configuration::new(dataset.node_count());
    for v in 0..dataset.node_count() {
        match ConfiguredModel::fit(split, v, &spec, &options.fit) {
            Ok(model) => {
                cfg.insert_model(v, model);
                cfg.adopt_if_better(dataset, split, &[v], v);
            }
            Err(_) => {
                // Series too short for the spec: the node keeps its default
                // (maximal) error, mirroring a model that cannot be built.
            }
        }
    }
    BaselineResult {
        name: "direct",
        node_errors: errors_of(&cfg),
        model_count: cfg.model_count(),
        total_cost: cfg.total_cost(),
        wall_time: start.elapsed(),
        configuration: Some(cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_datagen::tourism_proxy;

    #[test]
    fn direct_builds_model_for_every_node() {
        let ds = tourism_proxy(1);
        let split = CubeSplit::new(&ds, 0.8);
        let r = direct(&ds, &split, &BaselineOptions::default());
        assert_eq!(r.model_count, ds.node_count());
        assert!(r.overall_error() < 0.3, "error {}", r.overall_error());
        let cfg = r.configuration.as_ref().unwrap();
        // Every node is served by its own (direct) scheme.
        for v in 0..ds.node_count() {
            let scheme = cfg.estimate(v).scheme.as_ref().unwrap();
            assert_eq!(scheme.sources, vec![v]);
        }
    }

    #[test]
    fn direct_cost_exceeds_zero_and_scales_with_nodes() {
        let ds = tourism_proxy(2);
        let split = CubeSplit::new(&ds, 0.8);
        let r = direct(&ds, &split, &BaselineOptions::default());
        assert!(r.total_cost.as_nanos() > 0);
        assert_eq!(r.node_errors.len(), ds.node_count());
    }
}
