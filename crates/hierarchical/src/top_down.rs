//! The **top-down** approach: one model at the top node.
//!
//! "The other commonly applied method … distributes the forecasts of the
//! top node down the hierarchy based on the historical proportions of the
//! data. Gross and Sohl analyzed several versions of this approach, where
//! a simple method that uses the proportions of the historical averages
//! performed best" (§VI-B). The derivation weight `k = h_t / h_top`
//! computed on the training history is exactly that proportion.

use crate::{errors_of, BaselineOptions, BaselineResult};
use fdc_cube::{Configuration, ConfiguredModel, CubeSplit, Dataset};
use std::time::Instant;

/// Runs the top-down baseline.
pub fn top_down(dataset: &Dataset, split: &CubeSplit, options: &BaselineOptions) -> BaselineResult {
    let start = Instant::now();
    let spec = options.resolve_spec(dataset);
    let top = dataset.graph().top_node();
    let mut cfg = Configuration::new(dataset.node_count());
    if let Ok(model) = ConfiguredModel::fit(split, top, &spec, &options.fit) {
        cfg.insert_model(top, model);
        for v in 0..dataset.node_count() {
            cfg.adopt_if_better(dataset, split, &[top], v);
        }
    }
    BaselineResult {
        name: "top-down",
        node_errors: errors_of(&cfg),
        model_count: cfg.model_count(),
        total_cost: cfg.total_cost(),
        wall_time: start.elapsed(),
        configuration: Some(cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_datagen::tourism_proxy;

    #[test]
    fn top_down_builds_exactly_one_model() {
        let ds = tourism_proxy(1);
        let split = CubeSplit::new(&ds, 0.8);
        let r = top_down(&ds, &split, &BaselineOptions::default());
        assert_eq!(r.model_count, 1);
        let cfg = r.configuration.as_ref().unwrap();
        assert!(cfg.has_model(ds.graph().top_node()));
    }

    #[test]
    fn every_node_disaggregates_from_top() {
        let ds = tourism_proxy(1);
        let split = CubeSplit::new(&ds, 0.8);
        let r = top_down(&ds, &split, &BaselineOptions::default());
        let cfg = r.configuration.as_ref().unwrap();
        let top = ds.graph().top_node();
        let mut weight_sum = 0.0;
        for &b in ds.graph().base_nodes() {
            let scheme = cfg.estimate(b).scheme.as_ref().unwrap();
            assert_eq!(scheme.sources, vec![top]);
            weight_sum += scheme.weight;
        }
        // The base proportions of the total must sum to ≈ 1.
        assert!(
            (weight_sum - 1.0).abs() < 0.05,
            "proportions sum {weight_sum}"
        );
    }

    #[test]
    fn top_down_cheapest_in_cost() {
        let ds = tourism_proxy(2);
        let split = CubeSplit::new(&ds, 0.8);
        let td = top_down(&ds, &split, &BaselineOptions::default());
        let direct = crate::direct(&ds, &split, &BaselineOptions::default());
        assert!(td.total_cost < direct.total_cost);
        assert!(td.model_count < direct.model_count);
    }
}
