//! The **middle-out** approach: models at an intermediate level.
//!
//! Not part of the paper's evaluation, but the third classic strategy of
//! the hierarchical-forecasting literature the paper cites (\[23\]): place
//! models at one intermediate aggregation level, *aggregate up* from it
//! and *disaggregate down* below it. It interpolates between bottom-up
//! (level 0) and top-down (top level) in both cost and error behaviour,
//! which makes it a useful calibration point next to the advisor.

use crate::{errors_of, is_ancestor, BaselineOptions, BaselineResult};
use fdc_cube::{Configuration, ConfiguredModel, CubeSplit, Dataset, NodeId};
use std::time::Instant;

/// Runs the middle-out baseline with models at the given hyper-graph
/// `level` (0 = bottom-up behaviour, `max_level` = top-down behaviour).
pub fn middle_out(
    dataset: &Dataset,
    split: &CubeSplit,
    level: usize,
    options: &BaselineOptions,
) -> BaselineResult {
    let start = Instant::now();
    let spec = options.resolve_spec(dataset);
    let g = dataset.graph();
    let level = level.min(g.max_level());
    let mut cfg = Configuration::new(dataset.node_count());

    // Models at every node of the chosen level.
    let mid: Vec<NodeId> = (0..g.node_count())
        .filter(|&v| g.level(v) == level)
        .collect();
    for &v in &mid {
        if let Ok(model) = ConfiguredModel::fit(split, v, &spec, &options.fit) {
            cfg.insert_model(v, model);
        }
    }

    // Serve every node: at-level direct; above by aggregating the level
    // nodes underneath; below by disaggregating from the covering level
    // node.
    for t in 0..dataset.node_count() {
        if cfg.has_model(t) {
            cfg.adopt_if_better(dataset, split, &[t], t);
            continue;
        }
        if g.level(t) > level {
            let sources: Vec<NodeId> = mid
                .iter()
                .copied()
                .filter(|&m| cfg.has_model(m) && is_ancestor(dataset, t, m))
                .collect();
            if !sources.is_empty() {
                cfg.adopt_if_better(dataset, split, &sources, t);
            }
        } else {
            // Find the (unique for tree-shaped dims, first for general
            // cubes) level node covering t.
            if let Some(&m) = mid
                .iter()
                .find(|&&m| cfg.has_model(m) && is_ancestor(dataset, m, t))
            {
                cfg.adopt_if_better(dataset, split, &[m], t);
            }
        }
    }

    BaselineResult {
        name: "middle-out",
        node_errors: errors_of(&cfg),
        model_count: cfg.model_count(),
        total_cost: cfg.total_cost(),
        wall_time: start.elapsed(),
        configuration: Some(cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_datagen::tourism_proxy;

    #[test]
    fn middle_out_at_level_one_covers_everything() {
        let ds = tourism_proxy(1);
        let split = CubeSplit::new(&ds, 0.8);
        let r = middle_out(&ds, &split, 1, &BaselineOptions::default());
        // Level 1 of the tourism cube: purpose aggregates (4) + state
        // aggregates (8) = 12 models.
        assert_eq!(r.model_count, 12);
        let cfg = r.configuration.as_ref().unwrap();
        for v in 0..ds.node_count() {
            assert!(
                cfg.estimate(v).scheme.is_some(),
                "node {v} unserved by middle-out"
            );
        }
    }

    #[test]
    fn level_extremes_match_bottom_up_and_top_down_costs() {
        let ds = tourism_proxy(2);
        let split = CubeSplit::new(&ds, 0.8);
        let bottom = middle_out(&ds, &split, 0, &BaselineOptions::default());
        assert_eq!(bottom.model_count, ds.graph().base_nodes().len());
        let top = middle_out(
            &ds,
            &split,
            ds.graph().max_level(),
            &BaselineOptions::default(),
        );
        assert_eq!(top.model_count, 1);
        // Level beyond max clamps.
        let clamped = middle_out(&ds, &split, 99, &BaselineOptions::default());
        assert_eq!(clamped.model_count, 1);
    }

    #[test]
    fn middle_out_cost_sits_between_extremes() {
        let ds = tourism_proxy(3);
        let split = CubeSplit::new(&ds, 0.8);
        let opts = BaselineOptions::default();
        let bu = middle_out(&ds, &split, 0, &opts);
        let mid = middle_out(&ds, &split, 1, &opts);
        let td = middle_out(&ds, &split, ds.graph().max_level(), &opts);
        assert!(td.model_count < mid.model_count);
        assert!(mid.model_count < bu.model_count);
    }
}
