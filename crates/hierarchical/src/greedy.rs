//! The empirical **greedy** model selection of Fischer et al. \[19\].
//!
//! "A simple greedy approach that initially builds all forecast models
//! for all nodes in the graph and then selects in each step the model
//! with the highest benefit with respect to forecast accuracy. It stops
//! when there is no model left that improves the accuracy. To calculate
//! the forecasts, it only considers the traditional derivation schemes
//! aggregation, disaggregation and direct" (§VI-B).
//!
//! Building every model upfront and re-evaluating every remaining
//! candidate in every iteration is what makes the approach accurate but
//! expensive — its runtime "strongly increases with increasing number of
//! time series" (Fig. 9a), which the scalability benchmark reproduces.

use crate::{adopt_traditional, errors_of, BaselineOptions, BaselineResult};
use fdc_cube::{Configuration, ConfiguredModel, CubeSplit, Dataset};
use std::time::Instant;

/// Runs the greedy baseline.
pub fn greedy(dataset: &Dataset, split: &CubeSplit, options: &BaselineOptions) -> BaselineResult {
    let start = Instant::now();
    let spec = options.resolve_spec(dataset);
    let n = dataset.node_count();

    // Phase 1: build all models (the expensive upfront investment of [19]).
    let mut pool: Vec<Option<ConfiguredModel>> = (0..n)
        .map(|v| ConfiguredModel::fit(split, v, &spec, &options.fit).ok())
        .collect();

    // Phase 2: iteratively add the model with the highest benefit.
    let mut cfg = Configuration::new(n);
    let mut remaining: Vec<usize> = (0..n).filter(|&v| pool[v].is_some()).collect();
    loop {
        let current_error = cfg.overall_error();
        let mut best: Option<(usize, f64)> = None;
        for &cand in &remaining {
            // Tentatively add the candidate and measure the configuration
            // error restricted to traditional schemes.
            let mut trial = cfg.clone();
            trial.insert_model(
                cand,
                pool[cand].as_ref().expect("candidate is available").clone(),
            );
            adopt_traditional(&mut trial, dataset, split);
            let err = trial.overall_error();
            if err < current_error - 1e-12 && best.is_none_or(|(_, be)| err < be) {
                best = Some((cand, err));
            }
        }
        let Some((winner, _)) = best else { break };
        cfg.insert_model(winner, pool[winner].take().expect("winner was available"));
        adopt_traditional(&mut cfg, dataset, split);
        remaining.retain(|&v| v != winner);
    }

    BaselineResult {
        name: "greedy",
        node_errors: errors_of(&cfg),
        model_count: cfg.model_count(),
        total_cost: cfg.total_cost(),
        wall_time: start.elapsed(),
        configuration: Some(cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_datagen::tourism_proxy;

    #[test]
    fn greedy_selects_a_proper_subset_of_models() {
        let ds = tourism_proxy(1);
        let split = CubeSplit::new(&ds, 0.8);
        let r = greedy(&ds, &split, &BaselineOptions::default());
        assert!(r.model_count >= 1);
        assert!(
            r.model_count < ds.node_count(),
            "greedy kept all {} models",
            r.model_count
        );
    }

    #[test]
    fn greedy_beats_data_independent_baselines_on_correlated_data() {
        let ds = tourism_proxy(1);
        let split = CubeSplit::new(&ds, 0.8);
        let g = greedy(&ds, &split, &BaselineOptions::default());
        let td = crate::top_down(&ds, &split, &BaselineOptions::default());
        let bu = crate::bottom_up(&ds, &split, &BaselineOptions::default());
        // Greedy has strictly more freedom than either fixed scheme, so its
        // training-split error cannot be (much) worse than the best of them.
        let best_fixed = td.overall_error().min(bu.overall_error());
        assert!(
            g.overall_error() <= best_fixed + 1e-9,
            "greedy {} vs best fixed {best_fixed}",
            g.overall_error()
        );
    }

    #[test]
    fn greedy_schemes_are_traditional_only() {
        let ds = tourism_proxy(2);
        let split = CubeSplit::new(&ds, 0.8);
        let r = greedy(&ds, &split, &BaselineOptions::default());
        let cfg = r.configuration.as_ref().unwrap();
        for v in 0..ds.node_count() {
            if let Some(s) = &cfg.estimate(v).scheme {
                let kind = fdc_cube::derive::classify_scheme(&ds, &s.sources, v);
                assert_ne!(
                    kind,
                    fdc_cube::SchemeKind::General,
                    "node {v} uses a non-traditional scheme"
                );
            }
        }
    }
}
