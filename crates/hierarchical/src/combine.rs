//! The **optimal combination** approach of Hyndman et al. \[17\].
//!
//! Independently forecasts *all* series at all aggregation levels and
//! reconciles them with the OLS projection `ŷ̃ = S (SᵀS)⁻¹ Sᵀ ŷ`, where
//! `S` is the summing matrix mapping base series to every node. The
//! reconciled forecasts are coherent with the aggregation structure and
//! minimize the total adjustment in the least squares sense.
//!
//! The paper reports (§VI-B/D) that Combine achieves slightly better
//! error than the data-independent approaches but needs maximum model
//! costs and scales poorly ("requires the computation of a regression
//! matrix over all base forecasts"); the same structure emerges here.

use crate::{BaselineOptions, BaselineResult};
use fdc_cube::{ConfiguredModel, CubeSplit, Dataset};
use fdc_linalg::{ols_projection, Matrix};
use std::time::Instant;

/// Runs the optimal-combination baseline. Returns `None` in
/// `configuration`: reconciliation mixes every node into every forecast
/// and is not representable as per-node derivation schemes.
pub fn combine(dataset: &Dataset, split: &CubeSplit, options: &BaselineOptions) -> BaselineResult {
    let start = Instant::now();
    let spec = options.resolve_spec(dataset);
    let g = dataset.graph();
    let n = dataset.node_count();
    let base = g.base_nodes();
    let horizon = split.horizon();

    // Independent forecasts at every node (zeros where fitting fails).
    let mut forecasts = vec![vec![0.0; horizon]; n];
    let mut model_count = 0usize;
    let mut total_cost = std::time::Duration::ZERO;
    for (v, slot) in forecasts.iter_mut().enumerate() {
        if let Ok(m) = ConfiguredModel::fit(split, v, &spec, &options.fit) {
            *slot = m.test_forecast.clone();
            total_cost += m.creation_time;
            model_count += 1;
        }
    }

    // Summing matrix S: rows = nodes, cols = base series.
    let mut s = Matrix::zeros(n, base.len());
    for v in 0..n {
        let pat = g.coord(v);
        for (j, &b) in base.iter().enumerate() {
            if pat.matches_base(g.coord(b)) {
                s[(v, j)] = 1.0;
            }
        }
    }

    // Reconcile each horizon step: ŷ̃ = P ŷ with P = S (SᵀS)⁻¹ Sᵀ.
    let node_errors = match ols_projection(&s) {
        Ok(p) => {
            let mut reconciled = vec![vec![0.0; horizon]; n];
            let mut y = vec![0.0; n];
            for h in 0..horizon {
                for (v, fy) in y.iter_mut().enumerate() {
                    *fy = forecasts[v][h];
                }
                let yt = p.matvec(&y).expect("projection dims match");
                for (v, val) in yt.into_iter().enumerate() {
                    reconciled[v][h] = val;
                }
            }
            (0..n)
                .map(|v| split.measure().score(split.test(v), &reconciled[v]))
                .collect()
        }
        Err(_) => {
            // Singular Gram matrix (duplicate base columns) cannot occur for
            // distinct base coords, but degrade gracefully to the unreconciled
            // forecasts if it ever does.
            (0..n)
                .map(|v| split.measure().score(split.test(v), &forecasts[v]))
                .collect()
        }
    };

    BaselineResult {
        name: "combine",
        configuration: None,
        node_errors,
        model_count,
        total_cost,
        wall_time: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_datagen::tourism_proxy;

    #[test]
    fn combine_uses_all_models() {
        let ds = tourism_proxy(1);
        let split = CubeSplit::new(&ds, 0.8);
        let r = combine(&ds, &split, &BaselineOptions::default());
        assert_eq!(r.model_count, ds.node_count());
        assert_eq!(r.node_errors.len(), ds.node_count());
        assert!(r.configuration.is_none());
    }

    #[test]
    fn combine_error_is_competitive_with_direct() {
        let ds = tourism_proxy(1);
        let split = CubeSplit::new(&ds, 0.8);
        let comb = combine(&ds, &split, &BaselineOptions::default());
        let dir = crate::direct(&ds, &split, &BaselineOptions::default());
        // Reconciliation should not catastrophically hurt the direct
        // forecasts; allow a modest tolerance.
        assert!(
            comb.overall_error() < dir.overall_error() + 0.05,
            "combine {} vs direct {}",
            comb.overall_error(),
            dir.overall_error()
        );
    }
}
