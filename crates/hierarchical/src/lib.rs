//! # fdc-hierarchical
//!
//! The hierarchical-forecasting baselines the paper compares against
//! (§VI-B):
//!
//! * [`direct`](mod@crate::direct) — one model per node, forecasts taken directly;
//! * [`bottom_up`](mod@crate::bottom_up) — models only for base series, aggregates forecast by
//!   summing base forecasts (the most common method in the literature
//!   \[10\], \[24\]);
//! * [`top_down`](mod@crate::top_down) — a single model at the top node, forecasts distributed
//!   down by historical proportions (Gross & Sohl's best-performing
//!   variant: proportions of the historical averages \[16\]);
//! * [`combine`](mod@crate::combine) — Hyndman et al.'s optimal combination \[17\]: independent
//!   forecasts at *all* nodes reconciled by the OLS projection
//!   `ŷ̃ = S (SᵀS)⁻¹ Sᵀ ŷ`;
//! * [`middle_out`](mod@crate::middle_out) — models at one intermediate level, aggregating up
//!   and disaggregating down (not in the paper's evaluation; the third
//!   classic strategy of the literature it cites, included as an
//!   extension);
//! * [`greedy`](mod@crate::greedy) — the empirical greedy selection of \[19\]: prefit all
//!   models, repeatedly add the model with the highest accuracy benefit
//!   under the traditional schemes (direct / aggregation /
//!   disaggregation), stop when no model improves the configuration.
//!
//! All baselines produce a [`BaselineResult`] with per-node errors, model
//! counts and timing, directly comparable with the advisor's output.

//! ## Example
//!
//! ```
//! use fdc_cube::CubeSplit;
//! use fdc_datagen::tourism_proxy;
//! use fdc_hierarchical::{top_down, BaselineOptions};
//!
//! let ds = tourism_proxy(1);
//! let split = CubeSplit::new(&ds, 0.8);
//! let result = top_down(&ds, &split, &BaselineOptions::default());
//! assert_eq!(result.model_count, 1); // one model at the top node
//! assert!(result.overall_error() < 1.0);
//! ```

pub mod bottom_up;
pub mod combine;
pub mod direct;
pub mod greedy;
pub mod middle_out;
pub mod top_down;

pub use bottom_up::bottom_up;
pub use combine::combine;
pub use direct::direct;
pub use greedy::greedy;
pub use middle_out::middle_out;
pub use top_down::top_down;

use fdc_cube::{Configuration, CubeSplit, Dataset};
use fdc_forecast::{FitOptions, ModelSpec};
use std::time::Duration;

/// Options shared by all baselines.
#[derive(Debug, Clone, Default)]
pub struct BaselineOptions {
    /// Model specification; `None` selects the default for the series'
    /// seasonal period (triple exponential smoothing where seasonal).
    pub spec: Option<ModelSpec>,
    /// Fitting options (optimizer, iteration budget, artificial cost).
    pub fit: FitOptions,
}

impl BaselineOptions {
    /// Resolves the model spec for a data set, degrading to simpler
    /// specs when the training history (≈ 80% of the data) is too short
    /// for the seasonal default.
    pub fn resolve_spec(&self, dataset: &Dataset) -> ModelSpec {
        self.spec.clone().unwrap_or_else(|| {
            ModelSpec::default_for_history(
                dataset.series(0).granularity().seasonal_period(),
                dataset.series_len() * 4 / 5,
            )
        })
    }
}

/// Outcome of running a baseline (or the advisor, adapted in `fdc-bench`).
#[derive(Debug)]
pub struct BaselineResult {
    /// Short method name for reports.
    pub name: &'static str,
    /// The resulting configuration, when the method produces one
    /// (`None` for Combine, whose reconciliation is not expressible as
    /// per-node derivation schemes).
    pub configuration: Option<Configuration>,
    /// Per-node forecast error on the test window.
    pub node_errors: Vec<f64>,
    /// Number of models created *and kept*.
    pub model_count: usize,
    /// Total model creation time of the kept models (cost measure §II-D).
    pub total_cost: Duration,
    /// Wall-clock time of the whole configuration search.
    pub wall_time: Duration,
}

impl BaselineResult {
    /// Overall error: mean of the node errors.
    pub fn overall_error(&self) -> f64 {
        if self.node_errors.is_empty() {
            0.0
        } else {
            self.node_errors.iter().sum::<f64>() / self.node_errors.len() as f64
        }
    }
}

/// Extracts per-node errors from a configuration.
pub(crate) fn errors_of(cfg: &Configuration) -> Vec<f64> {
    (0..cfg.node_count())
        .map(|v| cfg.estimate(v).error)
        .collect()
}

/// Recomputes every node's estimate considering only the *traditional*
/// derivation schemes (direct, full-hyperedge aggregation,
/// disaggregation from an ancestor) — the scheme set the Greedy baseline
/// is restricted to \[19\].
pub(crate) fn adopt_traditional(cfg: &mut Configuration, dataset: &Dataset, split: &CubeSplit) {
    let g = dataset.graph();
    let model_nodes = cfg.model_nodes();
    for t in 0..g.node_count() {
        // Direct.
        if cfg.has_model(t) {
            cfg.adopt_if_better(dataset, split, &[t], t);
        }
        // Aggregation over a fully covered hyperedge.
        let edges: Vec<Vec<usize>> = g.edges(t).iter().map(|e| e.children.clone()).collect();
        for children in edges {
            if children.iter().all(|&c| cfg.has_model(c)) {
                cfg.adopt_if_better(dataset, split, &children, t);
            }
        }
        // Disaggregation from any ancestor carrying a model.
        for &s in &model_nodes {
            if s != t && is_ancestor(dataset, s, t) {
                cfg.adopt_if_better(dataset, split, &[s], t);
            }
        }
    }
}

/// Whether `a`'s region strictly contains `d`'s (ancestor test on
/// canonical coordinates: stars in `a` where `d` is concrete, equal
/// elsewhere).
pub(crate) fn is_ancestor(dataset: &Dataset, a: usize, d: usize) -> bool {
    let g = dataset.graph();
    if a == d {
        return false;
    }
    g.coord(a)
        .values()
        .iter()
        .zip(g.coord(d).values())
        .all(|(&x, &y)| x == fdc_cube::STAR || x == y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_cube::{Coord, STAR};
    use fdc_datagen::tourism_proxy;

    #[test]
    fn ancestor_test_matches_graph_structure() {
        let ds = tourism_proxy(1);
        let g = ds.graph();
        let top = g.top_node();
        let base = g.base_nodes()[0];
        assert!(is_ancestor(&ds, top, base));
        assert!(!is_ancestor(&ds, base, top));
        assert!(!is_ancestor(&ds, base, base));
        // A purpose aggregate is an ancestor of its base series only.
        let purpose0 = g.node(&Coord::new(vec![0, STAR])).unwrap();
        assert!(is_ancestor(&ds, purpose0, base)); // base has purpose 0
        let other_base = g
            .base_nodes()
            .iter()
            .copied()
            .find(|&b| g.coord(b).values()[0] != 0)
            .unwrap();
        assert!(!is_ancestor(&ds, purpose0, other_base));
    }

    #[test]
    fn baseline_result_overall_error() {
        let r = BaselineResult {
            name: "x",
            configuration: None,
            node_errors: vec![0.2, 0.4],
            model_count: 1,
            total_cost: Duration::ZERO,
            wall_time: Duration::ZERO,
        };
        assert!((r.overall_error() - 0.3).abs() < 1e-12);
    }
}
