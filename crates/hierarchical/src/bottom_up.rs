//! The **bottom-up** approach: models for base series only.
//!
//! "Arguably the most commonly applied method in forecasting literature
//! is the bottom-up approach, where only forecasts for base time series
//! are created and aggregated to produce forecasts for the whole time
//! series graph" (§VI-B).

use crate::{errors_of, BaselineOptions, BaselineResult};
use fdc_cube::{Configuration, ConfiguredModel, CubeSplit, Dataset};
use std::time::Instant;

/// Runs the bottom-up baseline.
pub fn bottom_up(
    dataset: &Dataset,
    split: &CubeSplit,
    options: &BaselineOptions,
) -> BaselineResult {
    let start = Instant::now();
    let spec = options.resolve_spec(dataset);
    let g = dataset.graph();
    let mut cfg = Configuration::new(dataset.node_count());
    for &b in g.base_nodes() {
        if let Ok(model) = ConfiguredModel::fit(split, b, &spec, &options.fit) {
            cfg.insert_model(b, model);
        }
    }
    // Every node's forecast = sum of the base forecasts beneath it.
    for v in 0..dataset.node_count() {
        let sources: Vec<usize> = if g.level(v) == 0 {
            vec![v]
        } else {
            g.base_descendants(v)
        };
        if sources.iter().all(|&s| cfg.has_model(s)) {
            cfg.adopt_if_better(dataset, split, &sources, v);
        }
    }
    BaselineResult {
        name: "bottom-up",
        node_errors: errors_of(&cfg),
        model_count: cfg.model_count(),
        total_cost: cfg.total_cost(),
        wall_time: start.elapsed(),
        configuration: Some(cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_datagen::tourism_proxy;

    #[test]
    fn bottom_up_builds_models_only_for_base_nodes() {
        let ds = tourism_proxy(1);
        let split = CubeSplit::new(&ds, 0.8);
        let r = bottom_up(&ds, &split, &BaselineOptions::default());
        assert_eq!(r.model_count, ds.graph().base_nodes().len());
        let cfg = r.configuration.as_ref().unwrap();
        for &b in ds.graph().base_nodes() {
            assert!(cfg.has_model(b));
        }
        assert!(!cfg.has_model(ds.graph().top_node()));
    }

    #[test]
    fn aggregates_are_served_by_base_sums() {
        let ds = tourism_proxy(1);
        let split = CubeSplit::new(&ds, 0.8);
        let r = bottom_up(&ds, &split, &BaselineOptions::default());
        let cfg = r.configuration.as_ref().unwrap();
        let top = ds.graph().top_node();
        let scheme = cfg.estimate(top).scheme.as_ref().unwrap();
        assert_eq!(scheme.sources.len(), ds.graph().base_nodes().len());
        // Consistent SUM data → aggregation weight ≈ 1.
        assert!((scheme.weight - 1.0).abs() < 1e-9);
        assert!(r.overall_error() < 0.35, "error {}", r.overall_error());
    }
}
