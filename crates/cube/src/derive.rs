//! Derivation schemes and weights (§II-C, Eq. 1–3).
//!
//! A target node `t` can compute its forecasts from any set of source
//! nodes `S` as
//!
//! ```text
//! x̂_t = k_{S→t} · Σ_{s∈S} x̂_s       with    k_{S→t} = h_t / Σ_{s∈S} h_s
//! ```
//!
//! where `h_v` is the sum over the whole history of node `v` — the
//! historical-share weighting Gross & Sohl found most effective \[16\].
//! The three special cases the paper illustrates (Fig. 3) fall out of the
//! formula: *direct* (`S = {t}`, `k = 1`), *aggregation* (`S` = children
//! of `t`, `k = 1` for consistent SUM data) and *disaggregation*
//! (`S` = {parent}, `k` = the target's share of the parent).
//!
//! The module also computes the per-time-point weight series whose
//! variance is the *similarity indicator* of §III-B: constant shares mean
//! a stable relationship; fluctuating shares mean an unreliable scheme.

use crate::dataset::Dataset;
use crate::graph::NodeId;
use fdc_forecast::accuracy::AccuracyMeasure;

/// Classification of a derivation scheme relative to the graph structure
/// (Fig. 3), mainly for reporting and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// The node uses the model at its own node.
    Direct,
    /// The node aggregates forecasts of a full hyperedge of children.
    Aggregation,
    /// The node scales down the forecast of an ancestor.
    Disaggregation,
    /// Any other source combination (siblings, partial sets, multi-source).
    General,
}

/// Classifies the scheme `sources → target` against the graph.
pub fn classify_scheme(dataset: &Dataset, sources: &[NodeId], target: NodeId) -> SchemeKind {
    let g = dataset.graph();
    if sources == [target] {
        return SchemeKind::Direct;
    }
    if let [s] = sources {
        // Ancestor: target's base descendants are a subset of the source's.
        if g.coord(*s).matches_base(g.coord(target))
            || g.base_descendants(target)
                .iter()
                .all(|b| g.coord(*s).matches_base(g.coord(*b)))
        {
            return SchemeKind::Disaggregation;
        }
    }
    // Aggregation: sources equal the children of one hyperedge of target.
    let mut sorted: Vec<NodeId> = sources.to_vec();
    sorted.sort_unstable();
    for edge in g.edges(target) {
        if edge.children == sorted {
            return SchemeKind::Aggregation;
        }
    }
    SchemeKind::General
}

/// The derivation weight `k_{S→t} = h_t / Σ_s h_s` of Eq. (2)/(3),
/// restricted to the first `history_len` observations (pass
/// `usize::MAX` for the entire history). Returns 0 when the source
/// history sums to zero.
pub fn derivation_weight_over(
    dataset: &Dataset,
    sources: &[NodeId],
    target: NodeId,
    history_len: usize,
) -> f64 {
    let take = history_len.min(dataset.series_len());
    let h_t: f64 = dataset.series(target).values()[..take].iter().sum();
    let h_s: f64 = sources
        .iter()
        .map(|&s| dataset.series(s).values()[..take].iter().sum::<f64>())
        .sum();
    if h_s.abs() < f64::EPSILON {
        0.0
    } else {
        h_t / h_s
    }
}

/// [`derivation_weight_over`] on the whole history.
pub fn derivation_weight(dataset: &Dataset, sources: &[NodeId], target: NodeId) -> f64 {
    derivation_weight_over(dataset, sources, target, usize::MAX)
}

/// The per-time-point share series `k_τ = x_t(τ) / Σ_s x_s(τ)`.
/// Time points with a (near-)zero source sum are skipped.
pub fn weight_series(dataset: &Dataset, sources: &[NodeId], target: NodeId) -> Vec<f64> {
    let n = dataset.series_len();
    let target_vals = dataset.series(target).values();
    let mut out = Vec::with_capacity(n);
    for (tau, &target) in target_vals.iter().enumerate().take(n) {
        let denom: f64 = sources
            .iter()
            .map(|&s| dataset.series(s).values()[tau])
            .sum();
        if denom.abs() > 1e-12 {
            out.push(target / denom);
        }
    }
    out
}

/// Variance of the per-time-point weights over the entire history — the
/// *similarity* indicator ingredient (§III-B): "if weights strongly
/// fluctuate over time, the corresponding scheme is quite unstable and
/// leads to low accuracy".
pub fn weight_variance(dataset: &Dataset, sources: &[NodeId], target: NodeId) -> f64 {
    let w = weight_series(dataset, sources, target);
    if w.len() < 2 {
        return 0.0;
    }
    let mean = w.iter().sum::<f64>() / w.len() as f64;
    w.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / w.len() as f64
}

/// The *historical error* indicator ingredient (§III-B): assume perfect
/// forecasts at the sources (use their real history), derive the target's
/// values via the weight computed on the first `history_len` points, and
/// score against the target's real history with `measure`.
pub fn historical_error_over(
    dataset: &Dataset,
    sources: &[NodeId],
    target: NodeId,
    measure: AccuracyMeasure,
    history_len: usize,
) -> f64 {
    let take = history_len.min(dataset.series_len());
    if take == 0 {
        return 0.0;
    }
    let k = derivation_weight_over(dataset, sources, target, take);
    let mut derived = vec![0.0; take];
    for &s in sources {
        for (d, v) in derived.iter_mut().zip(dataset.series(s).values()) {
            *d += v;
        }
    }
    for d in &mut derived {
        *d *= k;
    }
    measure.score(&dataset.series(target).values()[..take], &derived)
}

/// [`historical_error_over`] on the whole history (the paper computes the
/// indicator "over the entire history as the time series from our
/// real-world data sets are quite short").
pub fn historical_error(
    dataset: &Dataset,
    sources: &[NodeId],
    target: NodeId,
    measure: AccuracyMeasure,
) -> f64 {
    historical_error_over(dataset, sources, target, measure, usize::MAX)
}

/// Combines source forecasts into the target forecast per Eq. (1):
/// element-wise sum of the source forecasts scaled by `weight`.
pub fn derive_forecast(source_forecasts: &[&[f64]], weight: f64) -> Vec<f64> {
    let h = source_forecasts.first().map_or(0, |f| f.len());
    let mut out = vec![0.0; h];
    for fc in source_forecasts {
        debug_assert_eq!(fc.len(), h, "source horizons must match");
        for (o, v) in out.iter_mut().zip(*fc) {
            *o += v;
        }
    }
    for o in &mut out {
        *o *= weight;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Coord, STAR};
    use crate::schema::{Dimension, FunctionalDependency, Schema};
    use fdc_forecast::{Granularity, TimeSeries};

    /// Two regions of two cities each; single product dimension omitted.
    fn dataset() -> Dataset {
        let schema = Schema::new(
            vec![
                Dimension::new(
                    "city",
                    vec!["C1".into(), "C2".into(), "C3".into(), "C4".into()],
                ),
                Dimension::new("region", vec!["R1".into(), "R2".into()]),
            ],
            vec![FunctionalDependency::new(0, 1, vec![0, 0, 1, 1])],
        )
        .unwrap();
        let region_of = [0u32, 0, 1, 1];
        // City i contributes a constant share: values (i+1) * (t+1).
        let base = (0..4u32)
            .map(|city| {
                let values: Vec<f64> = (0..8)
                    .map(|t| (city as f64 + 1.0) * (t as f64 + 1.0))
                    .collect();
                (
                    Coord::new(vec![city, region_of[city as usize]]),
                    TimeSeries::new(values, Granularity::Monthly),
                )
            })
            .collect();
        Dataset::from_base(schema, base).unwrap()
    }

    fn node(ds: &Dataset, vals: Vec<u32>) -> NodeId {
        ds.graph().node(&Coord::new(vals)).unwrap()
    }

    #[test]
    fn direct_weight_is_one() {
        let ds = dataset();
        let t = node(&ds, vec![0, 0]);
        assert!((derivation_weight(&ds, &[t], t) - 1.0).abs() < 1e-12);
        assert_eq!(classify_scheme(&ds, &[t], t), SchemeKind::Direct);
    }

    #[test]
    fn aggregation_weight_is_one_for_full_children() {
        let ds = dataset();
        let r1 = node(&ds, vec![STAR, 0]);
        let c1 = node(&ds, vec![0, 0]);
        let c2 = node(&ds, vec![1, 0]);
        let k = derivation_weight(&ds, &[c1, c2], r1);
        assert!((k - 1.0).abs() < 1e-12);
        assert_eq!(classify_scheme(&ds, &[c1, c2], r1), SchemeKind::Aggregation);
    }

    #[test]
    fn disaggregation_weight_is_child_share() {
        let ds = dataset();
        let r1 = node(&ds, vec![STAR, 0]);
        let c1 = node(&ds, vec![0, 0]); // share 1/(1+2) of region R1
        let k = derivation_weight(&ds, &[r1], c1);
        assert!((k - 1.0 / 3.0).abs() < 1e-12, "k = {k}");
        assert_eq!(classify_scheme(&ds, &[r1], c1), SchemeKind::Disaggregation);
    }

    #[test]
    fn sibling_scheme_is_general() {
        let ds = dataset();
        let c1 = node(&ds, vec![0, 0]);
        let c2 = node(&ds, vec![1, 0]);
        assert_eq!(classify_scheme(&ds, &[c2], c1), SchemeKind::General);
        // C2 has twice C1's values → k = 1/2.
        assert!((derivation_weight(&ds, &[c2], c1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weight_series_constant_for_proportional_data() {
        let ds = dataset();
        let r1 = node(&ds, vec![STAR, 0]);
        let c1 = node(&ds, vec![0, 0]);
        let w = weight_series(&ds, &[r1], c1);
        assert_eq!(w.len(), 8);
        for v in &w {
            assert!((v - 1.0 / 3.0).abs() < 1e-12);
        }
        assert!(weight_variance(&ds, &[r1], c1) < 1e-20);
    }

    #[test]
    fn weight_variance_positive_for_shifting_shares() {
        // Build a data set where C1's share of R1 drifts over time.
        let schema = Schema::new(
            vec![
                Dimension::new("city", vec!["C1".into(), "C2".into()]),
                Dimension::new("region", vec!["R1".into()]),
            ],
            vec![FunctionalDependency::new(0, 1, vec![0, 0])],
        )
        .unwrap();
        let c1: Vec<f64> = (0..8).map(|t| 1.0 + t as f64).collect(); // growing
        let c2: Vec<f64> = (0..8).map(|_| 10.0).collect(); // flat
        let base = vec![
            (
                Coord::new(vec![0, 0]),
                TimeSeries::new(c1, Granularity::Monthly),
            ),
            (
                Coord::new(vec![1, 0]),
                TimeSeries::new(c2, Granularity::Monthly),
            ),
        ];
        let ds = Dataset::from_base(schema, base).unwrap();
        let r1 = node(&ds, vec![STAR, 0]);
        let c1n = node(&ds, vec![0, 0]);
        assert!(weight_variance(&ds, &[r1], c1n) > 1e-4);
    }

    #[test]
    fn historical_error_zero_for_perfectly_proportional_data() {
        let ds = dataset();
        let r1 = node(&ds, vec![STAR, 0]);
        let c1 = node(&ds, vec![0, 0]);
        let e = historical_error(&ds, &[r1], c1, AccuracyMeasure::Smape);
        assert!(e < 1e-12, "error {e}");
    }

    #[test]
    fn historical_error_positive_for_unstable_scheme() {
        let schema = Schema::new(
            vec![
                Dimension::new("city", vec!["C1".into(), "C2".into()]),
                Dimension::new("region", vec!["R1".into()]),
            ],
            vec![FunctionalDependency::new(0, 1, vec![0, 0])],
        )
        .unwrap();
        let c1 = vec![1.0, 9.0, 1.0, 9.0, 1.0, 9.0];
        let c2 = vec![9.0, 1.0, 9.0, 1.0, 9.0, 1.0];
        let base = vec![
            (
                Coord::new(vec![0, 0]),
                TimeSeries::new(c1, Granularity::Monthly),
            ),
            (
                Coord::new(vec![1, 0]),
                TimeSeries::new(c2, Granularity::Monthly),
            ),
        ];
        let ds = Dataset::from_base(schema, base).unwrap();
        let r1 = node(&ds, vec![STAR, 0]);
        let c1n = node(&ds, vec![0, 0]);
        // Disaggregating the flat region series cannot reproduce the
        // oscillating child.
        let e = historical_error(&ds, &[r1], c1n, AccuracyMeasure::Smape);
        assert!(e > 0.2, "error {e}");
    }

    #[test]
    fn derive_forecast_applies_weight_to_sum() {
        let fc = derive_forecast(&[&[1.0, 2.0], &[3.0, 4.0]], 0.5);
        assert_eq!(fc, vec![2.0, 3.0]);
        assert!(derive_forecast(&[], 1.0).is_empty());
    }

    #[test]
    fn zero_history_sources_give_zero_weight() {
        let schema = Schema::flat(vec![Dimension::new("d", vec!["a".into(), "b".into()])]).unwrap();
        let base = vec![
            (
                Coord::new(vec![0]),
                TimeSeries::new(vec![0.0; 4], Granularity::Monthly),
            ),
            (
                Coord::new(vec![1]),
                TimeSeries::new(vec![1.0; 4], Granularity::Monthly),
            ),
        ];
        let ds = Dataset::from_base(schema, base).unwrap();
        let a = node(&ds, vec![0]);
        let b = node(&ds, vec![1]);
        assert_eq!(derivation_weight(&ds, &[a], b), 0.0);
        assert!(weight_series(&ds, &[a], b).is_empty());
        assert_eq!(weight_variance(&ds, &[a], b), 0.0);
    }

    #[test]
    fn partial_history_weight() {
        let ds = dataset();
        let r1 = node(&ds, vec![STAR, 0]);
        let c1 = node(&ds, vec![0, 0]);
        // Proportional data: prefix weight equals full weight.
        let k_full = derivation_weight(&ds, &[r1], c1);
        let k_half = derivation_weight_over(&ds, &[r1], c1, 4);
        assert!((k_full - k_half).abs() < 1e-12);
    }
}
