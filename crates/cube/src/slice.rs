//! Sub-cube extraction: slice a data set down to a region of the cube.
//!
//! Slicing keeps only the base series matching a set of dimension
//! predicates and rebuilds the hyper graph underneath — the standard
//! OLAP *slice/dice* operation lifted to the time series cube. Useful for
//! running the advisor on a department's slice, for test fixtures, and
//! for interactive exploration.

use crate::dataset::Dataset;
use crate::graph::{Coord, STAR};
use crate::query::DimSelector;
use crate::{CubeError, Result};

/// Builds the sub-cube containing the base series selected by
/// `selectors` (one per dimension; [`DimSelector::All`] keeps every
/// value, [`DimSelector::Value`] pins one, [`DimSelector::GroupBy`] is
/// treated as [`DimSelector::All`]).
///
/// The sliced data set keeps the full schema (dimension domains are not
/// re-densified), so coordinates remain comparable across slices.
pub fn slice_dataset(dataset: &Dataset, selectors: &[DimSelector]) -> Result<Dataset> {
    let g = dataset.graph();
    let schema = g.schema();
    if selectors.len() != schema.dim_count() {
        return Err(CubeError::InvalidCoordinate(format!(
            "slice has {} selectors, schema has {} dimensions",
            selectors.len(),
            schema.dim_count()
        )));
    }
    // Translate to a pattern coordinate.
    let mut pattern = vec![STAR; selectors.len()];
    for (d, sel) in selectors.iter().enumerate() {
        if let DimSelector::Value(label) = sel {
            let idx = schema.dimensions()[d].value_index(label).ok_or_else(|| {
                CubeError::NotFound(format!(
                    "value {label} in dimension {}",
                    schema.dimensions()[d].name()
                ))
            })?;
            pattern[d] = idx;
        }
    }
    let pattern = Coord::new(pattern);

    let base: Vec<(Coord, fdc_forecast::TimeSeries)> = g
        .base_nodes()
        .iter()
        .filter(|&&b| pattern.matches_base(g.coord(b)))
        .map(|&b| (g.coord(b).clone(), dataset.series(b).clone()))
        .collect();
    if base.is_empty() {
        return Err(CubeError::NotFound(
            "slice does not match any base series".into(),
        ));
    }
    Dataset::from_base(schema.clone(), base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Dimension, FunctionalDependency, Schema};
    use fdc_forecast::{Granularity, TimeSeries};

    fn dataset() -> Dataset {
        let schema = Schema::new(
            vec![
                Dimension::new(
                    "city",
                    vec!["C1".into(), "C2".into(), "C3".into(), "C4".into()],
                ),
                Dimension::new("region", vec!["R1".into(), "R2".into()]),
                Dimension::new("product", vec!["P1".into(), "P2".into()]),
            ],
            vec![FunctionalDependency::new(0, 1, vec![0, 0, 1, 1])],
        )
        .unwrap();
        let region_of = [0u32, 0, 1, 1];
        let mut base = Vec::new();
        for city in 0..4u32 {
            for product in 0..2u32 {
                let values = (0..8).map(|t| (city + product + t) as f64 + 1.0).collect();
                base.push((
                    Coord::new(vec![city, region_of[city as usize], product]),
                    TimeSeries::new(values, Granularity::Monthly),
                ));
            }
        }
        Dataset::from_base(schema, base).unwrap()
    }

    #[test]
    fn slice_by_region_keeps_matching_cities() {
        let ds = dataset();
        let sliced = slice_dataset(
            &ds,
            &[
                DimSelector::All,
                DimSelector::Value("R1".into()),
                DimSelector::All,
            ],
        )
        .unwrap();
        // Cities C1, C2 × products P1, P2 = 4 base series.
        assert_eq!(sliced.graph().base_nodes().len(), 4);
        for &b in sliced.graph().base_nodes() {
            assert_eq!(sliced.graph().coord(b).values()[1], 0);
        }
        // The slice's total equals the original region aggregate.
        let orig_region = ds.graph().node(&Coord::new(vec![STAR, 0, STAR])).unwrap();
        let sliced_top = sliced.graph().top_node();
        assert_eq!(
            sliced.series(sliced_top).values(),
            ds.series(orig_region).values()
        );
    }

    #[test]
    fn slice_by_product_crosses_the_hierarchy() {
        let ds = dataset();
        let sliced = slice_dataset(
            &ds,
            &[
                DimSelector::All,
                DimSelector::All,
                DimSelector::Value("P2".into()),
            ],
        )
        .unwrap();
        assert_eq!(sliced.graph().base_nodes().len(), 4);
        assert!(sliced.node_count() < ds.node_count());
    }

    #[test]
    fn group_by_selector_behaves_like_all() {
        let ds = dataset();
        let a =
            slice_dataset(&ds, &[DimSelector::All, DimSelector::All, DimSelector::All]).unwrap();
        let b = slice_dataset(
            &ds,
            &[DimSelector::GroupBy, DimSelector::All, DimSelector::All],
        )
        .unwrap();
        assert_eq!(a.graph().base_nodes().len(), b.graph().base_nodes().len());
    }

    #[test]
    fn slice_errors_are_reported() {
        let ds = dataset();
        // Wrong arity.
        assert!(slice_dataset(&ds, &[DimSelector::All]).is_err());
        // Unknown value.
        assert!(slice_dataset(
            &ds,
            &[
                DimSelector::Value("C9".into()),
                DimSelector::All,
                DimSelector::All
            ]
        )
        .is_err());
        // Contradictory predicates (C1 is in R1, not R2) → empty slice.
        assert!(slice_dataset(
            &ds,
            &[
                DimSelector::Value("C1".into()),
                DimSelector::Value("R2".into()),
                DimSelector::All
            ]
        )
        .is_err());
    }
}
