//! Dimension schema with functional dependencies.
//!
//! A data set has categorical dimensions (besides time and the measure);
//! some of them may be functionally dependent on others — the paper's
//! running example has *city → region* (§II-A). The schema owns the
//! dimension value domains and the dependency mappings, and provides the
//! coordinate canonicalization that lets the hyper graph "explicitly
//! encode functional dependencies" (property 3 of the graph).

use crate::{CubeError, Result};

/// A categorical dimension: a name plus its value domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dimension {
    name: String,
    values: Vec<String>,
}

impl Dimension {
    /// Creates a dimension from a name and value labels.
    pub fn new(name: impl Into<String>, values: Vec<String>) -> Self {
        Dimension {
            name: name.into(),
            values,
        }
    }

    /// Dimension name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Value labels in index order.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// Number of distinct values.
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }

    /// Index of a value label.
    pub fn value_index(&self, label: &str) -> Option<u32> {
        self.values
            .iter()
            .position(|v| v == label)
            .map(|i| i as u32)
    }
}

/// A functional dependency `determinant → dependent`: every value of the
/// determinant dimension maps to exactly one value of the dependent
/// dimension (each city lies in exactly one region).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalDependency {
    /// Index of the determining dimension (e.g. city).
    pub determinant: usize,
    /// Index of the determined dimension (e.g. region).
    pub dependent: usize,
    /// `mapping[v]` is the dependent value index for determinant value `v`.
    pub mapping: Vec<u32>,
}

impl FunctionalDependency {
    /// Creates a dependency with an explicit value mapping.
    pub fn new(determinant: usize, dependent: usize, mapping: Vec<u32>) -> Self {
        FunctionalDependency {
            determinant,
            dependent,
            mapping,
        }
    }
}

/// The full dimension schema: dimensions plus functional dependencies.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    dimensions: Vec<Dimension>,
    dependencies: Vec<FunctionalDependency>,
}

impl Schema {
    /// Creates and validates a schema.
    ///
    /// Validation checks: at least one dimension, non-empty value domains,
    /// dependency indices in range, mapping lengths and targets in range,
    /// no dimension determined by two different dependencies, and no
    /// dependency cycles (chains like *city → region → country* are fine).
    pub fn new(
        dimensions: Vec<Dimension>,
        dependencies: Vec<FunctionalDependency>,
    ) -> Result<Self> {
        if dimensions.is_empty() {
            return Err(CubeError::InvalidSchema(
                "a schema needs at least one categorical dimension".into(),
            ));
        }
        for (i, d) in dimensions.iter().enumerate() {
            if d.values.is_empty() {
                return Err(CubeError::InvalidSchema(format!(
                    "dimension {i} ({}) has an empty value domain",
                    d.name
                )));
            }
        }
        let n = dimensions.len();
        let mut determined = vec![false; n];
        for fd in &dependencies {
            if fd.determinant >= n || fd.dependent >= n {
                return Err(CubeError::InvalidSchema(format!(
                    "dependency {} -> {} references a missing dimension",
                    fd.determinant, fd.dependent
                )));
            }
            if fd.determinant == fd.dependent {
                return Err(CubeError::InvalidSchema(
                    "a dimension cannot determine itself".into(),
                ));
            }
            if determined[fd.dependent] {
                return Err(CubeError::InvalidSchema(format!(
                    "dimension {} is determined by more than one dependency",
                    dimensions[fd.dependent].name
                )));
            }
            determined[fd.dependent] = true;
            if fd.mapping.len() != dimensions[fd.determinant].cardinality() {
                return Err(CubeError::InvalidSchema(format!(
                    "dependency mapping for {} has {} entries, expected {}",
                    dimensions[fd.determinant].name,
                    fd.mapping.len(),
                    dimensions[fd.determinant].cardinality()
                )));
            }
            let target_card = dimensions[fd.dependent].cardinality() as u32;
            if fd.mapping.iter().any(|&v| v >= target_card) {
                return Err(CubeError::InvalidSchema(format!(
                    "dependency mapping for {} targets a value outside {}",
                    dimensions[fd.determinant].name, dimensions[fd.dependent].name
                )));
            }
        }
        // Cycle check: follow determinant → dependent edges.
        for start in 0..n {
            let mut seen = vec![false; n];
            let mut cur = start;
            loop {
                if seen[cur] {
                    return Err(CubeError::InvalidSchema(
                        "functional dependencies form a cycle".into(),
                    ));
                }
                seen[cur] = true;
                match dependencies.iter().find(|fd| fd.determinant == cur) {
                    Some(fd) => cur = fd.dependent,
                    None => break,
                }
            }
        }
        Ok(Schema {
            dimensions,
            dependencies,
        })
    }

    /// Convenience constructor for schemas without dependencies.
    pub fn flat(dimensions: Vec<Dimension>) -> Result<Self> {
        Schema::new(dimensions, Vec::new())
    }

    /// The dimensions in index order.
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dimensions
    }

    /// Number of dimensions.
    pub fn dim_count(&self) -> usize {
        self.dimensions.len()
    }

    /// The functional dependencies.
    pub fn dependencies(&self) -> &[FunctionalDependency] {
        &self.dependencies
    }

    /// Index of the dimension with the given name.
    pub fn dim_index(&self, name: &str) -> Option<usize> {
        self.dimensions.iter().position(|d| d.name == name)
    }

    /// Whether `dim` is the dependent side of some dependency.
    pub fn is_determined(&self, dim: usize) -> bool {
        self.dependencies.iter().any(|fd| fd.dependent == dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn city_region_schema() -> Schema {
        let city = Dimension::new(
            "city",
            vec!["C1".into(), "C2".into(), "C3".into(), "C4".into()],
        );
        let region = Dimension::new("region", vec!["R1".into(), "R2".into()]);
        let product = Dimension::new("product", vec!["P1".into(), "P2".into()]);
        Schema::new(
            vec![city, region, product],
            vec![FunctionalDependency::new(0, 1, vec![0, 0, 1, 1])],
        )
        .unwrap()
    }

    #[test]
    fn valid_schema_accessors() {
        let s = city_region_schema();
        assert_eq!(s.dim_count(), 3);
        assert_eq!(s.dim_index("region"), Some(1));
        assert_eq!(s.dim_index("missing"), None);
        assert!(s.is_determined(1));
        assert!(!s.is_determined(0));
        assert_eq!(s.dimensions()[0].value_index("C3"), Some(2));
        assert_eq!(s.dimensions()[0].value_index("C9"), None);
        assert_eq!(s.dimensions()[1].cardinality(), 2);
    }

    #[test]
    fn rejects_empty_schema_and_empty_domains() {
        assert!(Schema::flat(vec![]).is_err());
        assert!(Schema::flat(vec![Dimension::new("d", vec![])]).is_err());
    }

    #[test]
    fn rejects_self_dependency() {
        let d = Dimension::new("d", vec!["a".into()]);
        assert!(Schema::new(vec![d], vec![FunctionalDependency::new(0, 0, vec![0])]).is_err());
    }

    #[test]
    fn rejects_out_of_range_dependency() {
        let d = Dimension::new("d", vec!["a".into()]);
        assert!(Schema::new(vec![d], vec![FunctionalDependency::new(0, 5, vec![0])]).is_err());
    }

    #[test]
    fn rejects_bad_mapping_length_and_target() {
        let a = Dimension::new("a", vec!["x".into(), "y".into()]);
        let b = Dimension::new("b", vec!["u".into()]);
        // Wrong length.
        assert!(Schema::new(
            vec![a.clone(), b.clone()],
            vec![FunctionalDependency::new(0, 1, vec![0])]
        )
        .is_err());
        // Target out of range.
        assert!(Schema::new(
            vec![a, b],
            vec![FunctionalDependency::new(0, 1, vec![0, 7])]
        )
        .is_err());
    }

    #[test]
    fn rejects_double_determination() {
        let a = Dimension::new("a", vec!["x".into()]);
        let b = Dimension::new("b", vec!["y".into()]);
        let c = Dimension::new("c", vec!["z".into()]);
        assert!(Schema::new(
            vec![a, b, c],
            vec![
                FunctionalDependency::new(0, 2, vec![0]),
                FunctionalDependency::new(1, 2, vec![0]),
            ]
        )
        .is_err());
    }

    #[test]
    fn rejects_cycles_but_allows_chains() {
        let a = Dimension::new("a", vec!["x".into()]);
        let b = Dimension::new("b", vec!["y".into()]);
        let c = Dimension::new("c", vec!["z".into()]);
        // Chain a → b → c is fine.
        assert!(Schema::new(
            vec![a.clone(), b.clone(), c.clone()],
            vec![
                FunctionalDependency::new(0, 1, vec![0]),
                FunctionalDependency::new(1, 2, vec![0]),
            ]
        )
        .is_ok());
        // Cycle a → b → a is rejected.
        assert!(Schema::new(
            vec![a, b, c],
            vec![
                FunctionalDependency::new(0, 1, vec![0]),
                FunctionalDependency::new(1, 0, vec![0]),
            ]
        )
        .is_err());
    }
}
