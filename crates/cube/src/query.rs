//! Node-level queries against the hyper graph.
//!
//! A query "describes one or several nodes in the hyper graph" (§II-A):
//! equality predicates pin dimensions to values, unmentioned dimensions
//! are aggregated (star), and a GROUP BY over a dimension expands to one
//! node per value. This module is the logical layer; the SQL-ish surface
//! syntax lives in `fdc-f2db`.

use crate::graph::{Coord, NodeId, TimeSeriesGraph, STAR};
use crate::{CubeError, Result};

/// Per-dimension selector of a node query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimSelector {
    /// Aggregate over the dimension (the default for unmentioned dims).
    All,
    /// Pin the dimension to one value label.
    Value(String),
    /// Expand the query into one node per value of this dimension
    /// (GROUP BY).
    GroupBy,
}

/// A declarative node query: one selector per dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeQuery {
    selectors: Vec<DimSelector>,
}

impl NodeQuery {
    /// A query aggregating over every dimension (the top node).
    pub fn all(dim_count: usize) -> Self {
        NodeQuery {
            selectors: vec![DimSelector::All; dim_count],
        }
    }

    /// Builds a query from named predicates: `(dimension, selector)`
    /// pairs; unmentioned dimensions default to [`DimSelector::All`].
    pub fn from_predicates(
        graph: &TimeSeriesGraph,
        predicates: &[(&str, DimSelector)],
    ) -> Result<Self> {
        let mut selectors = vec![DimSelector::All; graph.schema().dim_count()];
        for (name, sel) in predicates {
            let d = graph
                .schema()
                .dim_index(name)
                .ok_or_else(|| CubeError::NotFound(format!("dimension {name}")))?;
            selectors[d] = sel.clone();
        }
        Ok(NodeQuery { selectors })
    }

    /// Sets the selector of one dimension by index.
    pub fn with(mut self, dim: usize, selector: DimSelector) -> Self {
        self.selectors[dim] = selector;
        self
    }

    /// The selectors per dimension.
    pub fn selectors(&self) -> &[DimSelector] {
        &self.selectors
    }

    /// Resolves the query to its node set.
    ///
    /// Without GROUP BY selectors the result has exactly one entry.
    /// Each GROUP BY dimension multiplies the result by its (present)
    /// values; nodes without data are skipped.
    pub fn resolve(&self, graph: &TimeSeriesGraph) -> Result<Vec<NodeId>> {
        if self.selectors.len() != graph.schema().dim_count() {
            return Err(CubeError::InvalidCoordinate(format!(
                "query has {} selectors, schema has {} dimensions",
                self.selectors.len(),
                graph.schema().dim_count()
            )));
        }
        // Translate fixed selectors, collect group-by dims.
        let mut fixed = vec![STAR; self.selectors.len()];
        let mut group_dims = Vec::new();
        for (d, sel) in self.selectors.iter().enumerate() {
            match sel {
                DimSelector::All => {}
                DimSelector::Value(label) => {
                    let idx = graph.schema().dimensions()[d]
                        .value_index(label)
                        .ok_or_else(|| {
                            CubeError::NotFound(format!(
                                "value {label} in dimension {}",
                                graph.schema().dimensions()[d].name()
                            ))
                        })?;
                    fixed[d] = idx;
                }
                DimSelector::GroupBy => group_dims.push(d),
            }
        }
        // Expand group-by dimensions over their value domains.
        let mut coords = vec![fixed];
        for &d in &group_dims {
            let card = graph.schema().dimensions()[d].cardinality() as u32;
            let mut next = Vec::with_capacity(coords.len() * card as usize);
            for c in &coords {
                for v in 0..card {
                    let mut cc = c.clone();
                    cc[d] = v;
                    next.push(cc);
                }
            }
            coords = next;
        }
        let mut nodes = Vec::new();
        for vals in coords {
            if let Some(id) = graph.resolve(&Coord::new(vals)) {
                nodes.push(id);
            } else if group_dims.is_empty() {
                return Err(CubeError::NotFound(
                    "query does not match any node with data".into(),
                ));
            }
        }
        if nodes.is_empty() {
            return Err(CubeError::NotFound(
                "query does not match any node with data".into(),
            ));
        }
        Ok(nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Dimension, FunctionalDependency, Schema};

    fn graph() -> TimeSeriesGraph {
        let schema = Schema::new(
            vec![
                Dimension::new(
                    "city",
                    vec!["C1".into(), "C2".into(), "C3".into(), "C4".into()],
                ),
                Dimension::new("region", vec!["R1".into(), "R2".into()]),
                Dimension::new("product", vec!["P1".into(), "P2".into()]),
            ],
            vec![FunctionalDependency::new(0, 1, vec![0, 0, 1, 1])],
        )
        .unwrap();
        let region_of = [0u32, 0, 1, 1];
        let mut base = Vec::new();
        for city in 0..4u32 {
            for product in 0..2u32 {
                base.push(Coord::new(vec![city, region_of[city as usize], product]));
            }
        }
        TimeSeriesGraph::build(schema, &base).unwrap()
    }

    #[test]
    fn query1_of_figure1_resolves_base_node() {
        // SELECT ... WHERE product='P2' AND city='C4' → node C4,R2,P2.
        let g = graph();
        let q = NodeQuery::from_predicates(
            &g,
            &[
                ("product", DimSelector::Value("P2".into())),
                ("city", DimSelector::Value("C4".into())),
            ],
        )
        .unwrap();
        let nodes = q.resolve(&g).unwrap();
        assert_eq!(nodes.len(), 1);
        assert_eq!(g.coord(nodes[0]).values(), &[3, 1, 1]);
    }

    #[test]
    fn query2_of_figure1_resolves_aggregate_node() {
        // SELECT SUM ... WHERE product='P2' AND region='R2' → node *,R2,P2.
        let g = graph();
        let q = NodeQuery::from_predicates(
            &g,
            &[
                ("product", DimSelector::Value("P2".into())),
                ("region", DimSelector::Value("R2".into())),
            ],
        )
        .unwrap();
        let nodes = q.resolve(&g).unwrap();
        assert_eq!(nodes.len(), 1);
        assert_eq!(g.coord(nodes[0]).values(), &[STAR, 1, 1]);
    }

    #[test]
    fn empty_predicates_resolve_top() {
        let g = graph();
        let q = NodeQuery::all(3);
        let nodes = q.resolve(&g).unwrap();
        assert_eq!(nodes, vec![g.top_node()]);
    }

    #[test]
    fn group_by_expands_to_one_node_per_value() {
        let g = graph();
        let q = NodeQuery::from_predicates(
            &g,
            &[
                ("product", DimSelector::Value("P1".into())),
                ("region", DimSelector::GroupBy),
            ],
        )
        .unwrap();
        let nodes = q.resolve(&g).unwrap();
        assert_eq!(nodes.len(), 2);
        for n in nodes {
            assert_eq!(g.coord(n).values()[2], 0);
            assert_ne!(g.coord(n).values()[1], STAR);
        }
    }

    #[test]
    fn unknown_dimension_and_value_are_errors() {
        let g = graph();
        assert!(
            NodeQuery::from_predicates(&g, &[("nope", DimSelector::Value("x".into()))]).is_err()
        );
        let q = NodeQuery::from_predicates(&g, &[("city", DimSelector::Value("C9".into()))])
            .unwrap_err_or(&g);
        assert!(q);
    }

    /// Helper extension so the test above reads naturally.
    trait UnwrapErrOr {
        fn unwrap_err_or(self, graph: &TimeSeriesGraph) -> bool;
    }

    impl UnwrapErrOr for crate::Result<NodeQuery> {
        fn unwrap_err_or(self, graph: &TimeSeriesGraph) -> bool {
            match self {
                Err(_) => true,
                Ok(q) => q.resolve(graph).is_err(),
            }
        }
    }

    #[test]
    fn fd_implied_query_canonicalizes() {
        // WHERE city='C1' (region unspecified) resolves to the base node
        // C1,R1,* — wait: product unspecified → star. City concrete forces
        // region. Node C1,R1,* exists.
        let g = graph();
        let q =
            NodeQuery::from_predicates(&g, &[("city", DimSelector::Value("C1".into()))]).unwrap();
        let nodes = q.resolve(&g).unwrap();
        assert_eq!(g.coord(nodes[0]).values(), &[0, 0, STAR]);
    }

    #[test]
    fn wrong_arity_query_rejected() {
        let g = graph();
        let q = NodeQuery::all(2);
        assert!(q.resolve(&g).is_err());
    }
}
