//! A data set: the hyper graph plus one materialized time series per
//! node.
//!
//! Aggregates are computed bottom-up along one hyperedge per node, which
//! reproduces the paper's setup of creating "all aggregated time series
//! for the whole time series graph" up front to avoid repeated scans
//! (§VI-A).

use crate::graph::{Coord, NodeId, TimeSeriesGraph};
use crate::schema::Schema;
use crate::{CubeError, Result};
use fdc_forecast::TimeSeries;

/// The full multi-dimensional data set: graph + per-node series.
#[derive(Debug, Clone)]
pub struct Dataset {
    graph: TimeSeriesGraph,
    series: Vec<TimeSeries>,
}

impl Dataset {
    /// Builds the hyper graph over the given base series and materializes
    /// every aggregate.
    ///
    /// All base series must be aligned: same logical start, length and
    /// granularity.
    pub fn from_base(schema: Schema, base: Vec<(Coord, TimeSeries)>) -> Result<Self> {
        if base.is_empty() {
            return Err(CubeError::InvalidData("no base series supplied".into()));
        }
        let (first_len, first_start, first_gran) = {
            let first = &base[0].1;
            (first.len(), first.start(), first.granularity())
        };
        let first = &base[0].1;
        if first.is_empty() {
            return Err(CubeError::InvalidData("base series are empty".into()));
        }
        for (c, s) in &base {
            if s.len() != first.len()
                || s.start() != first.start()
                || s.granularity() != first.granularity()
            {
                return Err(CubeError::InvalidData(format!(
                    "base series at {:?} is misaligned with the first series",
                    c.values()
                )));
            }
        }

        let coords: Vec<Coord> = base.iter().map(|(c, _)| c.clone()).collect();
        let graph = TimeSeriesGraph::build(schema, &coords)?;

        // Place base series, then aggregate level by level.
        let n = graph.node_count();
        let zero = TimeSeries::with_start(vec![0.0; first_len], first_start, first_gran);
        let mut series: Vec<TimeSeries> = vec![zero; n];
        for ((_, s), &id) in base.into_iter().zip(graph.base_nodes()) {
            series[id] = s;
        }
        for v in graph.nodes_by_level() {
            if graph.level(v) == 0 {
                continue;
            }
            let edge = graph
                .edges(v)
                .first()
                .ok_or_else(|| CubeError::InvalidData("aggregate node without children".into()))?;
            let mut values = vec![0.0; first_len];
            for &c in &edge.children {
                for (acc, x) in values.iter_mut().zip(series[c].values()) {
                    *acc += x;
                }
            }
            series[v] = TimeSeries::with_start(values, first_start, first_gran);
        }

        Ok(Dataset { graph, series })
    }

    /// The underlying hyper graph.
    pub fn graph(&self) -> &TimeSeriesGraph {
        &self.graph
    }

    /// The (materialized) series of node `v`.
    pub fn series(&self, v: NodeId) -> &TimeSeries {
        &self.series[v]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Length of every series in the data set.
    pub fn series_len(&self) -> usize {
        self.series.first().map_or(0, |s| s.len())
    }

    /// Returns a new data set with an additional base series (e.g. a new
    /// product started selling). The hyper graph is rebuilt, so node ids
    /// change — existing configurations must be re-advised (or
    /// warm-started) against the result.
    ///
    /// The new series must be aligned with the existing ones and its
    /// coordinate fully concrete, canonical and previously absent.
    pub fn with_added_base(&self, coord: Coord, series: TimeSeries) -> Result<Dataset> {
        let g = self.graph();
        let mut base: Vec<(Coord, TimeSeries)> = g
            .base_nodes()
            .iter()
            .map(|&b| (g.coord(b).clone(), self.series(b).clone()))
            .collect();
        base.push((coord, series));
        Dataset::from_base(g.schema().clone(), base)
    }

    /// Appends one new observation per base series (keyed by base node
    /// id) and rolls all aggregates forward — the time-advance operation
    /// of the maintenance processor (§V). Every base node must be present
    /// exactly once.
    pub fn advance_time(&mut self, new_values: &[(NodeId, f64)]) -> Result<()> {
        let base = self.graph.base_nodes();
        if new_values.len() != base.len() {
            return Err(CubeError::InvalidData(format!(
                "expected {} base values, got {}",
                base.len(),
                new_values.len()
            )));
        }
        let mut pending = vec![f64::NAN; self.graph.node_count()];
        for &(id, v) in new_values {
            if !base.contains(&id) {
                return Err(CubeError::InvalidData(format!(
                    "node {id} is not a base node"
                )));
            }
            if !pending[id].is_nan() {
                return Err(CubeError::InvalidData(format!(
                    "duplicate value for base node {id}"
                )));
            }
            pending[id] = v;
        }
        for v in self.graph.nodes_by_level() {
            if self.graph.level(v) == 0 {
                continue;
            }
            let edge = &self.graph.edges(v)[0];
            pending[v] = edge.children.iter().map(|&c| pending[c]).sum();
        }
        for (s, &p) in self.series.iter_mut().zip(&pending) {
            s.push(p);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::STAR;
    use crate::schema::{Dimension, FunctionalDependency};
    use fdc_forecast::Granularity;

    fn schema() -> Schema {
        Schema::new(
            vec![
                Dimension::new(
                    "city",
                    vec!["C1".into(), "C2".into(), "C3".into(), "C4".into()],
                ),
                Dimension::new("region", vec!["R1".into(), "R2".into()]),
                Dimension::new("product", vec!["P1".into(), "P2".into()]),
            ],
            vec![FunctionalDependency::new(0, 1, vec![0, 0, 1, 1])],
        )
        .unwrap()
    }

    fn dataset() -> Dataset {
        let region_of = [0u32, 0, 1, 1];
        let mut base = Vec::new();
        for city in 0..4u32 {
            for product in 0..2u32 {
                let values: Vec<f64> = (0..10)
                    .map(|t| (city as f64 + 1.0) * 10.0 + product as f64 + t as f64)
                    .collect();
                base.push((
                    Coord::new(vec![city, region_of[city as usize], product]),
                    TimeSeries::new(values, Granularity::Monthly),
                ));
            }
        }
        Dataset::from_base(schema(), base).unwrap()
    }

    #[test]
    fn aggregates_equal_sum_of_base_descendants() {
        let ds = dataset();
        let g = ds.graph();
        for v in 0..g.node_count() {
            let desc = g.base_descendants(v);
            let mut expect = vec![0.0; ds.series_len()];
            for b in desc {
                for (acc, x) in expect.iter_mut().zip(ds.series(b).values()) {
                    *acc += x;
                }
            }
            for (a, e) in ds.series(v).values().iter().zip(&expect) {
                assert!(
                    (a - e).abs() < 1e-9,
                    "node {}",
                    g.coord(v).display(g.schema())
                );
            }
        }
    }

    #[test]
    fn top_node_is_total_sum() {
        let ds = dataset();
        let top = ds.graph().top_node();
        let total0: f64 = ds
            .graph()
            .base_nodes()
            .iter()
            .map(|&b| ds.series(b).values()[0])
            .sum();
        assert!((ds.series(top).values()[0] - total0).abs() < 1e-9);
    }

    #[test]
    fn rejects_misaligned_base_series() {
        let s = schema();
        let base = vec![
            (
                Coord::new(vec![0, 0, 0]),
                TimeSeries::new(vec![1.0, 2.0], Granularity::Monthly),
            ),
            (
                Coord::new(vec![1, 0, 0]),
                TimeSeries::new(vec![1.0], Granularity::Monthly),
            ),
        ];
        assert!(Dataset::from_base(s, base).is_err());
    }

    #[test]
    fn rejects_empty_inputs() {
        assert!(Dataset::from_base(schema(), vec![]).is_err());
        let base = vec![(
            Coord::new(vec![0, 0, 0]),
            TimeSeries::new(vec![], Granularity::Monthly),
        )];
        assert!(Dataset::from_base(schema(), base).is_err());
    }

    #[test]
    fn with_added_base_extends_the_graph() {
        let ds = dataset();
        // The fixture covers all 4 cities × 2 products; build a smaller
        // cube first, then add one series back.
        let g = ds.graph();
        let partial: Vec<(Coord, TimeSeries)> = g
            .base_nodes()
            .iter()
            .take(7)
            .map(|&b| (g.coord(b).clone(), ds.series(b).clone()))
            .collect();
        let small = Dataset::from_base(schema(), partial).unwrap();
        assert_eq!(small.graph().base_nodes().len(), 7);

        let missing = g.base_nodes()[7];
        let grown = small
            .with_added_base(g.coord(missing).clone(), ds.series(missing).clone())
            .unwrap();
        assert_eq!(grown.graph().base_nodes().len(), 8);
        // The grown cube's total equals the original's.
        let a = grown.series(grown.graph().top_node()).values().to_vec();
        let b = ds.series(ds.graph().top_node()).values().to_vec();
        assert_eq!(a, b);
        // Duplicates and misaligned series are rejected.
        assert!(grown
            .with_added_base(g.coord(missing).clone(), ds.series(missing).clone())
            .is_err());
        assert!(small
            .with_added_base(
                g.coord(missing).clone(),
                TimeSeries::new(vec![1.0], Granularity::Monthly)
            )
            .is_err());
    }

    #[test]
    fn advance_time_updates_all_levels() {
        let mut ds = dataset();
        let n_before = ds.series_len();
        let new: Vec<(NodeId, f64)> = ds
            .graph()
            .base_nodes()
            .iter()
            .map(|&b| (b, 100.0))
            .collect();
        ds.advance_time(&new).unwrap();
        assert_eq!(ds.series_len(), n_before + 1);
        let top = ds.graph().top_node();
        assert!((ds.series(top).values().last().unwrap() - 800.0).abs() < 1e-9);
        let r1 = ds.graph().node(&Coord::new(vec![STAR, 0, STAR])).unwrap();
        assert!((ds.series(r1).values().last().unwrap() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn advance_time_validates_input() {
        let mut ds = dataset();
        // Too few values.
        assert!(ds.advance_time(&[(0, 1.0)]).is_err());
        // Duplicate node.
        let base = ds.graph().base_nodes().to_vec();
        let mut vals: Vec<(NodeId, f64)> = base.iter().map(|&b| (b, 1.0)).collect();
        vals[1] = vals[0];
        assert!(ds.advance_time(&vals).is_err());
        // Non-base node.
        let top = ds.graph().top_node();
        let mut vals: Vec<(NodeId, f64)> = base.iter().map(|&b| (b, 1.0)).collect();
        vals[0] = (top, 1.0);
        assert!(ds.advance_time(&vals).is_err());
    }
}
