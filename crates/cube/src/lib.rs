//! # fdc-cube
//!
//! The multi-dimensional data model of the paper (§II):
//!
//! * [`schema`] — categorical dimensions and functional dependencies
//!   between them (e.g. *city → region*),
//! * [`graph`] — the **time series hyper graph**: one node per (base or
//!   aggregated) time series instance, hyperedges assigning sets of time
//!   series to their aggregates, functional dependencies encoded
//!   explicitly (Fig. 2),
//! * [`dataset`] — base series plus eagerly materialized aggregated series
//!   for every node (§VI-A: "we initially created all aggregated time
//!   series for the whole time series graph"),
//! * [`derive`](mod@crate::derive) — derivation schemes and Gross–Sohl weights (Eq. 1–3) used
//!   to compute a node's forecasts from models at other nodes, plus the
//!   per-time-point weight series whose variance feeds the similarity
//!   indicator (§III-B),
//! * [`config`] — the **model configuration** (assignment of models and
//!   derivation schemes to nodes) and its evaluation by forecast error and
//!   model costs (§II-D),
//! * [`query`] — node-level queries (the SELECT/WHERE/GROUP BY shape of
//!   Fig. 1) resolved against the graph.

//! ## Example
//!
//! ```
//! use fdc_cube::{Coord, Dataset, Dimension, Schema, derivation_weight};
//! use fdc_forecast::{Granularity, TimeSeries};
//!
//! let schema = Schema::flat(vec![Dimension::new("store", vec!["S1".into(), "S2".into()])]).unwrap();
//! let base = vec![
//!     (Coord::new(vec![0]), TimeSeries::new(vec![1.0; 8], Granularity::Monthly)),
//!     (Coord::new(vec![1]), TimeSeries::new(vec![3.0; 8], Granularity::Monthly)),
//! ];
//! let ds = Dataset::from_base(schema, base).unwrap();
//! let top = ds.graph().top_node();
//! let s1 = ds.graph().base_nodes()[0];
//! // S1 contributes a quarter of the total: the Gross–Sohl weight for
//! // disaggregating S1 from the top model is 0.25.
//! assert!((derivation_weight(&ds, &[top], s1) - 0.25).abs() < 1e-12);
//! ```

pub mod config;
pub mod dataset;
pub mod derive;
pub mod graph;
pub mod query;
pub mod schema;
pub mod slice;

pub use config::{Configuration, ConfiguredModel, CubeSplit, NodeEstimate, Scheme};
pub use dataset::Dataset;
pub use derive::{
    derivation_weight, derive_forecast, historical_error, weight_series, weight_variance,
    SchemeKind,
};
pub use graph::{Coord, NodeId, TimeSeriesGraph, STAR};
pub use query::{DimSelector, NodeQuery};
pub use schema::{Dimension, FunctionalDependency, Schema};
pub use slice::slice_dataset;

/// Errors raised by cube construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum CubeError {
    /// The schema definition is inconsistent.
    InvalidSchema(String),
    /// A coordinate does not fit the schema or violates a functional
    /// dependency.
    InvalidCoordinate(String),
    /// Base time series are missing or misaligned.
    InvalidData(String),
    /// A node id or query did not resolve.
    NotFound(String),
}

impl std::fmt::Display for CubeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CubeError::InvalidSchema(m) => write!(f, "invalid schema: {m}"),
            CubeError::InvalidCoordinate(m) => write!(f, "invalid coordinate: {m}"),
            CubeError::InvalidData(m) => write!(f, "invalid data: {m}"),
            CubeError::NotFound(m) => write!(f, "not found: {m}"),
        }
    }
}

impl std::error::Error for CubeError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CubeError>;
