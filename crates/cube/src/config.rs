//! Model configurations and their evaluation (§II-D).
//!
//! A **model configuration** assigns forecast models to some nodes of the
//! hyper graph and a derivation scheme (source nodes + weight) to every
//! node. Its quality is judged by two measures:
//!
//! * **forecast error** — every node's error under its best known scheme,
//!   combined into one overall measure (we use the mean node SMAPE);
//! * **model costs** — the total model creation time over all models, the
//!   paper's worst-case proxy for maintenance cost, plus the plain model
//!   count reported in the figures.
//!
//! Errors are measured on a train/test split of the data
//! ([`CubeSplit`]): models are created over the training part, forecasts
//! are scored on the testing part, and derivation weights are computed
//! from the training history only.

use crate::dataset::Dataset;
use crate::derive::{derivation_weight_over, derive_forecast};
use crate::graph::NodeId;
use fdc_forecast::accuracy::AccuracyMeasure;
use fdc_forecast::{FitOptions, ForecastModel, ModelSpec, TimeSeries};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Train/test split of every node series, shared by all evaluation code.
#[derive(Debug, Clone)]
pub struct CubeSplit {
    train: Vec<TimeSeries>,
    test: Vec<Vec<f64>>,
    train_len: usize,
    measure: AccuracyMeasure,
}

impl CubeSplit {
    /// Splits every node series with the given training fraction (the
    /// paper uses about 0.8, §VI-A).
    pub fn new(dataset: &Dataset, train_frac: f64) -> Self {
        Self::with_measure(dataset, train_frac, AccuracyMeasure::Smape)
    }

    /// Like [`CubeSplit::new`] with an explicit accuracy measure.
    pub fn with_measure(dataset: &Dataset, train_frac: f64, measure: AccuracyMeasure) -> Self {
        let n = dataset.node_count();
        let mut train = Vec::with_capacity(n);
        let mut test = Vec::with_capacity(n);
        for v in 0..n {
            let (tr, te) = dataset.series(v).split(train_frac);
            train.push(tr);
            test.push(te.values().to_vec());
        }
        let train_len = train.first().map_or(0, |s| s.len());
        CubeSplit {
            train,
            test,
            train_len,
            measure,
        }
    }

    /// Training part of node `v`.
    pub fn train(&self, v: NodeId) -> &TimeSeries {
        &self.train[v]
    }

    /// Test values of node `v`.
    pub fn test(&self, v: NodeId) -> &[f64] {
        &self.test[v]
    }

    /// Number of training observations.
    pub fn train_len(&self) -> usize {
        self.train_len
    }

    /// The evaluation horizon (test length).
    pub fn horizon(&self) -> usize {
        self.test.first().map_or(0, |t| t.len())
    }

    /// The accuracy measure used for scoring.
    pub fn measure(&self) -> AccuracyMeasure {
        self.measure
    }

    /// Derivation weight `k_{S→t}` computed from the training history only
    /// (no test leakage).
    pub fn train_weight(&self, dataset: &Dataset, sources: &[NodeId], target: NodeId) -> f64 {
        derivation_weight_over(dataset, sources, target, self.train_len)
    }
}

/// A derivation scheme assigned to a node: the source nodes whose model
/// forecasts are summed, and the weight `k` applied to the sum (Eq. 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Scheme {
    /// Source node ids (each must carry a model in the configuration).
    pub sources: Vec<NodeId>,
    /// The derivation weight `k_{S→t}`.
    pub weight: f64,
}

/// A model stored in a configuration, with the bookkeeping the evaluation
/// needs: its spec, how long it took to create (the cost proxy), and its
/// cached forecasts over the test window.
pub struct ConfiguredModel {
    /// The fitted model (trained on the training split).
    pub model: Box<dyn ForecastModel>,
    /// The specification it was fitted with.
    pub spec: ModelSpec,
    /// Wall-clock creation time (model cost contribution, §II-D).
    pub creation_time: Duration,
    /// Forecasts over the test window, cached for scheme evaluation.
    pub test_forecast: Vec<f64>,
}

impl Clone for ConfiguredModel {
    fn clone(&self) -> Self {
        ConfiguredModel {
            model: self.model.clone(),
            spec: self.spec.clone(),
            creation_time: self.creation_time,
            test_forecast: self.test_forecast.clone(),
        }
    }
}

impl std::fmt::Debug for ConfiguredModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConfiguredModel")
            .field("spec", &self.spec)
            .field("creation_time", &self.creation_time)
            .finish_non_exhaustive()
    }
}

impl ConfiguredModel {
    /// Fits a model of `spec` on the training part of node `v`, timing the
    /// creation and caching the test-window forecasts.
    pub fn fit(
        split: &CubeSplit,
        v: NodeId,
        spec: &ModelSpec,
        options: &FitOptions,
    ) -> fdc_forecast::Result<Self> {
        let start = Instant::now();
        let model = spec.fit(split.train(v), options)?;
        let creation_time = start.elapsed();
        let test_forecast = model.forecast(split.horizon());
        Ok(ConfiguredModel {
            model,
            spec: spec.clone(),
            creation_time,
            test_forecast,
        })
    }
}

/// Per-node evaluation state: the best error found so far and the scheme
/// achieving it. §IV-B.1: "each node in the current configuration knows
/// its current best forecast error and associated derivation scheme".
#[derive(Debug, Clone, PartialEq)]
pub struct NodeEstimate {
    /// Best known forecast error of the node (1.0 when nothing derivable —
    /// the SMAPE of an all-zero forecast on positive data).
    pub error: f64,
    /// The scheme achieving the error, if any model can serve the node.
    pub scheme: Option<Scheme>,
}

impl Default for NodeEstimate {
    fn default() -> Self {
        NodeEstimate {
            error: 1.0,
            scheme: None,
        }
    }
}

/// A model configuration: models at some nodes plus the per-node best
/// scheme/error bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct Configuration {
    models: BTreeMap<NodeId, ConfiguredModel>,
    estimates: Vec<NodeEstimate>,
}

impl Configuration {
    /// An empty configuration over `node_count` nodes: no models, every
    /// node at the maximal error.
    pub fn new(node_count: usize) -> Self {
        Configuration {
            models: BTreeMap::new(),
            estimates: vec![NodeEstimate::default(); node_count],
        }
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.estimates.len()
    }

    /// Number of models currently stored.
    pub fn model_count(&self) -> usize {
        self.models.len()
    }

    /// Iterates over `(node, model)` pairs.
    pub fn models(&self) -> impl Iterator<Item = (NodeId, &ConfiguredModel)> {
        self.models.iter().map(|(&v, m)| (v, m))
    }

    /// Node ids that carry a model.
    pub fn model_nodes(&self) -> Vec<NodeId> {
        self.models.keys().copied().collect()
    }

    /// Whether node `v` carries a model.
    pub fn has_model(&self, v: NodeId) -> bool {
        self.models.contains_key(&v)
    }

    /// The model at node `v`, if any.
    pub fn model(&self, v: NodeId) -> Option<&ConfiguredModel> {
        self.models.get(&v)
    }

    /// The evaluation state of node `v`.
    pub fn estimate(&self, v: NodeId) -> &NodeEstimate {
        &self.estimates[v]
    }

    /// Total model cost: the sum of model creation times (§II-D's
    /// worst-case maintenance approximation).
    pub fn total_cost(&self) -> Duration {
        self.models.values().map(|m| m.creation_time).sum()
    }

    /// Overall configuration error: mean node error.
    pub fn overall_error(&self) -> f64 {
        if self.estimates.is_empty() {
            return 0.0;
        }
        self.estimates.iter().map(|e| e.error).sum::<f64>() / self.estimates.len() as f64
    }

    /// Inserts (or replaces) the model at node `v`. The caller is expected
    /// to follow up with scheme adoption for affected targets.
    pub fn insert_model(&mut self, v: NodeId, model: ConfiguredModel) {
        self.models.insert(v, model);
    }

    /// Removes the model at `v` and returns it. Estimates of nodes whose
    /// schemes referenced `v` must be recomputed via
    /// [`Configuration::recompute_nodes`].
    pub fn remove_model(&mut self, v: NodeId) -> Option<ConfiguredModel> {
        self.models.remove(&v)
    }

    /// Node ids whose current best scheme references `s`.
    pub fn dependents_of(&self, s: NodeId) -> Vec<NodeId> {
        self.estimates
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                e.scheme
                    .as_ref()
                    .is_some_and(|sch| sch.sources.contains(&s))
            })
            .map(|(v, _)| v)
            .collect()
    }

    /// Error of the scheme `sources → target` under the current models,
    /// or `None` when some source lacks a model (or there are no
    /// sources).
    pub fn scheme_error(
        &self,
        dataset: &Dataset,
        split: &CubeSplit,
        sources: &[NodeId],
        target: NodeId,
    ) -> Option<f64> {
        if sources.is_empty() {
            return None;
        }
        let mut forecasts: Vec<&[f64]> = Vec::with_capacity(sources.len());
        for s in sources {
            forecasts.push(&self.models.get(s)?.test_forecast);
        }
        let k = split.train_weight(dataset, sources, target);
        let derived = derive_forecast(&forecasts, k);
        Some(split.measure().score(split.test(target), &derived))
    }

    /// Evaluates `sources → target` and adopts it if it beats the target's
    /// current best error. Returns true when adopted.
    pub fn adopt_if_better(
        &mut self,
        dataset: &Dataset,
        split: &CubeSplit,
        sources: &[NodeId],
        target: NodeId,
    ) -> bool {
        let Some(err) = self.scheme_error(dataset, split, sources, target) else {
            return false;
        };
        if err < self.estimates[target].error {
            let weight = split.train_weight(dataset, sources, target);
            self.estimates[target] = NodeEstimate {
                error: err,
                scheme: Some(Scheme {
                    sources: sources.to_vec(),
                    weight,
                }),
            };
            true
        } else {
            false
        }
    }

    /// Re-derives the best estimate of every node in `targets` from
    /// scratch, considering: the direct scheme, every single-source scheme
    /// from a model node, and full-hyperedge aggregation schemes whose
    /// children all carry models.
    pub fn recompute_nodes(&mut self, dataset: &Dataset, split: &CubeSplit, targets: &[NodeId]) {
        let model_nodes = self.model_nodes();
        for &t in targets {
            self.estimates[t] = NodeEstimate::default();
            for &s in &model_nodes {
                self.adopt_if_better(dataset, split, &[s], t);
            }
            let edges: Vec<Vec<NodeId>> = dataset
                .graph()
                .edges(t)
                .iter()
                .map(|e| e.children.clone())
                .collect();
            for children in edges {
                if children.iter().all(|c| self.has_model(*c)) {
                    self.adopt_if_better(dataset, split, &children, t);
                }
            }
        }
    }

    /// Computes the final deployed forecast for node `v` at the given
    /// horizon, using the node's scheme and the stored models' current
    /// state. Returns `None` when the node has no scheme or a source lost
    /// its model.
    pub fn forecast_node(&self, v: NodeId, horizon: usize) -> Option<Vec<f64>> {
        let scheme = self.estimates[v].scheme.as_ref()?;
        let forecasts: Vec<Vec<f64>> = scheme
            .sources
            .iter()
            .map(|s| self.models.get(s).map(|m| m.model.forecast(horizon)))
            .collect::<Option<Vec<_>>>()?;
        let refs: Vec<&[f64]> = forecasts.iter().map(|f| f.as_slice()).collect();
        Some(derive_forecast(&refs, scheme.weight))
    }

    /// Directly sets a node's estimate (used by configuration loading and
    /// by baselines that compute estimates externally).
    pub fn set_estimate(&mut self, v: NodeId, estimate: NodeEstimate) {
        self.estimates[v] = estimate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Coord, STAR};
    use crate::schema::{Dimension, FunctionalDependency, Schema};
    use fdc_forecast::Granularity;

    fn dataset() -> Dataset {
        let schema = Schema::new(
            vec![
                Dimension::new(
                    "city",
                    vec!["C1".into(), "C2".into(), "C3".into(), "C4".into()],
                ),
                Dimension::new("region", vec!["R1".into(), "R2".into()]),
            ],
            vec![FunctionalDependency::new(0, 1, vec![0, 0, 1, 1])],
        )
        .unwrap();
        let region_of = [0u32, 0, 1, 1];
        let base = (0..4u32)
            .map(|city| {
                // Seasonal + trend, proportional across cities so schemes
                // can be accurate.
                let values: Vec<f64> = (0..40)
                    .map(|t| {
                        (city as f64 + 1.0)
                            * (20.0
                                + 0.3 * t as f64
                                + 5.0 * (2.0 * std::f64::consts::PI * (t % 4) as f64 / 4.0).sin())
                    })
                    .collect();
                (
                    Coord::new(vec![city, region_of[city as usize]]),
                    TimeSeries::new(values, Granularity::Quarterly),
                )
            })
            .collect();
        Dataset::from_base(schema, base).unwrap()
    }

    fn node(ds: &Dataset, vals: Vec<u32>) -> NodeId {
        ds.graph().node(&Coord::new(vals)).unwrap()
    }

    fn fit(split: &CubeSplit, v: NodeId) -> ConfiguredModel {
        ConfiguredModel::fit(
            split,
            v,
            &ModelSpec::default_for_period(4),
            &FitOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn split_has_expected_shapes() {
        let ds = dataset();
        let split = CubeSplit::new(&ds, 0.8);
        assert_eq!(split.train_len(), 32);
        assert_eq!(split.horizon(), 8);
        assert_eq!(split.train(0).len(), 32);
        assert_eq!(split.test(0).len(), 8);
    }

    #[test]
    fn empty_configuration_has_max_error() {
        let ds = dataset();
        let cfg = Configuration::new(ds.node_count());
        assert_eq!(cfg.model_count(), 0);
        assert_eq!(cfg.overall_error(), 1.0);
        assert_eq!(cfg.total_cost(), Duration::ZERO);
        assert!(cfg.forecast_node(0, 4).is_none());
    }

    #[test]
    fn direct_scheme_improves_node() {
        let ds = dataset();
        let split = CubeSplit::new(&ds, 0.8);
        let mut cfg = Configuration::new(ds.node_count());
        let top = ds.graph().top_node();
        cfg.insert_model(top, fit(&split, top));
        assert!(cfg.adopt_if_better(&ds, &split, &[top], top));
        let est = cfg.estimate(top);
        assert!(est.error < 0.1, "direct error {}", est.error);
        let scheme = est.scheme.as_ref().unwrap();
        assert_eq!(scheme.sources, vec![top]);
        assert!((scheme.weight - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disaggregation_serves_children_of_model_node() {
        let ds = dataset();
        let split = CubeSplit::new(&ds, 0.8);
        let mut cfg = Configuration::new(ds.node_count());
        let top = ds.graph().top_node();
        cfg.insert_model(top, fit(&split, top));
        let c1 = node(&ds, vec![0, 0]);
        assert!(cfg.adopt_if_better(&ds, &split, &[top], c1));
        let est = cfg.estimate(c1);
        // Proportional data: disaggregation is nearly as good as direct.
        assert!(est.error < 0.1, "disagg error {}", est.error);
        // Weight equals C1's share of the total = 1/10.
        assert!((est.scheme.as_ref().unwrap().weight - 0.1).abs() < 1e-6);
    }

    #[test]
    fn scheme_error_requires_models_at_sources() {
        let ds = dataset();
        let split = CubeSplit::new(&ds, 0.8);
        let cfg = Configuration::new(ds.node_count());
        assert!(cfg.scheme_error(&ds, &split, &[0], 1).is_none());
        assert!(cfg.scheme_error(&ds, &split, &[], 1).is_none());
    }

    #[test]
    fn aggregation_scheme_from_children() {
        let ds = dataset();
        let split = CubeSplit::new(&ds, 0.8);
        let mut cfg = Configuration::new(ds.node_count());
        let c1 = node(&ds, vec![0, 0]);
        let c2 = node(&ds, vec![1, 0]);
        let r1 = node(&ds, vec![STAR, 0]);
        cfg.insert_model(c1, fit(&split, c1));
        cfg.insert_model(c2, fit(&split, c2));
        assert!(cfg.adopt_if_better(&ds, &split, &[c1, c2], r1));
        assert!(cfg.estimate(r1).error < 0.1);
    }

    #[test]
    fn removal_and_recompute_restores_consistency() {
        let ds = dataset();
        let split = CubeSplit::new(&ds, 0.8);
        let mut cfg = Configuration::new(ds.node_count());
        let top = ds.graph().top_node();
        let c1 = node(&ds, vec![0, 0]);
        cfg.insert_model(top, fit(&split, top));
        cfg.insert_model(c1, fit(&split, c1));
        let all: Vec<NodeId> = (0..ds.node_count()).collect();
        cfg.recompute_nodes(&ds, &split, &all);
        assert!(cfg.estimate(c1).scheme.is_some());

        // Remove whichever model serves more nodes; its dependents must be
        // recomputed.
        let victim = if cfg.dependents_of(top).len() >= cfg.dependents_of(c1).len() {
            top
        } else {
            c1
        };
        let deps = cfg.dependents_of(victim);
        assert!(!deps.is_empty(), "one of the two models must serve nodes");
        cfg.remove_model(victim);
        cfg.recompute_nodes(&ds, &split, &deps);
        for &d in &deps {
            if let Some(s) = &cfg.estimate(d).scheme {
                assert!(!s.sources.contains(&victim));
            }
        }
        // Every remaining scheme's sources still carry models.
        for v in 0..cfg.node_count() {
            if let Some(s) = &cfg.estimate(v).scheme {
                assert!(s.sources.iter().all(|src| cfg.has_model(*src)));
            }
        }
    }

    #[test]
    fn recompute_considers_aggregation_edges() {
        let ds = dataset();
        let split = CubeSplit::new(&ds, 0.8);
        let mut cfg = Configuration::new(ds.node_count());
        let c1 = node(&ds, vec![0, 0]);
        let c2 = node(&ds, vec![1, 0]);
        let r1 = node(&ds, vec![STAR, 0]);
        cfg.insert_model(c1, fit(&split, c1));
        cfg.insert_model(c2, fit(&split, c2));
        cfg.recompute_nodes(&ds, &split, &[r1]);
        assert!(cfg.estimate(r1).scheme.is_some());
    }

    #[test]
    fn overall_error_decreases_with_useful_models() {
        let ds = dataset();
        let split = CubeSplit::new(&ds, 0.8);
        let mut cfg = Configuration::new(ds.node_count());
        let before = cfg.overall_error();
        let top = ds.graph().top_node();
        cfg.insert_model(top, fit(&split, top));
        let all: Vec<NodeId> = (0..ds.node_count()).collect();
        cfg.recompute_nodes(&ds, &split, &all);
        assert!(cfg.overall_error() < before);
    }

    #[test]
    fn forecast_node_combines_sources() {
        let ds = dataset();
        let split = CubeSplit::new(&ds, 0.8);
        let mut cfg = Configuration::new(ds.node_count());
        let top = ds.graph().top_node();
        cfg.insert_model(top, fit(&split, top));
        let c1 = node(&ds, vec![0, 0]);
        cfg.adopt_if_better(&ds, &split, &[top], c1);
        let fc = cfg.forecast_node(c1, 4).unwrap();
        assert_eq!(fc.len(), 4);
        let top_fc = cfg.model(top).unwrap().model.forecast(4);
        let k = cfg.estimate(c1).scheme.as_ref().unwrap().weight;
        for (a, b) in fc.iter().zip(&top_fc) {
            assert!((a - k * b).abs() < 1e-12);
        }
    }

    #[test]
    fn cost_accumulates_creation_times() {
        let ds = dataset();
        let split = CubeSplit::new(&ds, 0.8);
        let mut cfg = Configuration::new(ds.node_count());
        let top = ds.graph().top_node();
        let c1 = node(&ds, vec![0, 0]);
        cfg.insert_model(top, fit(&split, top));
        cfg.insert_model(c1, fit(&split, c1));
        assert_eq!(cfg.model_count(), 2);
        assert!(cfg.total_cost() > Duration::ZERO);
        let removed = cfg.remove_model(c1).unwrap();
        assert!(removed.creation_time > Duration::ZERO);
        assert_eq!(cfg.model_count(), 1);
    }
}
