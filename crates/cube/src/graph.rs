//! The directed time series hyper graph (§II-A, Fig. 2).
//!
//! Each node represents one time series instance — base series at the
//! lowest level, aggregated series above — and a hyperedge assigns the set
//! of time series that sum to an aggregate. In contrast to the aggregation
//! lattice of the classical data cube, this representation works on the
//! *instance* level: only coordinates under which base data actually
//! exists become nodes.
//!
//! The three properties the paper requires hold by construction:
//!
//! 1. **Completeness** — every aggregation possibility over the values of
//!    the categorical dimensions of the present base series is a node
//!    (built by starring every subset of dimensions of every base
//!    coordinate).
//! 2. **Sharing** — one series contributes to several aggregates (a node
//!    has one parent per free concrete dimension).
//! 3. **Functional dependencies** — coordinates are canonicalized against
//!    the schema's dependencies, so e.g. `C1,*,P2` is folded into
//!    `C1,R1,P2` and never becomes a separate node.

use crate::schema::Schema;
use crate::{CubeError, Result};
use std::collections::HashMap;

/// Sentinel value index representing the aggregation over a dimension
/// (the `*` of Fig. 2).
pub const STAR: u32 = u32::MAX;

/// Identifier of a node in the hyper graph (dense, 0-based).
pub type NodeId = usize;

/// A coordinate in the cube: one value index per dimension, or [`STAR`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Coord(Box<[u32]>);

impl Coord {
    /// Creates a coordinate from per-dimension value indices.
    pub fn new(values: Vec<u32>) -> Self {
        Coord(values.into_boxed_slice())
    }

    /// The all-star coordinate (top node) for `dims` dimensions.
    pub fn top(dims: usize) -> Self {
        Coord(vec![STAR; dims].into_boxed_slice())
    }

    /// Per-dimension entries.
    pub fn values(&self) -> &[u32] {
        &self.0
    }

    /// Whether dimension `d` is aggregated in this coordinate.
    pub fn is_star(&self, d: usize) -> bool {
        self.0[d] == STAR
    }

    /// Number of aggregated dimensions.
    pub fn star_count(&self) -> usize {
        self.0.iter().filter(|&&v| v == STAR).count()
    }

    /// Whether every dimension is concrete (a base coordinate).
    pub fn is_base(&self) -> bool {
        self.star_count() == 0
    }

    /// Whether `base` (fully concrete) falls inside the region this
    /// coordinate describes.
    pub fn matches_base(&self, base: &Coord) -> bool {
        self.0
            .iter()
            .zip(base.0.iter())
            .all(|(&a, &b)| a == STAR || a == b)
    }

    /// Renders the coordinate with schema labels, e.g. `C1,R1,*`.
    pub fn display(&self, schema: &Schema) -> String {
        self.0
            .iter()
            .enumerate()
            .map(|(d, &v)| {
                if v == STAR {
                    "*".to_string()
                } else {
                    schema.dimensions()[d].values()[v as usize].clone()
                }
            })
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Canonicalizes a coordinate against the schema's functional
/// dependencies: a concrete determinant forces its dependent's value.
///
/// Returns `None` if the coordinate contradicts a dependency (e.g. city
/// C1 combined with a region other than C1's region).
pub fn canonicalize(schema: &Schema, coord: &Coord) -> Option<Coord> {
    let mut vals: Vec<u32> = coord.values().to_vec();
    // Dependencies may chain (city → region → country); iterate to a
    // fixpoint. Chains are acyclic by schema validation, so at most
    // dim_count passes are needed.
    let mut changed = true;
    while changed {
        changed = false;
        for fd in schema.dependencies() {
            let det = vals[fd.determinant];
            if det == STAR {
                continue;
            }
            let forced = fd.mapping[det as usize];
            match vals[fd.dependent] {
                STAR => {
                    vals[fd.dependent] = forced;
                    changed = true;
                }
                v if v != forced => return None,
                _ => {}
            }
        }
    }
    Some(Coord::new(vals))
}

/// A hyperedge: instantiating dimension `dim` of a node yields the set of
/// `children` whose series sum to the node's series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperEdge {
    /// The dimension whose values the children enumerate.
    pub dim: usize,
    /// Children node ids, one per present value of `dim`.
    pub children: Vec<NodeId>,
}

/// The time series hyper graph.
#[derive(Debug, Clone)]
pub struct TimeSeriesGraph {
    schema: Schema,
    coords: Vec<Coord>,
    index: HashMap<Coord, NodeId>,
    /// `parents[v]` lists `(starred dimension, parent id)`.
    parents: Vec<Vec<(usize, NodeId)>>,
    /// `edges[v]` lists the hyperedges below `v`, grouped by dimension.
    edges: Vec<Vec<HyperEdge>>,
    /// Node ids of base (fully concrete) coordinates.
    base: Vec<NodeId>,
    /// `levels[v]` = number of aggregated dimensions of `v`.
    levels: Vec<usize>,
}

impl TimeSeriesGraph {
    /// Builds the complete instance-level hyper graph above the given base
    /// coordinates.
    ///
    /// Base coordinates must be fully concrete, canonical (consistent with
    /// all functional dependencies), in range, and free of duplicates.
    pub fn build(schema: Schema, base_coords: &[Coord]) -> Result<Self> {
        let k = schema.dim_count();
        if base_coords.is_empty() {
            return Err(CubeError::InvalidData(
                "at least one base time series is required".into(),
            ));
        }

        // Validate base coordinates.
        for c in base_coords {
            if c.values().len() != k {
                return Err(CubeError::InvalidCoordinate(format!(
                    "coordinate has {} dimensions, schema has {k}",
                    c.values().len()
                )));
            }
            if !c.is_base() {
                return Err(CubeError::InvalidCoordinate(format!(
                    "base coordinate {} contains aggregated dimensions",
                    c.display(&schema)
                )));
            }
            for (d, &v) in c.values().iter().enumerate() {
                if v as usize >= schema.dimensions()[d].cardinality() {
                    return Err(CubeError::InvalidCoordinate(format!(
                        "value index {v} out of range for dimension {}",
                        schema.dimensions()[d].name()
                    )));
                }
            }
            match canonicalize(&schema, c) {
                Some(canon) if &canon == c => {}
                _ => {
                    return Err(CubeError::InvalidCoordinate(format!(
                        "base coordinate {} violates a functional dependency",
                        c.display(&schema)
                    )));
                }
            }
        }

        // Enumerate all ancestors of every base coordinate by starring
        // every subset of dimensions, canonicalizing, and deduplicating.
        let mut index: HashMap<Coord, NodeId> = HashMap::new();
        let mut coords: Vec<Coord> = Vec::new();
        let mut base = Vec::with_capacity(base_coords.len());
        let subset_count = 1usize << k;
        for c in base_coords {
            for mask in 0..subset_count {
                let mut vals = c.values().to_vec();
                for (d, val) in vals.iter_mut().enumerate() {
                    if mask & (1 << d) != 0 {
                        *val = STAR;
                    }
                }
                let Some(canon) = canonicalize(&schema, &Coord::new(vals)) else {
                    // Cannot happen starting from a canonical base coord,
                    // but stay defensive.
                    continue;
                };
                let next_id = coords.len();
                let id = *index.entry(canon.clone()).or_insert_with(|| {
                    coords.push(canon);
                    next_id
                });
                if mask == 0 {
                    // mask 0 runs first for every coord, and a starred
                    // mask canonicalizes back to a base coordinate only
                    // when it IS that coordinate — so finding the base
                    // coord already indexed means a duplicate. O(1),
                    // where scanning `base` would be quadratic in the
                    // cell count.
                    if id != next_id {
                        return Err(CubeError::InvalidData(format!(
                            "duplicate base coordinate {}",
                            coords[id].display(&schema)
                        )));
                    }
                    base.push(id);
                }
            }
        }

        let n = coords.len();
        let levels: Vec<usize> = coords.iter().map(|c| c.star_count()).collect();

        // Parents: star each concrete dimension and canonicalize; if the
        // result is a different existing node, it is a parent.
        let mut parents: Vec<Vec<(usize, NodeId)>> = vec![Vec::new(); n];
        let mut edge_map: Vec<HashMap<usize, Vec<NodeId>>> = vec![HashMap::new(); n];
        for v in 0..n {
            for d in 0..k {
                if coords[v].is_star(d) {
                    continue;
                }
                let mut vals = coords[v].values().to_vec();
                vals[d] = STAR;
                let Some(p_coord) = canonicalize(&schema, &Coord::new(vals)) else {
                    continue;
                };
                if p_coord == coords[v] {
                    continue;
                }
                if let Some(&p) = index.get(&p_coord) {
                    parents[v].push((d, p));
                    edge_map[p].entry(d).or_default().push(v);
                }
            }
        }
        let edges: Vec<Vec<HyperEdge>> = edge_map
            .into_iter()
            .map(|m| {
                let mut es: Vec<HyperEdge> = m
                    .into_iter()
                    .map(|(dim, mut children)| {
                        children.sort_unstable();
                        HyperEdge { dim, children }
                    })
                    .collect();
                es.sort_by_key(|e| e.dim);
                es
            })
            .collect();

        Ok(TimeSeriesGraph {
            schema,
            coords,
            index,
            parents,
            edges,
            base,
            levels,
        })
    }

    /// The schema this graph is built over.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.coords.len()
    }

    /// Coordinate of node `v`.
    pub fn coord(&self, v: NodeId) -> &Coord {
        &self.coords[v]
    }

    /// Looks a coordinate up (must be canonical).
    pub fn node(&self, coord: &Coord) -> Option<NodeId> {
        self.index.get(coord).copied()
    }

    /// Resolves a possibly non-canonical coordinate by canonicalizing
    /// first.
    pub fn resolve(&self, coord: &Coord) -> Option<NodeId> {
        canonicalize(&self.schema, coord).and_then(|c| self.node(&c))
    }

    /// Base node ids (insertion order of the base coordinates).
    pub fn base_nodes(&self) -> &[NodeId] {
        &self.base
    }

    /// The top node (all dimensions aggregated).
    pub fn top_node(&self) -> NodeId {
        self.index[&Coord::top(self.schema.dim_count())]
    }

    /// Parents of `v` as `(starred dimension, parent)` pairs.
    pub fn parents(&self, v: NodeId) -> &[(usize, NodeId)] {
        &self.parents[v]
    }

    /// Hyperedges below `v`, grouped by instantiated dimension.
    pub fn edges(&self, v: NodeId) -> &[HyperEdge] {
        &self.edges[v]
    }

    /// Aggregation level of `v` (number of starred dimensions; base = 0).
    pub fn level(&self, v: NodeId) -> usize {
        self.levels[v]
    }

    /// Maximum level in the graph.
    pub fn max_level(&self) -> usize {
        self.levels.iter().copied().max().unwrap_or(0)
    }

    /// Node ids ordered by ascending level (base first) — the order in
    /// which aggregates can be materialized bottom-up.
    pub fn nodes_by_level(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = (0..self.node_count()).collect();
        ids.sort_by_key(|&v| self.levels[v]);
        ids
    }

    /// All base nodes lying below `v` (those its aggregate sums over).
    pub fn base_descendants(&self, v: NodeId) -> Vec<NodeId> {
        let pat = &self.coords[v];
        self.base
            .iter()
            .copied()
            .filter(|&b| pat.matches_base(&self.coords[b]))
            .collect()
    }

    /// Undirected graph distance between two nodes, used by the indicator
    /// neighborhoods ("those nodes which are closest to s in the time
    /// series graph", §IV-C.1). Computed as the number of differing
    /// dimension entries — a cheap, order-consistent proxy for BFS
    /// distance in the aggregation graph.
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        self.coords[a]
            .values()
            .iter()
            .zip(self.coords[b].values())
            .filter(|(x, y)| x != y)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Dimension, FunctionalDependency};

    /// The schema of Fig. 2: 4 cities in 2 regions (FD city → region) and
    /// 2 products.
    fn fig2_schema() -> Schema {
        Schema::new(
            vec![
                Dimension::new(
                    "city",
                    vec!["C1".into(), "C2".into(), "C3".into(), "C4".into()],
                ),
                Dimension::new("region", vec!["R1".into(), "R2".into()]),
                Dimension::new("product", vec!["P1".into(), "P2".into()]),
            ],
            vec![FunctionalDependency::new(0, 1, vec![0, 0, 1, 1])],
        )
        .unwrap()
    }

    fn fig2_base() -> Vec<Coord> {
        // All 4 cities × 2 products, regions forced by the FD.
        let region_of = [0u32, 0, 1, 1];
        let mut out = Vec::new();
        for city in 0..4u32 {
            for product in 0..2u32 {
                out.push(Coord::new(vec![city, region_of[city as usize], product]));
            }
        }
        out
    }

    fn fig2_graph() -> TimeSeriesGraph {
        TimeSeriesGraph::build(fig2_schema(), &fig2_base()).unwrap()
    }

    #[test]
    fn canonicalize_fills_dependent_dimension() {
        let s = fig2_schema();
        let c = canonicalize(&s, &Coord::new(vec![0, STAR, 1])).unwrap();
        assert_eq!(c.values(), &[0, 0, 1]);
    }

    #[test]
    fn canonicalize_rejects_contradiction() {
        let s = fig2_schema();
        // City C1 lies in R1; pairing it with R2 is invalid.
        assert!(canonicalize(&s, &Coord::new(vec![0, 1, 0])).is_none());
    }

    #[test]
    fn canonicalize_handles_chains() {
        // a → b → c.
        let schema = Schema::new(
            vec![
                Dimension::new("a", vec!["a0".into(), "a1".into()]),
                Dimension::new("b", vec!["b0".into(), "b1".into()]),
                Dimension::new("c", vec!["c0".into()]),
            ],
            vec![
                FunctionalDependency::new(0, 1, vec![0, 1]),
                FunctionalDependency::new(1, 2, vec![0, 0]),
            ],
        )
        .unwrap();
        let c = canonicalize(&schema, &Coord::new(vec![1, STAR, STAR])).unwrap();
        assert_eq!(c.values(), &[1, 1, 0]);
    }

    #[test]
    fn fig2_graph_has_expected_node_count() {
        // Fig. 2 for both products: base 4×2 = 8; per product: 2 region
        // aggregates, 1 total → with product star: cities ×1 (C_i,R,*): 4,
        // regions 2, top 1. Count explicitly:
        // concrete product (2 products): 4 base + 2 region + 1 all = 7 → 14
        // star product: 4 city + 2 region + 1 top = 7
        // total 21.
        let g = fig2_graph();
        assert_eq!(g.node_count(), 21);
        assert_eq!(g.base_nodes().len(), 8);
    }

    #[test]
    fn fd_violating_combinations_are_not_nodes() {
        let g = fig2_graph();
        // C1,*,P2 canonicalizes to C1,R1,P2 — must resolve to the base node.
        let resolved = g.resolve(&Coord::new(vec![0, STAR, 1])).unwrap();
        assert_eq!(g.coord(resolved).values(), &[0, 0, 1]);
        // No stored node has city concrete but region star.
        for v in 0..g.node_count() {
            let c = g.coord(v);
            if !c.is_star(0) {
                assert!(
                    !c.is_star(1),
                    "node {} is non-canonical",
                    c.display(g.schema())
                );
            }
        }
    }

    #[test]
    fn top_node_exists_and_has_max_level() {
        let g = fig2_graph();
        let top = g.top_node();
        assert_eq!(g.coord(top).values(), &[STAR, STAR, STAR]);
        assert_eq!(g.level(top), 3);
        assert_eq!(g.max_level(), 3);
    }

    #[test]
    fn base_nodes_have_no_edges_below() {
        let g = fig2_graph();
        for &b in g.base_nodes() {
            assert_eq!(g.level(b), 0);
            assert!(g.edges(b).is_empty());
            assert!(!g.parents(b).is_empty());
        }
    }

    #[test]
    fn sharing_property_multiple_parents() {
        let g = fig2_graph();
        // Base node C1,R1,P2 can aggregate to *,R1,P2 (star city) or to
        // C1,R1,* (star product) — exactly two parents (starring region is
        // non-canonical).
        let b = g.node(&Coord::new(vec![0, 0, 1])).unwrap();
        let parents = g.parents(b);
        assert_eq!(parents.len(), 2);
        let coords: Vec<&[u32]> = parents.iter().map(|&(_, p)| g.coord(p).values()).collect();
        assert!(coords.contains(&&[STAR, 0, 1][..]));
        assert!(coords.contains(&&[0, 0, STAR][..]));
    }

    #[test]
    fn hyperedges_group_children_by_dimension() {
        let g = fig2_graph();
        // Node *,R1,P1 has one hyperedge (city) with 2 children.
        let v = g.node(&Coord::new(vec![STAR, 0, 0])).unwrap();
        let edges = g.edges(v);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].dim, 0);
        assert_eq!(edges[0].children.len(), 2);
        // The top node aggregates via region or product — NOT via city:
        // a node with a concrete city always carries its region (FD), so
        // starring its city lands on the region aggregate, not on top.
        // This matches Fig. 2, where the top's incoming edges come from
        // the region and product levels.
        let top = g.top_node();
        let dims: Vec<usize> = g.edges(top).iter().map(|e| e.dim).collect();
        assert_eq!(dims, vec![1, 2]);
        // Children of top via region: 2 nodes; via product: 2.
        assert_eq!(g.edges(top)[0].children.len(), 2);
        assert_eq!(g.edges(top)[1].children.len(), 2);
    }

    #[test]
    fn base_descendants_respect_region_structure() {
        let g = fig2_graph();
        let v = g.node(&Coord::new(vec![STAR, 1, STAR])).unwrap(); // region R2
        let desc = g.base_descendants(v);
        assert_eq!(desc.len(), 4); // cities C3, C4 × products P1, P2
        for b in desc {
            assert_eq!(g.coord(b).values()[1], 1);
        }
    }

    #[test]
    fn build_rejects_bad_bases() {
        let s = fig2_schema();
        // Aggregated dim in base.
        assert!(TimeSeriesGraph::build(s.clone(), &[Coord::new(vec![0, 0, STAR])]).is_err());
        // FD violation.
        assert!(TimeSeriesGraph::build(s.clone(), &[Coord::new(vec![0, 1, 0])]).is_err());
        // Out of range.
        assert!(TimeSeriesGraph::build(s.clone(), &[Coord::new(vec![9, 0, 0])]).is_err());
        // Wrong arity.
        assert!(TimeSeriesGraph::build(s.clone(), &[Coord::new(vec![0, 0])]).is_err());
        // Duplicate.
        assert!(TimeSeriesGraph::build(
            s.clone(),
            &[Coord::new(vec![0, 0, 0]), Coord::new(vec![0, 0, 0])]
        )
        .is_err());
        // Empty.
        assert!(TimeSeriesGraph::build(s, &[]).is_err());
    }

    #[test]
    fn sparse_base_set_builds_partial_graph() {
        // Only one base series: the graph is a single chain of aggregates.
        let g = TimeSeriesGraph::build(fig2_schema(), &[Coord::new(vec![0, 0, 0])]).unwrap();
        // Nodes: base, *R1P1, C1R1*, *R1*, **P1... enumerate:
        // mask over {city, region, product} canonicalized:
        // {} → C1R1P1 ; {c} → *R1P1 ; {r} → C1R1P1 (dup) ; {p} → C1R1* ;
        // {c,r} → **P1 ; {c,p} → *R1* ; {r,p} → C1R1* (dup) ; {c,r,p} → ***
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.base_nodes().len(), 1);
    }

    #[test]
    fn distance_counts_differing_dimensions() {
        let g = fig2_graph();
        let a = g.node(&Coord::new(vec![0, 0, 0])).unwrap();
        let b = g.node(&Coord::new(vec![1, 0, 0])).unwrap();
        let top = g.top_node();
        assert_eq!(g.distance(a, a), 0);
        assert_eq!(g.distance(a, b), 1);
        assert_eq!(g.distance(a, top), 3);
    }

    #[test]
    fn nodes_by_level_is_monotone() {
        let g = fig2_graph();
        let order = g.nodes_by_level();
        for w in order.windows(2) {
            assert!(g.level(w[0]) <= g.level(w[1]));
        }
        assert_eq!(order.len(), g.node_count());
    }
}
