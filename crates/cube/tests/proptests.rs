//! Randomized property tests of the hyper graph invariants, driven by
//! the deterministic workspace RNG.

use fdc_cube::graph::canonicalize;
use fdc_cube::{Coord, Dimension, FunctionalDependency, Schema, TimeSeriesGraph, STAR};
use fdc_rng::Rng;
use std::collections::BTreeSet;

/// A schema with a leaf dimension functionally grouped into a coarser
/// one, plus an independent flat dimension, and a random subset of base
/// coordinates.
fn random_graph(rng: &mut Rng) -> TimeSeriesGraph {
    let leaves = 2 + rng.usize_below(5);
    let groups = 2 + rng.usize_below(2);
    let flats = 2 + rng.usize_below(2);
    let want = 1 + rng.usize_below(leaves * flats - 1).min(leaves * flats - 1);
    let mut picked: BTreeSet<(usize, usize)> = BTreeSet::new();
    while picked.len() < want {
        picked.insert((rng.usize_below(leaves), rng.usize_below(flats)));
    }
    let schema = Schema::new(
        vec![
            Dimension::new("leaf", (0..leaves).map(|i| format!("l{i}")).collect()),
            Dimension::new("group", (0..groups).map(|i| format!("g{i}")).collect()),
            Dimension::new("flat", (0..flats).map(|i| format!("f{i}")).collect()),
        ],
        vec![FunctionalDependency::new(
            0,
            1,
            (0..leaves).map(|i| (i % groups) as u32).collect(),
        )],
    )
    .unwrap();
    let coords: Vec<Coord> = picked
        .into_iter()
        .map(|(l, f)| Coord::new(vec![l as u32, (l % groups) as u32, f as u32]))
        .collect();
    TimeSeriesGraph::build(schema, &coords).unwrap()
}

/// Structural invariants of the hyper graph (§II-A).
#[test]
fn graph_structural_invariants() {
    let mut rng = Rng::seed_from_u64(0xc0be1);
    for case in 0..64 {
        let g = random_graph(&mut rng);
        // Node 0-level count equals base count; a unique top node exists.
        let base: Vec<_> = (0..g.node_count()).filter(|&v| g.level(v) == 0).collect();
        assert_eq!(base.len(), g.base_nodes().len(), "case {case}");
        let tops: Vec<_> = (0..g.node_count())
            .filter(|&v| g.coord(v).values().iter().all(|&x| x == STAR))
            .collect();
        assert_eq!(tops, vec![g.top_node()], "case {case}");

        for v in 0..g.node_count() {
            // Every non-base node has at least one hyperedge; base nodes
            // have none; every node except top has at least one parent.
            if g.level(v) == 0 {
                assert!(g.edges(v).is_empty());
            } else {
                assert!(!g.edges(v).is_empty());
            }
            if v != g.top_node() {
                assert!(
                    !g.parents(v).is_empty(),
                    "case {case}: node {v} unreachable"
                );
            }
            // Canonical coordinates only.
            let canon = canonicalize(g.schema(), g.coord(v)).unwrap();
            assert_eq!(&canon, g.coord(v));
            // Parent levels are exactly one above.
            for &(_, p) in g.parents(v) {
                assert_eq!(g.level(p), g.level(v) + 1);
            }
            // Each hyperedge's children partition the node's base set.
            let base_set = g.base_descendants(v);
            for edge in g.edges(v) {
                let mut covered: Vec<_> = edge
                    .children
                    .iter()
                    .flat_map(|&c| g.base_descendants(c))
                    .collect();
                covered.sort_unstable();
                let mut expect = base_set.clone();
                expect.sort_unstable();
                assert_eq!(
                    covered, expect,
                    "case {case}: edge over dim {} of node {}",
                    edge.dim, v
                );
            }
        }
    }
}

/// Resolve is the inverse of coord: every node's coordinate resolves
/// back to the node; starred variants canonicalize consistently.
#[test]
fn resolve_round_trips() {
    let mut rng = Rng::seed_from_u64(0xc0be2);
    for _ in 0..64 {
        let g = random_graph(&mut rng);
        for v in 0..g.node_count() {
            assert_eq!(g.resolve(g.coord(v)), Some(v));
        }
        // Dropping the (determined) group value of a base coordinate must
        // resolve to the same base node.
        for &b in g.base_nodes() {
            let mut vals = g.coord(b).values().to_vec();
            vals[1] = STAR;
            assert_eq!(g.resolve(&Coord::new(vals)), Some(b));
        }
    }
}

/// Distance is a metric-like function: zero iff equal, symmetric,
/// triangle inequality (it is a Hamming distance on coordinates).
#[test]
fn distance_is_hamming_metric() {
    let mut rng = Rng::seed_from_u64(0xc0be3);
    for _ in 0..32 {
        let g = random_graph(&mut rng);
        let n = g.node_count().min(8);
        for a in 0..n {
            assert_eq!(g.distance(a, a), 0);
            for b in 0..n {
                assert_eq!(g.distance(a, b), g.distance(b, a));
                if a != b {
                    assert!(g.distance(a, b) > 0);
                }
                for c in 0..n {
                    assert!(g.distance(a, c) <= g.distance(a, b) + g.distance(b, c));
                }
            }
        }
    }
}
