//! Follower replicas: WAL shipping over HTTP and the promotion path.
//!
//! A follower is a second `fdc-serve` process fronting a **read-only**
//! engine. It keeps its own local write-ahead log — *not* attached to
//! the engine — and a fetch loop that repeatedly asks the primary's
//! `GET /wal/fetch?after=<applied>` for everything past its applied
//! watermark. Each fetched [`ShipChunk`] is verified (CRCs, sequence
//! contiguity, protocol version), durably appended to the local log via
//! [`Wal::apply_chunk`], and only then applied to the engine through
//! [`F2db::apply_replicated`] — so the follower's log is always a
//! prefix of the primary's durable log and a follower crash recovers by
//! replaying its own log from scratch.
//!
//! ## Promotion
//!
//! [`Replica::promote`] turns the follower into a writable primary:
//!
//! 1. **Seal** — the fetch loop is stopped and joined; the applied
//!    watermark is frozen.
//! 2. **Tail replay** — when the dead primary's WAL directory is
//!    reachable (shared-storage failover), it is opened read-only
//!    (`fsync: false`; a torn tail truncates exactly as crash recovery
//!    would) and every record past the applied watermark is appended to
//!    the local log and applied to the engine. Frames the primary had
//!    written but not yet shipped — including fsynced, *acknowledged*
//!    writes — are recovered here, which is what makes the
//!    zero-acked-writes-lost contract hold across a primary SIGKILL.
//! 3. **Open for writes** — the local log is adopted by the engine
//!    (future inserts append to it with contiguous sequences), the
//!    read-only guard drops, and the `REPLICA` marker file is removed.
//!
//! A second `promote` call fails with a typed error; the state machine
//! only moves forward: `following → sealed → promoted`.

use crate::ServeOptions;
use fdc_f2db::{F2db, F2dbError, WalRecord};
use fdc_obs::{journal, names, Event, TraceContext};
use fdc_wal::{decode_chunk, ShipChunk, Wal, WalOptions};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Marker file a follower writes into its WAL directory. While it
/// exists, [`crate::open_engine`] refuses to open the directory
/// writable — writes answer [`F2dbError::ReadOnly`] — so a crashed
/// follower cannot be accidentally restarted as an independent primary
/// with half a log. [`Replica::promote`] removes it.
pub const REPLICA_MARKER: &str = "REPLICA";

/// Path of the [`REPLICA_MARKER`] inside a follower's WAL directory.
pub fn replica_marker_path(wal_dir: &Path) -> PathBuf {
    wal_dir.join(REPLICA_MARKER)
}

/// Largest chunk the follower requests per fetch.
const FETCH_MAX_BYTES: usize = 256 << 10;

/// Socket timeout for one fetch round trip — also bounds how long
/// [`Replica::promote`] waits for the loop to notice the seal.
const FETCH_TIMEOUT: Duration = Duration::from_millis(500);

/// Head-sampling rate for the fetch loop's own traces: roughly one
/// round in 64 mints a sampled root context, whose `traceparent` rides
/// the outbound `/wal/fetch` so the primary's ship-side spans join the
/// follower's round trace. Kept well below 1.0 — the loop polls every
/// few milliseconds and tracing every round would drown the export.
const ROUND_TRACE_RATE: f64 = 1.0 / 64.0;

/// What [`Replica::promote`] did, mirrored into the `ReplicaPromoted`
/// journal event and the `POST /promote` response body.
#[derive(Debug, Clone)]
pub struct PromotionReport {
    /// The applied watermark at seal time — the highest sequence the
    /// follower had replicated before promotion began.
    pub applied_seq: u64,
    /// Records recovered from the dead primary's WAL tail (sequences
    /// past `applied_seq` that were never shipped).
    pub tail_records: u64,
    /// The promoted log's last sequence (`applied_seq + tail_records`).
    pub last_seq: u64,
    /// Wall-clock nanoseconds from seal to open-for-writes.
    pub promotion_ns: u64,
}

/// A running follower: the fetch loop plus the state `fdc-serve` routes
/// report and act on. Created by [`open_follower`].
pub struct Replica {
    primary: String,
    db: Arc<F2db>,
    /// The local log. `None` after promotion hands it to the engine.
    wal: Mutex<Option<Wal>>,
    marker: PathBuf,
    poll: Duration,
    applied_seq: AtomicU64,
    primary_durable_seq: AtomicU64,
    fetch_errors: AtomicU64,
    last_error: Mutex<Option<String>>,
    sealed: AtomicBool,
    promoted: AtomicBool,
    fetcher: Mutex<Option<JoinHandle<()>>>,
}

impl Replica {
    /// The primary address this follower fetches from.
    pub fn primary(&self) -> &str {
        &self.primary
    }

    /// The follower's applied watermark: the highest sequence durably
    /// in its local log *and* applied to the engine.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq.load(Ordering::Acquire)
    }

    /// The primary's durable watermark as of the last successful fetch.
    pub fn primary_durable_seq(&self) -> u64 {
        self.primary_durable_seq.load(Ordering::Acquire)
    }

    /// Replication lag in sequences: durable-on-primary minus applied.
    pub fn lag(&self) -> u64 {
        self.primary_durable_seq()
            .saturating_sub(self.applied_seq())
    }

    /// Fetch rounds that failed (network, decode, or apply).
    pub fn fetch_errors(&self) -> u64 {
        self.fetch_errors.load(Ordering::Relaxed)
    }

    /// The most recent fetch-loop error, for `/stats`.
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().unwrap().clone()
    }

    /// Whether [`Replica::promote`] has completed.
    pub fn is_promoted(&self) -> bool {
        self.promoted.load(Ordering::Acquire)
    }

    /// Stops the fetch loop without promoting (server shutdown). Safe
    /// to call more than once.
    pub fn seal(&self) {
        self.sealed.store(true, Ordering::SeqCst);
        if let Some(h) = self.fetcher.lock().unwrap().take() {
            h.join().expect("replica fetch thread panicked");
        }
    }

    /// Promotes this follower to a writable primary. See the module
    /// docs for the three phases. `tail_wal_dir` is the dead primary's
    /// WAL directory when it is reachable (shared-storage failover);
    /// `None` promotes on the shipped prefix alone.
    pub fn promote(&self, tail_wal_dir: Option<&Path>) -> Result<PromotionReport, F2dbError> {
        let started = Instant::now();
        if self.promoted.swap(true, Ordering::SeqCst) {
            return Err(F2dbError::ReadOnly(
                "promote rejected: this replica is already promoted".into(),
            ));
        }
        self.seal();
        let wal =
            self.wal.lock().unwrap().take().ok_or_else(|| {
                F2dbError::Storage("replica log already handed to the engine".into())
            })?;
        let applied_seq = wal.stats().last_seq;
        debug_assert_eq!(applied_seq, self.applied_seq());

        // Phase 2: recover the dead primary's unshipped tail. Opening
        // with fsync off replays without spawning a syncer and
        // truncates a torn tail exactly as the primary's own crash
        // recovery would.
        let mut tail_records = 0u64;
        if let Some(dir) = tail_wal_dir.filter(|d| d.exists()) {
            let (primary_wal, recovery) = Wal::open(
                dir,
                WalOptions {
                    fsync: false,
                    ..WalOptions::default()
                },
            )
            .map_err(|e| F2dbError::Storage(format!("promotion tail replay: {e}")))?;
            drop(primary_wal);
            let mut expected = applied_seq + 1;
            for (seq, payload) in &recovery.records {
                if *seq <= applied_seq {
                    continue;
                }
                if *seq != expected {
                    return Err(F2dbError::Storage(format!(
                        "promotion tail replay: primary log jumps to seq {seq}, \
                         expected {expected} — refusing to promote over a gap"
                    )));
                }
                wal.append(payload)
                    .map_err(|e| F2dbError::Storage(format!("promotion tail append: {e}")))?;
                apply_record(&self.db, payload)?;
                expected += 1;
                tail_records += 1;
            }
        }

        // Phase 3: open for writes.
        let last_seq = wal.stats().last_seq;
        self.db.adopt_wal(wal)?;
        self.db.set_read_only(false);
        std::fs::remove_file(&self.marker).ok();
        self.applied_seq.store(last_seq, Ordering::Release);
        fdc_obs::gauge(names::WAL_REPLICATION_APPLIED_SEQ).set(last_seq as i64);
        fdc_obs::gauge(names::WAL_REPLICATION_LAG_SEQ).set(0);
        let report = PromotionReport {
            applied_seq,
            tail_records,
            last_seq,
            promotion_ns: started.elapsed().as_nanos() as u64,
        };
        journal().publish(Event::ReplicaPromoted {
            applied_seq: report.applied_seq,
            tail_records: report.tail_records,
            last_seq: report.last_seq,
            promotion_ns: report.promotion_ns,
        });
        Ok(report)
    }

    /// One fetch-and-apply round. Returns whether the watermark moved.
    /// Sampled rounds (see [`ROUND_TRACE_RATE`]) run under a fresh root
    /// context propagated to the primary on the fetch hop; either way
    /// the span guards below are RAII, so an error return (torn
    /// response, decode failure, apply failure) can never leak an open
    /// span or a stale thread-local context.
    fn round(&self) -> Result<bool, String> {
        let traced = fdc_obs::trace::should_sample(ROUND_TRACE_RATE);
        let _ctx = traced.then(|| fdc_obs::trace::activate(TraceContext::root(true)));
        let _span = traced.then(|| fdc_obs::span!("replica.round"));
        let after = self.applied_seq();
        let path = format!("/wal/fetch?after={after}&max_bytes={FETCH_MAX_BYTES}");
        let (status, body) = http_fetch(&self.primary, &path).map_err(|e| e.to_string())?;
        if status != 200 {
            return Err(format!(
                "primary answered {status} to /wal/fetch: {}",
                String::from_utf8_lossy(&body)
            ));
        }
        let chunk = decode_chunk(&body).map_err(|e| e.to_string())?;
        self.primary_durable_seq
            .store(chunk.durable_seq, Ordering::Release);
        let advanced = if chunk.frames.is_empty() {
            false
        } else {
            self.apply(&chunk).map_err(|e| e.to_string())?;
            true
        };
        fdc_obs::gauge(names::WAL_REPLICATION_APPLIED_SEQ).set(self.applied_seq() as i64);
        fdc_obs::gauge(names::WAL_REPLICATION_LAG_SEQ).set(self.lag() as i64);
        Ok(advanced)
    }

    /// Durably appends a verified chunk to the local log, then applies
    /// its records to the engine — log first, engine second, so a crash
    /// between the two re-applies from the log instead of losing rows.
    fn apply(&self, chunk: &ShipChunk) -> Result<(), F2dbError> {
        let guard = self.wal.lock().unwrap();
        let wal = guard
            .as_ref()
            .ok_or_else(|| F2dbError::Storage("replica log gone (promoted?)".into()))?;
        let applied = wal
            .apply_chunk(chunk)
            .map_err(|e| F2dbError::Storage(e.to_string()))?;
        for (_seq, payload) in &chunk.frames {
            apply_record(&self.db, payload)?;
        }
        self.applied_seq.store(applied, Ordering::Release);
        Ok(())
    }

    fn run_fetch_loop(&self) {
        while !self.sealed.load(Ordering::SeqCst) {
            match self.round() {
                Ok(true) => {} // keep draining while behind
                Ok(false) => std::thread::sleep(self.poll),
                Err(msg) => {
                    self.fetch_errors.fetch_add(1, Ordering::Relaxed);
                    fdc_obs::counter(names::WAL_REPLICATION_ERRORS).incr();
                    *self.last_error.lock().unwrap() = Some(msg);
                    std::thread::sleep(self.poll);
                }
            }
        }
    }
}

/// Decodes one replicated WAL record and applies it to the engine,
/// bypassing the read-only guard. One record = one primary
/// `insert_batch` call, so batch boundaries (and therefore time-advance
/// points) replay exactly as the primary saw them. A traced record
/// re-activates the originating insert's context, so the follower's
/// `replica.apply` span lands in the *same trace* as the primary-side
/// serve and WAL-commit spans.
fn apply_record(db: &F2db, payload: &[u8]) -> Result<(), F2dbError> {
    let WalRecord::InsertBatch { rows, trace } = WalRecord::decode(payload)?;
    let _ctx = trace.map(|(trace_id, span_id)| {
        fdc_obs::trace::activate(TraceContext {
            trace_id,
            span_id,
            sampled: true,
        })
    });
    let _span = fdc_obs::span!("replica.apply");
    db.apply_replicated(&rows)?;
    Ok(())
}

/// Builds the engine and fetch loop of a follower replica.
///
/// The follower's state is exactly its local log: the `fresh` engine is
/// made read-only, every record already in `opts.wal_dir` is re-applied
/// (a follower restart recovers from its own log, no catalog needed),
/// the [`REPLICA_MARKER`] is written, and the fetch loop starts against
/// `opts.replica_of`. Pass the returned pair to
/// [`crate::Server::start_with_replica`].
pub fn open_follower(
    fresh: F2db,
    opts: &ServeOptions,
) -> Result<(Arc<F2db>, Arc<Replica>), F2dbError> {
    let primary = opts
        .replica_of
        .clone()
        .ok_or_else(|| F2dbError::Storage("open_follower needs ServeOptions::replica_of".into()))?;
    let wal_dir = opts
        .wal_dir
        .clone()
        .ok_or_else(|| F2dbError::Storage("a follower needs ServeOptions::wal_dir".into()))?;
    let (wal, recovery) = Wal::open(
        &wal_dir,
        WalOptions {
            fsync: opts.wal_fsync,
            ..WalOptions::default()
        },
    )
    .map_err(|e| F2dbError::Storage(format!("follower log open: {e}")))?;
    let db = Arc::new(fresh);
    for (_seq, payload) in &recovery.records {
        apply_record(&db, payload)?;
    }
    db.set_read_only(true);
    let marker = replica_marker_path(&wal_dir);
    std::fs::write(&marker, b"follower replica; promote before writing\n")
        .map_err(|e| F2dbError::Storage(format!("replica marker: {e}")))?;

    let applied = recovery.last_seq;
    let replica = Arc::new(Replica {
        primary: primary.clone(),
        db: Arc::clone(&db),
        wal: Mutex::new(Some(wal)),
        marker,
        poll: opts.replica_poll,
        applied_seq: AtomicU64::new(applied),
        primary_durable_seq: AtomicU64::new(0),
        fetch_errors: AtomicU64::new(0),
        last_error: Mutex::new(None),
        sealed: AtomicBool::new(false),
        promoted: AtomicBool::new(false),
        fetcher: Mutex::new(None),
    });
    journal().publish(Event::ReplicaStart {
        primary,
        applied_seq: applied,
    });
    let fetcher = {
        let replica = Arc::clone(&replica);
        std::thread::Builder::new()
            .name("fdc-replica-fetch".into())
            .spawn(move || replica.run_fetch_loop())
            .expect("spawn replica fetch thread")
    };
    *replica.fetcher.lock().unwrap() = Some(fetcher);
    Ok((db, replica))
}

/// Minimal HTTP/1.1 GET for the fetch loop: one request, `Connection:
/// close`, read to EOF, split head from the binary body. Returns
/// `(status, body)`. When a trace context is active on this thread it
/// rides along as a `traceparent` header, so the primary's request
/// span joins the follower's trace.
fn http_fetch(addr: &str, path: &str) -> std::io::Result<(u16, Vec<u8>)> {
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| bad("primary address resolves to nothing"))?;
    let mut stream = TcpStream::connect_timeout(&sock, FETCH_TIMEOUT)?;
    stream.set_read_timeout(Some(FETCH_TIMEOUT))?;
    stream.set_write_timeout(Some(FETCH_TIMEOUT))?;
    let traceparent = match fdc_obs::trace::current() {
        Some(ctx) => format!("{}: {}\r\n", fdc_obs::TRACEPARENT_HEADER, ctx.traceparent()),
        None => String::new(),
    };
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\n{traceparent}Connection: close\r\n\r\n")
            .as_bytes(),
    )?;
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf)?;
    let head_end = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response has no head terminator"))?;
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let status = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("response has no parseable status"))?;
    Ok((status, buf[head_end + 4..].to_vec()))
}
